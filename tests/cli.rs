//! End-to-end tests of the `algrec` CLI binary.

use std::process::Command;

fn algrec(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_algrec"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_tmp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("algrec-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn eval_win_move() {
    let program = write_tmp("win.dl", "win(X) :- move(X, Y), not win(Y).");
    let facts = write_tmp("moves.dl", "move(1, 2).\nmove(2, 3).\nmove(4, 4).");
    let out = algrec(&["eval", &program, &facts, "--pred", "win"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("win(2)."));
    assert!(!stdout.contains("win(1)."));
    assert!(stdout.contains("% unknown: win(4)"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no initial valid model"));
}

#[test]
fn eval_semantics_flag() {
    let program = write_tmp("q.dl", "r(a).\nq(X) :- r(X), not q(X).");
    let out = algrec(&[
        "eval",
        &program,
        "--semantics",
        "inflationary",
        "--pred",
        "q",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("q(a)."));
    let out2 = algrec(&["eval", &program, "--semantics", "valid", "--pred", "q"]);
    assert!(String::from_utf8_lossy(&out2.stdout).contains("% unknown: q(a)"));
}

#[test]
fn eval_trace_streams_telemetry() {
    let program = write_tmp("win_tr.dl", "win(X) :- move(X, Y), not win(Y).");
    let facts = write_tmp("moves_tr.dl", "move(1, 2).\nmove(2, 3).");
    let out = algrec(&["eval", &program, &facts, "--trace", "--pred", "win"]);
    assert!(out.status.success());
    // Result unchanged by tracing…
    assert!(String::from_utf8_lossy(&out.stdout).contains("win(2)."));
    // …and the telemetry stream shows the alternating fixpoint at work.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("% trace: alternation {"));
    assert!(stderr.contains("possible {"));
    assert!(stderr.contains("certain {"));
    assert!(stderr.contains("delta "));
    assert!(stderr.contains("materialized "));
}

#[test]
fn alg_trace_streams_telemetry() {
    let program = write_tmp("undef_tr.alg", "def s = {'a'} - s; query s;");
    let out = algrec(&["alg", &program, "--trace"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("% trace: alternation {"));
    assert!(stderr.contains("materialized "));
}

#[test]
fn alg_command() {
    let program = write_tmp(
        "even.alg",
        "def se = {0} union map(select(se, x < 6), add(x, 2)); query se;",
    );
    let out = algrec(&["alg", &program]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "{0, 2, 4, 6}");
}

#[test]
fn alg_three_valued_marks_unknowns() {
    let program = write_tmp("undef.alg", "def s = {'a'} - s; query s;");
    let out = algrec(&["alg", &program]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("a?"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("three-valued"));
}

#[test]
fn spec_command() {
    let spec = write_tmp(
        "ex2.obj",
        "sorts s;\nop a : -> s; op b : -> s; op c : -> s;\n\
         ceq a = c if a != b;\nceq a = b if a != c;",
    );
    let out = algrec(&["spec", &spec, "--depth", "1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid models: 3"));
    assert!(stdout.contains("no initial valid model"));
}

#[test]
fn translate_command() {
    let program = write_tmp("win2.dl", "win(X) :- move(X, Y), not win(Y).");
    let facts = write_tmp("moves2.dl", "move(1, 2).");
    let out = algrec(&["translate", &program, "--pred", "win", &facts]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("def p$win ="));
    assert!(stdout.contains("query p$win;"));
}

#[test]
fn stable_command() {
    let program = write_tmp(
        "choice.dl",
        "p(X) :- d(X), not q(X).\nq(X) :- d(X), not p(X).",
    );
    let facts = write_tmp("d.dl", "d(1).");
    let out = algrec(&["stable", &program, &facts]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("% 2 stable model(s)"));
}

#[test]
fn eval_parameterized_valid_extended() {
    // The branching cap is part of the semantics name now: both the bare
    // form and `valid-extended:N` must parse.
    let program = write_tmp("vx.dl", "p(X) :- d(X), not q(X).\nq(X) :- d(X), not p(X).");
    let facts = write_tmp("vx_facts.dl", "d(1).");
    for semantics in ["valid-extended", "valid-extended:4"] {
        let out = algrec(&[
            "eval",
            &program,
            &facts,
            "--semantics",
            semantics,
            "--pred",
            "p",
        ]);
        assert!(out.status.success(), "{semantics}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("% unknown: p(1)"));
    }
}

#[test]
fn bad_semantics_names_list_the_valid_forms() {
    let program = write_tmp("sem.dl", "p(1).");
    for bad in ["valid-extended:x", "valid-extended:", "zen"] {
        let out = algrec(&["eval", &program, "--semantics", bad]);
        assert!(!out.status.success(), "`{bad}` should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("valid-extended:32") || stderr.contains("valid-extended:<N>"),
            "error for `{bad}` should name the accepted forms: {stderr}"
        );
    }
}

#[test]
fn repl_runs_a_piped_script() {
    use std::io::Write;
    use std::process::Stdio;
    let facts = write_tmp("repl_facts.dl", "e(1, 2).\ne(2, 3).");
    let mut child = Command::new(env!("CARGO_BIN_EXE_algrec"))
        .args(["repl", &facts])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            concat!(
                "view paths : tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).\n",
                "+e(3, 4)\n",
                "query paths tc\n",
                "-e(2, 3)\n",
                "query paths tc\n",
                "quit\n",
            )
            .as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Piped (non-terminal) input: no prompt, just command output.
    assert!(!stdout.contains("algrec>"), "{stdout}");
    assert!(
        stdout.contains("registered paths (stratified-incremental"),
        "{stdout}"
    );
    assert!(stdout.contains("tc(1, 4)."), "{stdout}");
    // After the retraction the 1→4 path is gone but 3→4 remains.
    let tail = stdout.rsplit("applied 1/1").next().unwrap();
    assert!(!tail.contains("tc(1, 4)."), "{stdout}");
    assert!(tail.contains("tc(3, 4)."), "{stdout}");
}

#[test]
fn serve_rejects_unbindable_address() {
    let out = algrec(&["serve", "--addr", "definitely-not-an-address"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("definitely-not-an-address"));
}

#[test]
fn error_paths() {
    assert!(!algrec(&[]).status.success());
    assert!(!algrec(&["frobnicate"]).status.success());
    assert!(!algrec(&["eval"]).status.success());
    assert!(!algrec(&["eval", "/nonexistent/x.dl"]).status.success());
    assert!(!algrec(&["translate", "x.dl"]).status.success()); // missing --pred
    let program = write_tmp("bad.dl", "win(X) :-");
    assert!(!algrec(&["eval", &program]).status.success());
    let withrule = write_tmp("rule-as-facts.dl", "p(X) :- q(X).");
    let prog = write_tmp("ok.dl", "a(1).");
    assert!(!algrec(&["eval", &prog, &withrule]).status.success());
    assert!(!algrec(&["eval", &prog, "--semantics", "zen"])
        .status
        .success());
}
