//! Multi-client TCP stress test of the concurrent serving layer:
//! several writer clients race facts into the session while reader
//! clients hammer queries, all over the real line protocol. The
//! snapshot-isolation contract under test: **every** read reply must be
//! consistent with a cold re-evaluation of the database as of the epoch
//! the reply reports — the set of writes with epoch ≤ the read's epoch,
//! nothing more, nothing less. Torn reads (a view reflecting half a
//! write, or a database/view pair from different commits) would produce
//! an answer matching no epoch at all.

use algrec::serve::{json, serve, Json, Session};
use algrec::value::{Budget, Database, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

const WRITERS: usize = 3;
const FACTS_PER_WRITER: usize = 15;
const READERS: usize = 3;
const READS_PER_READER: usize = 20;

const TC: &str = "tc(X, Y) :- e(X, Y).\\ntc(X, Z) :- tc(X, Y), e(Y, Z).";
/// Base edges loaded before any writer starts (epoch 1).
const BASE: &[(i64, i64)] = &[(1, 2), (2, 3)];

/// The private edge writer `w` asserts as its `k`-th write.
fn edge_of(w: usize, k: usize) -> (i64, i64) {
    let base = (w as i64 + 1) * 10_000 + 2 * k as i64;
    (base, base + 1)
}

fn connect(addr: SocketAddr) -> (BufWriter<TcpStream>, std::io::Lines<BufReader<TcpStream>>) {
    let stream = TcpStream::connect(addr).unwrap();
    let writer = BufWriter::new(stream.try_clone().unwrap());
    (writer, BufReader::new(stream).lines())
}

fn request(
    writer: &mut BufWriter<TcpStream>,
    incoming: &mut std::io::Lines<BufReader<TcpStream>>,
    line: &str,
) -> Json {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let reply = incoming.next().unwrap().unwrap();
    let parsed = json::parse(&reply).unwrap();
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {reply}"
    );
    parsed
}

fn epoch_of(reply: &Json) -> u64 {
    reply.get("epoch").and_then(Json::as_int).unwrap() as u64
}

/// Cold-evaluate transitive closure over the given edges, rendered in
/// the protocol's fact-line format, sorted.
fn cold_tc(edges: &[(i64, i64)]) -> Vec<String> {
    let db = Database::new().with(
        "e",
        algrec::value::Relation::from_pairs(
            edges.iter().map(|&(a, b)| (Value::int(a), Value::int(b))),
        ),
    );
    let program = algrec::datalog::parser::parse_program(&TC.replace("\\n", "\n")).unwrap();
    let out = algrec::datalog::evaluate(
        &program,
        &db,
        algrec::datalog::Semantics::Stratified,
        Budget::LARGE,
    )
    .unwrap();
    let mut lines: Vec<String> = out
        .model
        .certain
        .facts("tc")
        .map(|args| {
            format!(
                "tc({}).",
                args.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    lines.sort();
    lines
}

#[test]
fn every_read_matches_a_cold_eval_of_its_epoch() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve(listener, Session::new(Budget::LARGE)).unwrap());

    // Setup client: base facts (epoch 1), the TC view (epoch 2).
    let (mut w, mut r) = connect(addr);
    let facts = BASE
        .iter()
        .map(|(a, b)| format!("e({a}, {b})."))
        .collect::<Vec<_>>()
        .join(" ");
    let reply = request(
        &mut w,
        &mut r,
        &format!(r#"{{"id": 1, "op": "load", "facts": "{facts}"}}"#),
    );
    assert_eq!(epoch_of(&reply), 1);
    let reply = request(
        &mut w,
        &mut r,
        &format!(r#"{{"id": 2, "op": "register", "view": "paths", "program": "{TC}"}}"#),
    );
    assert_eq!(epoch_of(&reply), 2);

    // Writers and readers race over separate TCP connections.
    let (writes, reads) = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|wi| {
                scope.spawn(move || {
                    let (mut w, mut r) = connect(addr);
                    (0..FACTS_PER_WRITER)
                        .map(|k| {
                            let (a, b) = edge_of(wi, k);
                            let reply = request(
                                &mut w,
                                &mut r,
                                &format!(r#"{{"id": 1, "op": "assert", "fact": "e({a}, {b})"}}"#),
                            );
                            (epoch_of(&reply), (a, b))
                        })
                        .collect::<Vec<(u64, (i64, i64))>>()
                })
            })
            .collect();
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(move || {
                    let (mut w, mut r) = connect(addr);
                    (0..READS_PER_READER)
                        .map(|_| {
                            let reply = request(
                                &mut w,
                                &mut r,
                                r#"{"id": 1, "op": "query", "view": "paths", "pred": "tc"}"#,
                            );
                            let Some(Json::Arr(items)) = reply.get("certain") else {
                                panic!("no certain array");
                            };
                            let mut lines: Vec<String> = items
                                .iter()
                                .map(|v| v.as_str().unwrap().to_string())
                                .collect();
                            lines.sort();
                            (epoch_of(&reply), lines)
                        })
                        .collect::<Vec<(u64, Vec<String>)>>()
                })
            })
            .collect();
        let writes: Vec<(u64, (i64, i64))> = writers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let reads: Vec<(u64, Vec<String>)> = readers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (writes, reads)
    });

    let (mut w, mut r) = connect(addr);
    request(&mut w, &mut r, r#"{"id": 99, "op": "shutdown"}"#);
    server.join().unwrap();

    // Every committed write has a distinct epoch; together they form the
    // contiguous range after the two setup commits.
    let mut write_epochs: Vec<u64> = writes.iter().map(|&(e, _)| e).collect();
    write_epochs.sort_unstable();
    let expected: Vec<u64> = (3..3 + (WRITERS * FACTS_PER_WRITER) as u64).collect();
    assert_eq!(write_epochs, expected);

    // Replay: the database as of epoch e is BASE + writes with epoch <= e.
    let by_epoch: HashMap<u64, (i64, i64)> = writes.into_iter().collect();
    for (epoch, lines) in reads {
        assert!(epoch >= 2, "read before the view existed: epoch {epoch}");
        let mut edges: Vec<(i64, i64)> = BASE.to_vec();
        edges.extend((3..=epoch).map(|e| by_epoch[&e]));
        assert_eq!(
            lines,
            cold_tc(&edges),
            "read at epoch {epoch} is not the cold evaluation of that epoch's database"
        );
    }
}
