//! Budget exhaustion, engine by engine: every evaluator must hit a clean
//! [`BudgetError`] — never a panic, never a hang — on the paper's two
//! canonical runaway inputs, and the telemetry collected up to the abort
//! must show the consumption that triggered it.
//!
//! The inputs:
//!
//! * the Section 3.2 gadget `S = {a} − S` (as `q(X) :- d(X), not q(X)`
//!   on the deduction side) — semantically convergent, so only a
//!   *deliberately tiny* budget can make it fail, which exercises the
//!   abort paths without any unbounded computation;
//! * an unbounded successor program (`nat(0); nat(succ(X)) :- nat(X)`,
//!   and its algebra twin `ifp(s, {0} ∪ MAP₊₁(s))`) — genuinely
//!   divergent over the infinite initial model of Section 2, so the
//!   budget is the *only* thing standing between the engine and a hang.
//!
//! All three [`BudgetError`] variants are forced for every engine:
//! `Iterations` (zero/tiny iteration allowance), `Facts` (zero/tiny fact
//! allowance), and `ValueSize` (a zero-size allowance that the first
//! constructed value exceeds).

use algrec::prelude::*;
use algrec_datalog::{Atom, CmpOp, Expr, Func, Literal, Rule};
use algrec_value::BudgetError;
use std::collections::BTreeSet;

const BIG: usize = usize::MAX / 2;

/// `nat(0). nat(Y) :- nat(X), Y = succ(X).` — diverges under every
/// semantics; only the budget stops it.
fn successor_program() -> Program {
    Program::from_rules(vec![
        Rule::fact(Atom::new("nat", [Expr::int(0)])),
        Rule::new(
            Atom::new("nat", [Expr::var("Y")]),
            [
                Literal::Pos(Atom::new("nat", [Expr::var("X")])),
                Literal::Cmp(
                    CmpOp::Eq,
                    Expr::var("Y"),
                    Expr::App(Func::Succ, vec![Expr::var("X")]),
                ),
            ],
        ),
    ])
}

/// The Section 3.2 gadget on the deduction side: `q(a)` is undefined, and
/// evaluating it derives at least one fact (the possible pass derives
/// `q(a)`), so tiny budgets trip every limit.
fn gadget_program() -> Program {
    algrec_datalog::parser::parse_program("d(a).\nq(X) :- d(X), not q(X).").unwrap()
}

/// Evaluate traced, expect a budget error, return (error, stats).
fn expect_budget(
    p: &Program,
    sem: Semantics,
    budget: Budget,
) -> (BudgetError, algrec_value::EvalStats) {
    let tr = Trace::collect();
    let err = evaluate_traced(p, &Database::new(), sem, budget, tr.clone())
        .expect_err("must exhaust the budget");
    let stats = tr.stats().expect("stats stay readable after the abort");
    match err {
        algrec_datalog::EvalError::Budget(b) => (b, stats),
        other => panic!("{sem:?}: expected a budget error, got {other}"),
    }
}

#[test]
fn successor_spec_exhausts_every_engine() {
    let p = successor_program();
    for sem in [
        Semantics::Naive,
        Semantics::SemiNaive,
        Semantics::Stratified,
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
        Semantics::ValidExtended(4),
    ] {
        // Iterations: the loop must tick against the meter every round.
        let (err, stats) = expect_budget(&p, sem, Budget::new(3, BIG, BIG));
        assert!(
            matches!(err, BudgetError::Iterations(3)),
            "{sem:?}: {err:?}"
        );
        assert!(
            stats.iterations > 3,
            "{sem:?}: stats must show the iteration that went over"
        );
        assert!(!stats.phases.is_empty(), "{sem:?}: no phase was opened");

        // Facts: every derived fact must count against the meter.
        let (err, stats) = expect_budget(&p, sem, Budget::new(BIG, 5, BIG));
        assert!(matches!(err, BudgetError::Facts(5)), "{sem:?}: {err:?}");
        assert!(
            stats.facts_inserted > 5,
            "{sem:?}: stats must show the fact insertions at failure"
        );

        // ValueSize: every constructed value must be measured.
        let (err, _stats) = expect_budget(&p, sem, Budget::new(BIG, BIG, 0));
        assert!(matches!(err, BudgetError::ValueSize(0)), "{sem:?}: {err:?}");
    }
}

#[test]
fn gadget_exhausts_every_negation_engine() {
    // `q(X) :- d(X), not q(X)` is not stratified and not positive, so the
    // gadget runs under the four negation-capable semantics.
    let p = gadget_program();
    for sem in [
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
        Semantics::ValidExtended(4),
    ] {
        let (err, stats) = expect_budget(&p, sem, Budget::new(0, BIG, BIG));
        assert!(
            matches!(err, BudgetError::Iterations(0)),
            "{sem:?}: {err:?}"
        );
        assert!(stats.iterations > 0);

        let (err, stats) = expect_budget(&p, sem, Budget::new(BIG, 0, BIG));
        assert!(matches!(err, BudgetError::Facts(0)), "{sem:?}: {err:?}");
        assert!(stats.facts_inserted > 0);

        let (err, _) = expect_budget(&p, sem, Budget::new(BIG, BIG, 0));
        assert!(matches!(err, BudgetError::ValueSize(0)), "{sem:?}: {err:?}");
    }
}

#[test]
fn naive_engines_reject_the_gadget_instead_of_looping() {
    // Naive/semi-naive are positive-only: the gadget must be *rejected*
    // (EvalError::Unsafe), not evaluated into a loop or panic.
    for sem in [Semantics::Naive, Semantics::SemiNaive] {
        match evaluate(&gadget_program(), &Database::new(), sem, Budget::SMALL) {
            Err(algrec_datalog::EvalError::Unsafe(_)) => {}
            other => panic!("{sem:?}: expected an Unsafe rejection, got {other:?}"),
        }
    }
}

#[test]
fn algebra_valid_gadget_exhausts_cleanly() {
    // S = {a} − S, the gadget verbatim (plus a MAP twin whose tuple
    // construction trips the value-size meter).
    let gadget = algrec::core::parser::parse_program("def s = {'a'} - s; query s;").unwrap();
    let sized =
        algrec::core::parser::parse_program("def s = map({'a'} - s, [x, x]); query s;").unwrap();
    let db = Database::new();
    let run = |p: &algrec::core::AlgProgram, b: Budget| {
        let tr = Trace::collect();
        let err = eval_valid_traced(p, &db, b, EvalOptions::default(), tr.clone())
            .expect_err("must exhaust");
        (err, tr.stats().unwrap())
    };

    let (err, stats) = run(&gadget, Budget::new(0, BIG, BIG));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::Iterations(0))
    ));
    assert!(stats.iterations > 0);
    assert!(
        stats.phases.iter().any(|(n, _)| n == "alternation"),
        "abort mid-alternation must leave the phase visible: {stats:?}"
    );

    let (err, stats) = run(&gadget, Budget::new(BIG, 0, BIG));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::Facts(0))
    ));
    assert!(stats.facts_inserted > 0);

    let (err, _) = run(&sized, Budget::new(BIG, BIG, 0));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::ValueSize(0))
    ));
}

#[test]
fn algebra_successor_ifp_exhausts_cleanly() {
    // The unbounded successor as an IFP-algebra query: diverges, so each
    // budget axis must stop it.
    let p =
        algrec::core::parser::parse_program("query ifp(s, {0} union map(s, add(x, 1)));").unwrap();
    let db = Database::new();
    let run = |b: Budget| {
        let tr = Trace::collect();
        let err = algrec::core::eval_exact_traced(&p, &db, b, EvalOptions::default(), tr.clone())
            .expect_err("must exhaust");
        (err, tr.stats().unwrap())
    };

    let (err, stats) = run(Budget::new(3, BIG, BIG));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::Iterations(3))
    ));
    assert!(stats.iterations > 3);
    assert!(stats.phases.iter().any(|(n, _)| n == "ifp"));

    let (err, stats) = run(Budget::new(BIG, 5, BIG));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::Facts(5))
    ));
    assert!(stats.facts_inserted > 5);

    let (err, _) = run(Budget::new(BIG, BIG, 0));
    assert!(matches!(
        err,
        algrec::core::CoreError::Budget(BudgetError::ValueSize(0))
    ));
}

#[test]
fn stable_search_respects_budgets() {
    // Grounding for the stable-model search also meters its work: the
    // two-scenario game must fail cleanly under a zero fact budget.
    let p = algrec_datalog::parser::parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
    let edges: BTreeSet<(i64, i64)> = [(1, 2), (2, 1)].into();
    let db = Database::new().with(
        "move",
        Relation::from_pairs(edges.iter().map(|(a, b)| (Value::int(*a), Value::int(*b)))),
    );
    match algrec_datalog::stable_models_of(&p, &db, 16, Budget::new(2, BIG, BIG)) {
        Err(algrec_datalog::EvalError::Budget(BudgetError::Iterations(2))) => {}
        other => panic!("expected an iteration budget error, got {other:?}"),
    }
    // And with a workable budget the same call succeeds — the budget is
    // the only difference.
    assert_eq!(
        algrec_datalog::stable_models_of(&p, &db, 16, Budget::SMALL)
            .unwrap()
            .len(),
        2
    );
}
