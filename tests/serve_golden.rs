//! End-to-end golden test of `algrec serve`: spawn the real binary, drive
//! a scripted NDJSON session over TCP, and diff the reply transcript
//! against a committed golden file byte for byte. A second test checks
//! the serving-layer answers against cold `algrec eval` runs on the same
//! final database — the incremental session must be observationally
//! indistinguishable from from-scratch evaluation.
//!
//! Regenerate the golden transcript after an intentional protocol change
//! with `UPDATE_GOLDEN=1 cargo test --test serve_golden`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const SESSION: &str = include_str!("data/serve_session.ndjson");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/serve_session.golden"
);

/// Programs registered by the script (kept in sync with the .ndjson).
const TC: &str = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).";
const WIN: &str = "win(X) :- e(X, Y), not win(Y).";
/// The EDB after the script's load + assert/retract deltas.
const FINAL_FACTS: &str = "e(1, 2).\ne(3, 4).\ne(4, 5).\ne(5, 5).";

/// Spawn `algrec serve` on an ephemeral port and return the bound
/// address parsed from its `% listening on …` banner.
fn spawn_server() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_algrec"))
        .arg("serve")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .expect("server starts");
    let stdout = child.stdout.take().unwrap();
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("server prints a banner")
        .unwrap();
    let addr = banner
        .strip_prefix("% listening on ")
        .unwrap_or_else(|| panic!("unexpected banner `{banner}`"))
        .to_string();
    (child, addr)
}

/// Send every request line of the scripted session, collecting one reply
/// line per request. The script ends in `shutdown`, so the server exits.
fn run_session(addr: &str) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut incoming = BufReader::new(stream).lines();
    let mut replies = Vec::new();
    for line in SESSION.lines().filter(|l| !l.trim().is_empty()) {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        replies.push(incoming.next().expect("one reply per request").unwrap());
    }
    replies
}

#[test]
fn scripted_session_matches_golden_transcript() {
    let (mut child, addr) = spawn_server();
    let replies = run_session(&addr);
    child.wait().unwrap();
    let transcript = replies.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &transcript).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden transcript exists");
    assert_eq!(
        transcript, golden,
        "server replies diverged from tests/data/serve_session.golden \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

/// Run `algrec eval` cold on the final database and split its stdout into
/// certain fact lines and `% unknown:` facts.
fn cold_eval(program: &str, semantics: &str, pred: &str) -> (Vec<String>, Vec<String>) {
    let dir = std::env::temp_dir().join("algrec-serve-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let ppath = dir.join(format!("{pred}.dl"));
    let fpath = dir.join("facts.dl");
    std::fs::write(&ppath, program).unwrap();
    std::fs::write(&fpath, FINAL_FACTS).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_algrec"))
        .args([
            "eval",
            ppath.to_str().unwrap(),
            fpath.to_str().unwrap(),
            "--semantics",
            semantics,
            "--pred",
            pred,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut certain = Vec::new();
    let mut unknown = Vec::new();
    for line in stdout.lines() {
        if let Some(f) = line.strip_prefix("% unknown: ") {
            unknown.push(f.to_string());
        } else if !line.is_empty() {
            certain.push(line.to_string());
        }
    }
    (certain, unknown)
}

/// Extract the `certain`/`unknown` arrays from a query reply line.
fn reply_answer(reply: &str) -> (Vec<String>, Vec<String>) {
    let parsed = algrec::serve::json::parse(reply).unwrap();
    let strings = |key: &str| -> Vec<String> {
        let Some(algrec::serve::Json::Arr(items)) = parsed.get(key) else {
            panic!("no `{key}` array in {reply}");
        };
        items
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect()
    };
    (strings("certain"), strings("unknown"))
}

#[test]
fn served_answers_match_cold_eval() {
    let (mut child, addr) = spawn_server();
    let replies = run_session(&addr);
    child.wait().unwrap();
    // Reply index k answers request id k+1; ids 10 and 11 are the final
    // queries against the maintained views.
    let (tc_certain, tc_unknown) = reply_answer(&replies[9]);
    assert_eq!(cold_eval(TC, "stratified", "tc"), (tc_certain, tc_unknown));
    let (win_certain, win_unknown) = reply_answer(&replies[10]);
    assert_eq!(cold_eval(WIN, "valid", "win"), (win_certain, win_unknown));
    // The cyclic `e(5, 5)` move really does make the game three-valued,
    // so the equality above compared a non-trivial unknown set.
    let (_, win_unknown) = reply_answer(&replies[10]);
    assert!(!win_unknown.is_empty(), "expected unknown win facts");
}
