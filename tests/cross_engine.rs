//! Property-based cross-engine tests: on randomly generated databases,
//! the engines and translations must agree wherever the paper says they
//! do, and the three-valued structure must be coherent wherever it says
//! they may not.

use algrec::core::valid_eval::eval_valid_with;
use algrec::core::{eval_exact_with, AlgExpr, AlgProgram, CmpOp, EvalOptions, FuncExpr, OpDef};
use algrec::prelude::*;
use algrec_datalog::parser::parse_program as parse_dl;
use algrec_datalog::stable_models_of;
use algrec_translate::{datalog_to_algebra, edb_arities, inflationary_to_valid};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn edge_db(name: &str, edges: &BTreeSet<(i64, i64)>) -> Database {
    Database::new().with(
        name,
        Relation::from_pairs(edges.iter().map(|(a, b)| (Value::int(*a), Value::int(*b)))),
    )
}

fn arb_edges(nodes: i64, max_edges: usize) -> impl Strategy<Value = BTreeSet<(i64, i64)>> {
    prop::collection::btree_set((0..nodes, 0..nodes), 0..max_edges)
}

fn tc_program() -> algrec_datalog::Program {
    parse_dl("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap()
}

fn win_program() -> algrec_datalog::Program {
    parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Positive programs: every semantics computes the same model, and it
    /// matches the IFP-algebra evaluation of the same query.
    #[test]
    fn all_semantics_agree_on_tc(edges in arb_edges(8, 20)) {
        let db = edge_db("edge", &edges);
        let p = tc_program();
        let reference = evaluate(&p, &db, Semantics::SemiNaive, Budget::SMALL).unwrap();
        for sem in [
            Semantics::Naive,
            Semantics::Stratified,
            Semantics::Inflationary,
            Semantics::WellFounded,
            Semantics::Valid,
        ] {
            let out = evaluate(&p, &db, sem, Budget::SMALL).unwrap();
            prop_assert!(out.model.is_exact());
            prop_assert_eq!(&out.model.certain, &reference.model.certain);
        }
        // the algebra side
        let alg = algrec::core::parser::parse_program(
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
        ).unwrap();
        let alg_out = eval_exact(&alg, &db, Budget::SMALL).unwrap();
        let expected: BTreeSet<Value> = reference.model.certain.facts("tc")
            .map(|args| Value::pair(args[0].clone(), args[1].clone()))
            .collect();
        prop_assert_eq!(alg_out, expected);
    }

    /// Theorem 6.2 on random WIN/MOVE games: the deduction and algebra=
    /// valid models agree exactly, unknowns included.
    #[test]
    fn theorem_6_2_on_random_games(edges in arb_edges(7, 14)) {
        let db = edge_db("move", &edges);
        let rt = check_roundtrip(&win_program(), "win", &db, Budget::SMALL).unwrap();
        prop_assert!(rt.agree(), "{:?}", rt);
    }

    /// The valid model sandwiches every stable model: certain ⊆ M ⊆
    /// possible; and when the valid model is exact there is exactly one
    /// stable model.
    #[test]
    fn valid_model_approximates_stable_models(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let p = win_program();
        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        let models = match stable_models_of(&p, &db, 18, Budget::SMALL) {
            Ok(m) => m,
            Err(algrec_datalog::EvalError::TooManyUnknowns { .. }) => return Ok(()),
            Err(e) => panic!("{e}"),
        };
        for m in &models {
            for (pred, args) in valid.model.certain.iter() {
                if pred == "win" {
                    prop_assert!(m.holds(pred, args), "certain fact outside a stable model");
                }
            }
            for (_, args) in m.iter() {
                prop_assert!(
                    valid.model.possible.holds("win", args),
                    "stable fact outside the possible set"
                );
            }
        }
        if valid.model.is_exact() {
            prop_assert_eq!(models.len(), 1);
        }
    }

    /// Prop 5.2 on random games: the stage simulation of the inflationary
    /// semantics is exact (for a sufficient stage bound).
    #[test]
    fn prop_5_2_on_random_games(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let p = win_program();
        let stages = (edges.len() as i64 + 3).max(4);
        let staged = inflationary_to_valid(&p, stages);
        let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
        let valid = evaluate(&staged, &db, Semantics::Valid, Budget::LARGE).unwrap();
        prop_assert!(valid.model.is_exact());
        let a: BTreeSet<_> = infl.model.certain.facts("win").cloned().collect();
        let b: BTreeSet<_> = valid.model.certain.facts("win").cloned().collect();
        prop_assert_eq!(a, b);
    }

    /// Stratified workloads: valid ≡ stratified, and the three-valued
    /// model is exact, on random graphs (Theorem 4.3's semantic core).
    #[test]
    fn stratified_equals_valid_randomized(edges in arb_edges(7, 16)) {
        let mut db = edge_db("e", &edges);
        let nodes: BTreeSet<i64> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
        db.set("n", Relation::from_values(nodes.iter().map(|k| Value::int(*k))));
        let p = parse_dl(
            "r(X, Y) :- e(X, Y).\n\
             r(X, Z) :- r(X, Y), e(Y, Z).\n\
             un(X, Y) :- n(X), n(Y), not r(X, Y).\n\
             src(X) :- n(X), not dst(X).\n\
             dst(Y) :- e(X, Y).",
        ).unwrap();
        let strat = evaluate(&p, &db, Semantics::Stratified, Budget::SMALL).unwrap();
        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        prop_assert!(valid.model.is_exact());
        prop_assert_eq!(strat.model.certain, valid.model.certain);
    }

    /// The well-founded unknown set is empty exactly on games whose
    /// MOVE graph has no cycle reachable ... weaker invariant tested:
    /// acyclic graphs are always fully decided.
    #[test]
    fn acyclic_games_are_decided(perm in prop::collection::vec(0..100i64, 2..9)) {
        // build a DAG: edges only from lower to higher index
        let mut edges = BTreeSet::new();
        for (i, a) in perm.iter().enumerate() {
            for (j, b) in perm.iter().enumerate() {
                if i < j && (a + b) % 3 == 0 {
                    edges.insert((i as i64, j as i64));
                }
            }
        }
        let db = edge_db("move", &edges);
        let out = evaluate(&win_program(), &db, Semantics::Valid, Budget::SMALL).unwrap();
        prop_assert!(out.model.is_exact());
    }

    /// Telemetry agreement: on two-valued (positive) instances every
    /// engine reports the same `facts_materialized` — the final model is
    /// engine-independent even though the work done (iterations, deltas)
    /// differs, and the traced count matches the model's actual size.
    #[test]
    fn facts_materialized_agrees_across_engines(edges in arb_edges(8, 20)) {
        let db = edge_db("edge", &edges);
        let p = tc_program();
        let mut counts: Vec<usize> = Vec::new();
        for sem in [
            Semantics::Naive,
            Semantics::SemiNaive,
            Semantics::Stratified,
            Semantics::Inflationary,
            Semantics::WellFounded,
            Semantics::Valid,
        ] {
            let tr = Trace::collect();
            let out = evaluate_traced(&p, &db, sem, Budget::SMALL, tr.clone()).unwrap();
            let stats = tr.stats().expect("collect trace yields stats");
            prop_assert_eq!(
                stats.facts_materialized,
                out.model.certain.total(),
                "{:?}: traced materialized count must be the model size",
                sem
            );
            counts.push(stats.facts_materialized);
        }
        prop_assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "engines disagree on facts_materialized: {:?}",
            counts
        );
    }

    /// Budget safety: whatever the input, evaluation either completes or
    /// reports a budget error — never hangs past its iteration allowance.
    #[test]
    fn tight_budgets_fail_cleanly(edges in arb_edges(6, 12)) {
        let db = edge_db("edge", &edges);
        let tiny = Budget::new(3, 10, 8);
        match evaluate(&tc_program(), &db, Semantics::Valid, tiny) {
            Ok(out) => prop_assert!(out.model.certain.total() <= 10 + db.get("edge").unwrap().len()),
            Err(algrec_datalog::EvalError::Budget(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}

/// Random algebra expressions over an `edge`/`n` database: unions,
/// differences, joins in several recognized and unrecognized shapes
/// (including out-of-range projections, which must error identically),
/// maps, and monotone as well as non-monotone IFPs.
fn arb_alg_expr() -> impl Strategy<Value = AlgExpr> {
    let leaf = prop_oneof![
        Just(AlgExpr::name("edge")),
        Just(AlgExpr::name("n")),
        Just(AlgExpr::lit([Value::int(1)])),
        Just(AlgExpr::lit(Vec::new())),
    ];
    let eq = |i: usize, j: usize| {
        FuncExpr::Cmp(
            CmpOp::Eq,
            Box::new(FuncExpr::proj(i)),
            Box::new(FuncExpr::proj(j)),
        )
    };
    leaf.prop_recursive(3, 24, 2, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| AlgExpr::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| AlgExpr::diff(a, b)),
            // an equi-join in the recognized shape
            (inner.clone(), inner.clone())
                .prop_map(move |(a, b)| AlgExpr::select(AlgExpr::product(a, b), eq(1, 2))),
            // a selection whose projection may run out of range: the
            // optimized path must reproduce the exact error behavior
            (inner.clone(), inner.clone())
                .prop_map(move |(a, b)| AlgExpr::select(AlgExpr::product(a, b), eq(3, 0))),
            inner
                .clone()
                .prop_map(|a| AlgExpr::map(a, FuncExpr::proj(0))),
            // monotone IFP (delta-eligible)
            inner
                .clone()
                .prop_map(|a| AlgExpr::ifp("s", AlgExpr::union(AlgExpr::name("s"), a),)),
            // non-monotone IFP (delta-ineligible: must fall back and agree)
            inner
                .clone()
                .prop_map(|a| AlgExpr::ifp("s", AlgExpr::diff(a, AlgExpr::name("s")),)),
        ]
    })
}

/// A small database with `edge` pairs and its node set `n`.
fn graph_db(edges: &BTreeSet<(i64, i64)>) -> Database {
    let mut db = edge_db("edge", edges);
    let nodes: BTreeSet<i64> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
    db.set(
        "n",
        Relation::from_values(nodes.iter().map(|k| Value::int(*k))),
    );
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimized data layer (interning + indexes + delta fixpoints)
    /// computes exactly what the seed slow path computes on random
    /// algebra expressions — same sets, same errors, same canonical
    /// iteration order and rendering.
    #[test]
    fn optimized_exact_eval_matches_baseline(
        expr in arb_alg_expr(),
        edges in arb_edges(6, 12),
    ) {
        let db = graph_db(&edges);
        let program = AlgProgram::query(expr);
        let optimized = eval_exact_with(&program, &db, Budget::SMALL, EvalOptions::OPTIMIZED);
        let baseline = eval_exact_with(&program, &db, Budget::SMALL, EvalOptions::BASELINE);
        prop_assert_eq!(&optimized, &baseline);
        if let (Ok(o), Ok(b)) = (&optimized, &baseline) {
            // canonical (sorted) iteration order, element by element
            let ov: Vec<&Value> = o.iter().collect();
            let bv: Vec<&Value> = b.iter().collect();
            prop_assert_eq!(ov, bv);
            prop_assert!(o.iter().zip(o.iter().skip(1)).all(|(x, y)| x < y));
            // rendering unchanged
            prop_assert_eq!(format!("{o:?}"), format!("{b:?}"));
        }
    }

    /// The same agreement under the valid (alternating fixpoint)
    /// semantics on random recursive definition systems with negation:
    /// certain members, unknown members, per-constant values, and the
    /// alternation round count all match the seed slow path.
    #[test]
    fn optimized_valid_eval_matches_baseline(
        body_s in arb_alg_expr(),
        body_t in arb_alg_expr(),
        edges in arb_edges(5, 8),
    ) {
        let db = graph_db(&edges);
        // def s = body_s − t; def t = body_t − s; query s ∪ t.
        // The mutual difference makes undefined (unknown) members likely.
        let program = AlgProgram::new(
            [
                OpDef::new(
                    "s",
                    Vec::<String>::new(),
                    AlgExpr::diff(body_s, AlgExpr::name("t")),
                ),
                OpDef::new(
                    "t",
                    Vec::<String>::new(),
                    AlgExpr::diff(body_t, AlgExpr::name("s")),
                ),
            ],
            AlgExpr::union(AlgExpr::name("s"), AlgExpr::name("t")),
        ).unwrap();
        let optimized = eval_valid_with(&program, &db, Budget::SMALL, EvalOptions::OPTIMIZED);
        let baseline = eval_valid_with(&program, &db, Budget::SMALL, EvalOptions::BASELINE);
        match (optimized, baseline) {
            (Ok(o), Ok(b)) => {
                prop_assert_eq!(&o.query, &b.query);
                prop_assert_eq!(&o.constants, &b.constants);
                prop_assert_eq!(o.outer_rounds, b.outer_rounds);
                // certain and unknown members, in canonical order
                let oc: Vec<&Value> = o.query.lower().iter().collect();
                let bc: Vec<&Value> = b.query.lower().iter().collect();
                prop_assert_eq!(oc, bc);
                prop_assert_eq!(o.query.unknown_members(), b.query.unknown_members());
            }
            (o, b) => prop_assert_eq!(o.err(), b.err()),
        }
    }

    /// Theorem 6.2 round trips with the optimized algebra side: the
    /// translated algebra= program agrees with the deduction engine on
    /// certain AND unknown facts under every optimization combination.
    #[test]
    fn optimized_roundtrip_agrees_on_random_games(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let program = win_program();
        let alg = datalog_to_algebra(&program, "win", &edb_arities(&db)).unwrap();
        let reference = eval_valid_with(&alg, &db, Budget::SMALL, EvalOptions::BASELINE).unwrap();
        for opts in [
            EvalOptions::OPTIMIZED,
            EvalOptions { interning: false, ..EvalOptions::OPTIMIZED },
            EvalOptions { index: false, ..EvalOptions::OPTIMIZED },
            EvalOptions { delta: false, ..EvalOptions::OPTIMIZED },
        ] {
            let out = eval_valid_with(&alg, &db, Budget::SMALL, opts).unwrap();
            prop_assert_eq!(&out.query, &reference.query);
            prop_assert_eq!(&out.constants, &reference.constants);
        }
    }
}

// Named replays of cases `cross_engine.proptest-regressions` records
// (seed cc 384d2f…: shrinks to `edges = {}`). The empty database is the
// degenerate instance that once broke an engine; keep it pinned as plain
// unit tests so the failure mode is visible by name, not only through
// proptest's seed file.

/// Seed cc 384d2f… (`edges = {}`): every semantics must handle a program
/// whose EDB is completely empty — no facts, no iterations beyond the
/// fixpoint check, an exact empty model.
#[test]
fn regression_empty_edge_set_all_semantics() {
    let db = edge_db("edge", &BTreeSet::new());
    let p = tc_program();
    for sem in [
        Semantics::Naive,
        Semantics::SemiNaive,
        Semantics::Stratified,
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
    ] {
        let tr = Trace::collect();
        let out = evaluate_traced(&p, &db, sem, Budget::SMALL, tr.clone()).unwrap();
        assert!(out.model.is_exact(), "{sem:?} must be exact on empty EDB");
        assert_eq!(out.model.certain.total(), 0, "{sem:?} must derive nothing");
        let stats = tr.stats().unwrap();
        assert_eq!(stats.facts_materialized, 0);
        assert_eq!(stats.facts_inserted, 0, "{sem:?} did work on an empty EDB");
    }
}

/// Seed cc 384d2f… on the game side: the empty MOVE graph is a decided
/// game (no positions at all) for both paradigms, and the Theorem 6.2
/// round trip holds on it.
#[test]
fn regression_empty_game_roundtrip() {
    let db = edge_db("move", &BTreeSet::new());
    let rt = check_roundtrip(&win_program(), "win", &db, Budget::SMALL).unwrap();
    assert!(rt.agree(), "{rt:?}");
    assert!(rt.datalog_certain.is_empty());
    assert!(rt.datalog_unknown.is_empty());
}
