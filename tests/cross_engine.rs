//! Property-based cross-engine tests: on randomly generated databases,
//! the engines and translations must agree wherever the paper says they
//! do, and the three-valued structure must be coherent wherever it says
//! they may not.

use algrec::prelude::*;
use algrec_datalog::parser::parse_program as parse_dl;
use algrec_datalog::stable_models_of;
use algrec_translate::inflationary_to_valid;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn edge_db(name: &str, edges: &BTreeSet<(i64, i64)>) -> Database {
    Database::new().with(
        name,
        Relation::from_pairs(edges.iter().map(|(a, b)| (Value::int(*a), Value::int(*b)))),
    )
}

fn arb_edges(nodes: i64, max_edges: usize) -> impl Strategy<Value = BTreeSet<(i64, i64)>> {
    prop::collection::btree_set((0..nodes, 0..nodes), 0..max_edges)
}

fn tc_program() -> algrec_datalog::Program {
    parse_dl("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap()
}

fn win_program() -> algrec_datalog::Program {
    parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Positive programs: every semantics computes the same model, and it
    /// matches the IFP-algebra evaluation of the same query.
    #[test]
    fn all_semantics_agree_on_tc(edges in arb_edges(8, 20)) {
        let db = edge_db("edge", &edges);
        let p = tc_program();
        let reference = evaluate(&p, &db, Semantics::SemiNaive, Budget::SMALL).unwrap();
        for sem in [
            Semantics::Naive,
            Semantics::Stratified,
            Semantics::Inflationary,
            Semantics::WellFounded,
            Semantics::Valid,
        ] {
            let out = evaluate(&p, &db, sem, Budget::SMALL).unwrap();
            prop_assert!(out.model.is_exact());
            prop_assert_eq!(&out.model.certain, &reference.model.certain);
        }
        // the algebra side
        let alg = algrec::core::parser::parse_program(
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
        ).unwrap();
        let alg_out = eval_exact(&alg, &db, Budget::SMALL).unwrap();
        let expected: BTreeSet<Value> = reference.model.certain.facts("tc")
            .map(|args| Value::pair(args[0].clone(), args[1].clone()))
            .collect();
        prop_assert_eq!(alg_out, expected);
    }

    /// Theorem 6.2 on random WIN/MOVE games: the deduction and algebra=
    /// valid models agree exactly, unknowns included.
    #[test]
    fn theorem_6_2_on_random_games(edges in arb_edges(7, 14)) {
        let db = edge_db("move", &edges);
        let rt = check_roundtrip(&win_program(), "win", &db, Budget::SMALL).unwrap();
        prop_assert!(rt.agree(), "{:?}", rt);
    }

    /// The valid model sandwiches every stable model: certain ⊆ M ⊆
    /// possible; and when the valid model is exact there is exactly one
    /// stable model.
    #[test]
    fn valid_model_approximates_stable_models(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let p = win_program();
        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        let models = match stable_models_of(&p, &db, 18, Budget::SMALL) {
            Ok(m) => m,
            Err(algrec_datalog::EvalError::TooManyUnknowns { .. }) => return Ok(()),
            Err(e) => panic!("{e}"),
        };
        for m in &models {
            for (pred, args) in valid.model.certain.iter() {
                if pred == "win" {
                    prop_assert!(m.holds(pred, args), "certain fact outside a stable model");
                }
            }
            for (_, args) in m.iter() {
                prop_assert!(
                    valid.model.possible.holds("win", args),
                    "stable fact outside the possible set"
                );
            }
        }
        if valid.model.is_exact() {
            prop_assert_eq!(models.len(), 1);
        }
    }

    /// Prop 5.2 on random games: the stage simulation of the inflationary
    /// semantics is exact (for a sufficient stage bound).
    #[test]
    fn prop_5_2_on_random_games(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let p = win_program();
        let stages = (edges.len() as i64 + 3).max(4);
        let staged = inflationary_to_valid(&p, stages);
        let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
        let valid = evaluate(&staged, &db, Semantics::Valid, Budget::LARGE).unwrap();
        prop_assert!(valid.model.is_exact());
        let a: BTreeSet<_> = infl.model.certain.facts("win").cloned().collect();
        let b: BTreeSet<_> = valid.model.certain.facts("win").cloned().collect();
        prop_assert_eq!(a, b);
    }

    /// Stratified workloads: valid ≡ stratified, and the three-valued
    /// model is exact, on random graphs (Theorem 4.3's semantic core).
    #[test]
    fn stratified_equals_valid_randomized(edges in arb_edges(7, 16)) {
        let mut db = edge_db("e", &edges);
        let nodes: BTreeSet<i64> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
        db.set("n", Relation::from_values(nodes.iter().map(|k| Value::int(*k))));
        let p = parse_dl(
            "r(X, Y) :- e(X, Y).\n\
             r(X, Z) :- r(X, Y), e(Y, Z).\n\
             un(X, Y) :- n(X), n(Y), not r(X, Y).\n\
             src(X) :- n(X), not dst(X).\n\
             dst(Y) :- e(X, Y).",
        ).unwrap();
        let strat = evaluate(&p, &db, Semantics::Stratified, Budget::SMALL).unwrap();
        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        prop_assert!(valid.model.is_exact());
        prop_assert_eq!(strat.model.certain, valid.model.certain);
    }

    /// The well-founded unknown set is empty exactly on games whose
    /// MOVE graph has no cycle reachable ... weaker invariant tested:
    /// acyclic graphs are always fully decided.
    #[test]
    fn acyclic_games_are_decided(perm in prop::collection::vec(0..100i64, 2..9)) {
        // build a DAG: edges only from lower to higher index
        let mut edges = BTreeSet::new();
        for (i, a) in perm.iter().enumerate() {
            for (j, b) in perm.iter().enumerate() {
                if i < j && (a + b) % 3 == 0 {
                    edges.insert((i as i64, j as i64));
                }
            }
        }
        let db = edge_db("move", &edges);
        let out = evaluate(&win_program(), &db, Semantics::Valid, Budget::SMALL).unwrap();
        prop_assert!(out.model.is_exact());
    }

    /// Budget safety: whatever the input, evaluation either completes or
    /// reports a budget error — never hangs past its iteration allowance.
    #[test]
    fn tight_budgets_fail_cleanly(edges in arb_edges(6, 12)) {
        let db = edge_db("edge", &edges);
        let tiny = Budget::new(3, 10, 8);
        match evaluate(&tc_program(), &db, Semantics::Valid, tiny) {
            Ok(out) => prop_assert!(out.model.certain.total() <= 10 + db.get("edge").unwrap().len()),
            Err(algrec_datalog::EvalError::Budget(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
