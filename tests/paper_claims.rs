//! One integration test per claim of the paper: every numbered example,
//! proposition and theorem, exercised end-to-end across the crates.

use algrec::prelude::*;
use algrec_adt::specs;
use algrec_adt::term::Term;
use algrec_adt::valid_interp::ValidInterpretation;
use algrec_core::analysis::{classify, prop34_check, LanguageClass};
use algrec_core::parser::parse_program as parse_alg;
use algrec_datalog::parser::parse_program as parse_dl;
use algrec_datalog::safety;
use algrec_translate::{
    algebra_to_datalog, edb_arities, ifp_algebra_to_algebra_eq, inflationary_to_valid,
    TranslationMode,
};

fn ints(pairs: &[(i64, i64)]) -> Relation {
    Relation::from_pairs(pairs.iter().map(|(a, b)| (Value::int(*a), Value::int(*b))))
}

/// Section 2.1: the SET(nat) specification gives canonical finite sets
/// with total membership.
#[test]
fn section_2_1_set_specification() {
    let vi = ValidInterpretation::compute(&specs::set_spec(), 3, Budget::SMALL).unwrap();
    assert!(vi.is_total());
    let single = Term::op("ins", [specs::numeral(0), Term::cons("empty")]);
    assert_eq!(
        vi.eq_truth(
            &Term::op("mem", [specs::numeral(0), single.clone()]),
            &Term::cons("tt")
        ),
        Truth::True
    );
    assert_eq!(
        vi.eq_truth(
            &Term::op("mem", [specs::numeral(1), single]),
            &Term::cons("ff")
        ),
        Truth::True
    );
}

/// Example 1: the even set Sᵉ — every even in, every odd certainly out,
/// via the completion disequation.
#[test]
fn example_1_even_set_specification() {
    let spec = specs::even_set_spec(2);
    let vi = ValidInterpretation::compute_over(&spec, specs::even_set_universe(2), Budget::LARGE)
        .unwrap();
    for k in 0..=3usize {
        let expect = if k % 2 == 0 { "tt" } else { "ff" };
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [specs::numeral(k), Term::cons("se")]),
                &Term::cons(expect)
            ),
            Truth::True,
            "MEM({k}, se) = {expect}"
        );
    }
}

/// Example 2: three valid models, none initial.
#[test]
fn example_2_no_initial_valid_model() {
    let analysis = algrec_adt::initial_valid_model(&specs::example2_spec(), Budget::SMALL).unwrap();
    assert_eq!(analysis.valid_models.len(), 3);
    assert!(analysis.initial.is_none());
}

/// Proposition 2.3(2): the constants-only decision procedure terminates
/// and distinguishes well-defined from ill-defined specifications.
#[test]
fn prop_2_3_2_decision_procedure() {
    // well-defined: plain identification
    let mut sig = algrec_adt::Signature::new();
    sig.add_sort("s");
    for c in ["a", "b"] {
        sig.add_op(algrec_adt::OpDecl::constant(c, "s")).unwrap();
    }
    let spec = algrec_adt::Specification::new(
        sig,
        [algrec_adt::ConditionalEquation::plain(
            Term::cons("a"),
            Term::cons("b"),
        )],
    )
    .unwrap();
    assert!(algrec_adt::initial_valid_model(&spec, Budget::SMALL)
        .unwrap()
        .initial
        .is_some());
    // ill-defined: Example 2
    assert!(
        algrec_adt::initial_valid_model(&specs::example2_spec(), Budget::SMALL)
            .unwrap()
            .initial
            .is_none()
    );
}

/// Theorem 3.1: IFP-algebra programs are always well-defined — the
/// evaluation of any IFP-algebra query is two-valued.
#[test]
fn theorem_3_1_ifp_algebra_well_defined() {
    let db = Database::new().with("edge", ints(&[(1, 2), (2, 1), (3, 3)]));
    for src in [
        "query ifp(x, edge union map(select(x * edge, x.1 = x.2), [x.0, x.3]));",
        "query ifp(x, {'a'} - x);",
        "query ifp(x, edge - x);",
        "query map(edge, x.0) - map(edge, x.1);",
    ] {
        let p = parse_alg(src).unwrap();
        assert!(p.is_nonrecursive());
        // eval_valid on a non-recursive program must be exact
        let out = algrec::core::eval_valid(&p, &db, Budget::SMALL).unwrap();
        assert!(out.is_well_defined(), "{src} should be two-valued");
        // and must agree with direct exact evaluation
        let exact = eval_exact(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out.query.to_exact().unwrap(), exact);
    }
}

/// Section 3.2: S = {a} − S has no initial valid model; membership is
/// undefined (the Proposition 3.2 gadget).
#[test]
fn prop_3_2_gadget_undefined() {
    let p = parse_alg("def s = {'a'} - s; query s;").unwrap();
    let out = algrec::core::eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
    assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
    assert!(!out.is_well_defined());

    // The reduction of Prop 3.2: S' = σ_{=a}(S) − S' is well-defined iff
    // a ∉ S. With S = {a}: undefined. With S = {b}: defined (S' empty).
    let p2 = parse_alg("def sp = select(s0, x = 'a') - sp; query sp;").unwrap();
    let db_in = Database::new().with("s0", Relation::from_values([Value::str("a")]));
    let db_out = Database::new().with("s0", Relation::from_values([Value::str("b")]));
    assert!(!algrec::core::eval_valid(&p2, &db_in, Budget::SMALL)
        .unwrap()
        .is_well_defined());
    assert!(algrec::core::eval_valid(&p2, &db_out, Budget::SMALL)
        .unwrap()
        .is_well_defined());
}

/// Proposition 3.4: monotone bodies — recursion agrees with IFP; the
/// paper's non-monotone witness diverges.
#[test]
fn prop_3_4_monotone_fixpoints() {
    let db = Database::new().with("edge", ints(&[(1, 2), (2, 3), (3, 1)]));
    let tc_body =
        algrec_core::parser::parse_expr("edge union map(select(x * edge, x.1 = x.2), [x.0, x.3])")
            .unwrap();
    let out = prop34_check("x", &tc_body, &db, Budget::SMALL).unwrap();
    assert!(out.monotone && out.agree);

    let witness = algrec_core::parser::parse_expr("{'a'} - x").unwrap();
    let out2 = prop34_check("x", &witness, &Database::new(), Budget::SMALL).unwrap();
    assert!(!out2.monotone && !out2.agree && !out2.recursive_well_defined);
}

/// Theorem 3.5 + Corollary 3.6: every IFP-algebra query has an IFP-free
/// algebra= equivalent.
#[test]
fn theorem_3_5_ifp_redundant() {
    let db = Database::new().with("edge", ints(&[(1, 2), (2, 3)]));
    for (src, stages) in [
        ("query ifp(x, {'a'} - x);", 4),
        (
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
            6,
        ),
    ] {
        let p = parse_alg(src).unwrap();
        let expected = eval_exact(&p, &db, Budget::SMALL).unwrap();
        let alg_eq = ifp_algebra_to_algebra_eq(&p, &db, stages).unwrap();
        assert!(!alg_eq.uses_ifp());
        assert_eq!(classify(&alg_eq), LanguageClass::AlgebraEq);
        let out = algrec::core::eval_valid(&alg_eq, &db, Budget::LARGE).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.query.to_exact().unwrap(), expected, "{src}");
    }
}

/// Definition 4.1 / safety: the checker accepts the paper's programs and
/// rejects the unrestricted ones; Prop 4.2's transform repairs them.
#[test]
fn def_4_1_and_prop_4_2_safety() {
    let safe = parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap();
    assert!(safety::is_safe(&safe));

    let unsafe_p = parse_dl("q(X) :- not e(X).").unwrap();
    assert!(!safety::is_safe(&unsafe_p));

    let repaired = safety::make_safe(&unsafe_p, &[("e", 1), ("d", 1)]);
    assert!(safety::is_safe(&repaired));
    let db = Database::new()
        .with("e", Relation::from_values([Value::int(1)]))
        .with("d", Relation::from_values([Value::int(1), Value::int(2)]));
    let out = evaluate(&repaired, &db, Semantics::Valid, Budget::SMALL).unwrap();
    assert!(out.model.truth("q", &[Value::int(2)]).is_true());
    assert!(out.model.truth("q", &[Value::int(1)]).is_false());
}

/// Theorem 4.3: on stratified workloads, stratified deduction, the valid
/// semantics and the positive IFP-algebra all coincide.
#[test]
fn theorem_4_3_stratified_equivalence() {
    let db = Database::new()
        .with("edge", ints(&[(1, 2), (2, 3), (3, 4), (4, 2)]))
        .with("node", Relation::from_values((1..=4).map(Value::int)));
    let ded = parse_dl(
        "tc(X, Y) :- edge(X, Y).\n\
         tc(X, Z) :- tc(X, Y), edge(Y, Z).\n\
         un(X, Y) :- node(X), node(Y), not tc(X, Y).",
    )
    .unwrap();
    let strat = evaluate(&ded, &db, Semantics::Stratified, Budget::SMALL).unwrap();
    let valid = evaluate(&ded, &db, Semantics::Valid, Budget::SMALL).unwrap();
    assert!(valid.model.is_exact());
    assert_eq!(strat.model.certain, valid.model.certain);

    // positive IFP-algebra expression of `un`
    let alg = parse_alg(
        "def tc = ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));
         query (node * node) - tc;",
    )
    .unwrap();
    assert_eq!(classify(&alg), LanguageClass::PositiveIfpAlgebra);
    let alg_out = eval_exact(&alg, &db, Budget::SMALL).unwrap();
    let expected: std::collections::BTreeSet<Value> = strat
        .model
        .certain
        .facts("un")
        .map(|args| Value::pair(args[0].clone(), args[1].clone()))
        .collect();
    assert_eq!(alg_out, expected);
}

/// Proposition 5.1 (+ Example 4): algebra → deduction, inflationary
/// target; the valid semantics of the same translation diverges.
#[test]
fn prop_5_1_and_example_4() {
    let p = parse_alg("query ifp(x, {'a'} - x);").unwrap();
    let t = algebra_to_datalog(&p, &Default::default(), TranslationMode::Naive).unwrap();
    let db = Database::new();
    let infl = evaluate(&t.program, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
    assert!(infl
        .model
        .truth(&t.result_pred, &[Value::str("a")])
        .is_true());
    let valid = evaluate(&t.program, &db, Semantics::Valid, Budget::SMALL).unwrap();
    assert!(valid
        .model
        .truth(&t.result_pred, &[Value::str("a")])
        .is_unknown());
}

/// Proposition 5.2: the stage simulation makes the inflationary result
/// valid-computable.
#[test]
fn prop_5_2_stage_simulation() {
    let p = parse_dl("r(a).\nq(X) :- r(X), not q(X).\nz(X) :- q(X), not r(X).").unwrap();
    let staged = inflationary_to_valid(&p, 6);
    let db = Database::new();
    let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
    let valid = evaluate(&staged, &db, Semantics::Valid, Budget::LARGE).unwrap();
    assert!(valid.model.is_exact());
    for pred in ["q", "r", "z"] {
        let a: Vec<_> = infl.model.certain.facts(pred).cloned().collect();
        let b: Vec<_> = valid.model.certain.facts(pred).cloned().collect();
        assert_eq!(a, b, "{pred}");
    }
}

/// Proposition 5.4: algebra= → deduction under the valid semantics on
/// both sides.
#[test]
fn prop_5_4_algebra_eq_to_deduction() {
    let p = parse_alg("def win = map(move - (map(move, x.0) * win), x.0); query win;").unwrap();
    let db = Database::new().with("move", ints(&[(1, 2), (2, 1), (2, 3)]));
    let t = algebra_to_datalog(&p, &edb_arities(&db), TranslationMode::Naive).unwrap();
    let dl = evaluate(&t.program, &db, Semantics::Valid, Budget::SMALL).unwrap();
    let alg = algrec::core::eval_valid(&p, &db, Budget::SMALL).unwrap();
    for k in 1..=3 {
        assert_eq!(
            dl.model.truth(&t.result_pred, &[Value::int(k)]),
            alg.member(&Value::int(k)),
            "win({k})"
        );
    }
}

/// Proposition 6.1 / Theorem 6.2: safe deduction → algebra=, three-valued
/// agreement.
#[test]
fn theorem_6_2_roundtrips() {
    let cases: Vec<(&str, &str, Database)> = vec![
        (
            "win(X) :- move(X, Y), not win(Y).",
            "win",
            Database::new().with("move", ints(&[(1, 2), (2, 1), (3, 1), (4, 4)])),
        ),
        (
            "sg(X, X) :- person(X).\n\
             sg(X, Y) :- parent(XP, X), parent(YP, Y), sg(XP, YP).",
            "sg",
            Database::new()
                .with("person", Relation::from_values((1..=4).map(Value::int)))
                .with("parent", ints(&[(1, 3), (2, 4)])),
        ),
        (
            "p(X) :- d(X), not q(X).\nq(X) :- d(X), not p(X).",
            "p",
            Database::new().with("d", Relation::from_values([Value::int(1)])),
        ),
    ];
    for (src, pred, db) in cases {
        let program = parse_dl(src).unwrap();
        let rt = check_roundtrip(&program, pred, &db, Budget::SMALL).unwrap();
        assert!(rt.agree(), "{src} on {pred}: {rt:?}");
    }
}

/// Section 7's other semantics: stable models refine the valid residue
/// (extended valid promotes scenario-invariant facts).
#[test]
fn section_7_other_semantics() {
    let src = "p(X) :- d(X), not q(X).\n\
               q(X) :- d(X), not p(X).\n\
               r(X) :- p(X).\n\
               r(X) :- q(X).";
    let program = parse_dl(src).unwrap();
    let db = Database::new().with("d", Relation::from_values([Value::str("a")]));
    let wf = evaluate(&program, &db, Semantics::WellFounded, Budget::SMALL).unwrap();
    assert!(wf.model.truth("r", &[Value::str("a")]).is_unknown());
    let ve = evaluate(&program, &db, Semantics::ValidExtended(16), Budget::SMALL).unwrap();
    assert!(ve.model.truth("r", &[Value::str("a")]).is_true());
    assert_eq!(ve.stable_count, Some(2));
}

/// Language classification sanity across the whole hierarchy.
#[test]
fn language_hierarchy() {
    let cases = [
        ("query edge;", LanguageClass::Algebra),
        (
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
            LanguageClass::PositiveIfpAlgebra,
        ),
        ("query ifp(x, edge - x);", LanguageClass::IfpAlgebra),
        (
            "def win = map(move - (map(move, x.0) * win), x.0); query win;",
            LanguageClass::AlgebraEq,
        ),
        (
            "def s = s; query ifp(x, x union s);",
            LanguageClass::IfpAlgebraEq,
        ),
    ];
    for (src, expect) in cases {
        assert_eq!(classify(&parse_alg(src).unwrap()), expect, "{src}");
    }
}
