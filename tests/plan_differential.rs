//! Differential tests for the plan-compiled execution path: for every
//! engine and semantics, evaluating with the plan compiler enabled must
//! be **bit-identical** to the interpreted baseline — same model (down
//! to unknowns), same round counts, same errors on budget exhaustion.
//! The toggle (`algrec::plan::set_enabled`) and the worker-pool override
//! (`algrec::sched::set_threads`) are process-global, so every test in
//! this binary serializes on one mutex before touching either.

use algrec::datalog::{evaluate, parser::parse_program, EvalError, Program, Semantics};
use algrec::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

const ALL_SEMANTICS: [Semantics; 6] = [
    Semantics::Naive,
    Semantics::SemiNaive,
    Semantics::Stratified,
    Semantics::Inflationary,
    Semantics::WellFounded,
    Semantics::Valid,
];

/// Semantics that accept negation (naive/semi-naive are positive-only).
const NEG_SEMANTICS: [Semantics; 4] = [
    Semantics::Stratified,
    Semantics::Inflationary,
    Semantics::WellFounded,
    Semantics::Valid,
];

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restore the toggle and the sequential thread default even when an
/// assertion unwinds mid-test.
struct EnvGuard {
    plan: bool,
}

impl EnvGuard {
    fn new() -> Self {
        EnvGuard {
            plan: algrec::plan::enabled(),
        }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        algrec::plan::set_enabled(self.plan);
        algrec::sched::set_threads(1);
    }
}

/// Evaluate once compiled, once interpreted; the caller compares.
fn both_paths(
    program: &Program,
    db: &Database,
    sem: Semantics,
    budget: Budget,
) -> (
    Result<algrec::datalog::EvalOutcome, EvalError>,
    Result<algrec::datalog::EvalOutcome, EvalError>,
) {
    algrec::plan::set_enabled(true);
    let compiled = evaluate(program, db, sem, budget);
    algrec::plan::set_enabled(false);
    let interpreted = evaluate(program, db, sem, budget);
    (compiled, interpreted)
}

/// Assert outcome equality including error rendering.
fn assert_paths_agree(program: &Program, db: &Database, sem: Semantics, budget: Budget) {
    let (c, i) = both_paths(program, db, sem, budget);
    match (c, i) {
        (Ok(c), Ok(i)) => {
            assert_eq!(c.model, i.model, "{sem:?}: model diverged");
            assert_eq!(c.rounds, i.rounds, "{sem:?}: rounds diverged");
            assert_eq!(
                c.stable_count, i.stable_count,
                "{sem:?}: stable_count diverged"
            );
        }
        (c, i) => assert_eq!(
            format!("{:?}", c.err()),
            format!("{:?}", i.err()),
            "{sem:?}: error behavior diverged"
        ),
    }
}

fn edge_db(name: &str, edges: &BTreeSet<(i64, i64)>) -> Database {
    Database::new().with(
        name,
        Relation::from_pairs(edges.iter().map(|(a, b)| (Value::int(*a), Value::int(*b)))),
    )
}

fn graph_db(edges: &BTreeSet<(i64, i64)>) -> Database {
    let mut db = edge_db("e", edges);
    let nodes: BTreeSet<i64> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
    db.set(
        "n",
        Relation::from_values(nodes.iter().map(|k| Value::int(*k))),
    );
    db
}

fn tc() -> Program {
    parse_program("tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).").unwrap()
}

fn stratified_program() -> Program {
    parse_program(
        "r(X, Y) :- e(X, Y).\n\
         r(X, Z) :- r(X, Y), e(Y, Z).\n\
         un(X, Y) :- n(X), n(Y), not r(X, Y).\n\
         src(X) :- n(X), not dst(X).\n\
         dst(Y) :- e(X, Y).",
    )
    .unwrap()
}

fn win() -> Program {
    parse_program("win(X) :- e(X, Y), not win(Y).").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Positive recursion: all six semantics agree compiled ≡
    /// interpreted on random graphs.
    #[test]
    fn compiled_matches_interpreted_on_tc(
        edges in prop::collection::btree_set((0i64..10, 0i64..10), 0..24)
    ) {
        let _l = lock();
        let _g = EnvGuard::new();
        let db = edge_db("e", &edges);
        let p = tc();
        for sem in ALL_SEMANTICS {
            assert_paths_agree(&p, &db, sem, Budget::SMALL);
        }
    }

    /// Multi-stratum negation on random graphs: compiled whole-
    /// stratification driver ≡ interpreted per-stratum driver, and the
    /// other negation-capable semantics agree too.
    #[test]
    fn compiled_matches_interpreted_on_stratified_negation(
        edges in prop::collection::btree_set((0i64..8, 0i64..8), 0..18)
    ) {
        let _l = lock();
        let _g = EnvGuard::new();
        let db = graph_db(&edges);
        let p = stratified_program();
        for sem in NEG_SEMANTICS {
            assert_paths_agree(&p, &db, sem, Budget::SMALL);
        }
    }

    /// Random WIN games (cyclic in general, so genuinely three-valued):
    /// the alternating-fixpoint semantics must agree compiled ≡
    /// interpreted on certain *and* unknown facts.
    #[test]
    fn compiled_matches_interpreted_on_random_games(
        edges in prop::collection::btree_set((0i64..8, 0i64..8), 0..16)
    ) {
        let _l = lock();
        let _g = EnvGuard::new();
        let db = edge_db("e", &edges);
        let p = win();
        for sem in [Semantics::Inflationary, Semantics::WellFounded, Semantics::Valid] {
            assert_paths_agree(&p, &db, sem, Budget::SMALL);
        }
    }

    /// Determinism sweep for the compiled path: with the plan compiler
    /// on, the model and round counts must be bit-identical at every
    /// worker-pool width (the dense graphs here exceed the parallel
    /// fan-out threshold).
    #[test]
    fn compiled_path_is_deterministic_across_thread_counts(
        edges in prop::collection::btree_set((0i64..40, 0i64..40), 260..300)
    ) {
        let _l = lock();
        let _g = EnvGuard::new();
        algrec::plan::set_enabled(true);
        let edges: BTreeSet<(i64, i64)> = edges.into_iter().collect();
        let db = edge_db("e", &edges);
        for (p, sem) in [(tc(), Semantics::SemiNaive), (win(), Semantics::Valid)] {
            algrec::sched::set_threads(1);
            let baseline = evaluate(&p, &db, sem, Budget::LARGE).unwrap();
            for threads in [2usize, 4, 8] {
                algrec::sched::set_threads(threads);
                let out = evaluate(&p, &db, sem, Budget::LARGE).unwrap();
                prop_assert_eq!(&out.model, &baseline.model,
                    "model diverged at {} threads", threads);
                prop_assert_eq!(out.rounds, baseline.rounds,
                    "rounds diverged at {} threads", threads);
            }
            algrec::sched::set_threads(1);
        }
    }
}

/// The §3.2 divergence gadget `r(a). q(X) :- r(X), not q(X).`: the
/// inflationary and well-founded readings genuinely differ from each
/// other here, and each compiled path must reproduce *its own*
/// interpreted semantics exactly.
#[test]
fn divergence_gadget_agrees_per_semantics() {
    let _l = lock();
    let _g = EnvGuard::new();
    let p = parse_program("r(a).\nq(X) :- r(X), not q(X).").unwrap();
    let db = Database::new();
    for sem in [
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
    ] {
        assert_paths_agree(&p, &db, sem, Budget::SMALL);
    }
    // Sanity: the gadget really diverges between the two readings.
    algrec::plan::set_enabled(true);
    let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
    let wf = evaluate(&p, &db, Semantics::WellFounded, Budget::SMALL).unwrap();
    assert!(infl.model.certain.holds("q", &[Value::str("a")]));
    assert!(!wf.model.certain.holds("q", &[Value::str("a")]));
    assert!(!wf.model.is_exact(), "q(a) is unknown under well-founded");
}

/// Programs the id-space executor cannot compile (function application
/// in the head) must fall back to the interpreted path silently — same
/// results under either toggle state.
#[test]
fn non_compilable_programs_fall_back_and_agree() {
    let _l = lock();
    let _g = EnvGuard::new();
    let p =
        parse_program("nat(0).\nnat(succ(X)) :- nat(X), small(X).\nsmall(0).\nsmall(1).").unwrap();
    let db = Database::new();
    for sem in ALL_SEMANTICS {
        assert_paths_agree(&p, &db, sem, Budget::SMALL);
    }
    algrec::plan::set_enabled(true);
    let out = evaluate(&p, &db, Semantics::Stratified, Budget::SMALL).unwrap();
    assert!(out.model.certain.holds("nat", &[Value::int(1)]));
}

/// Empty-EDB regression: with no facts at all, every semantics must
/// produce the exact empty model on both paths (the degenerate instance
/// that once broke an engine — see `cross_engine.rs`).
#[test]
fn empty_edb_agrees_across_all_semantics() {
    let _l = lock();
    let _g = EnvGuard::new();
    let db = Database::new();
    for (p, sems) in [
        (tc(), &ALL_SEMANTICS[..]),
        (win(), &NEG_SEMANTICS[..]),
        (stratified_program(), &NEG_SEMANTICS[..]),
    ] {
        for &sem in sems {
            assert_paths_agree(&p, &db, sem, Budget::SMALL);
            // WIN is not stratified: both paths reject it identically
            // (checked above); the empty-model invariant applies to the
            // accepting semantics.
            algrec::plan::set_enabled(true);
            if let Ok(out) = evaluate(&p, &db, sem, Budget::SMALL) {
                assert!(out.model.is_exact());
                assert_eq!(out.model.certain.total(), 0);
            }
        }
    }
}

// Named replays of the cases `plan_differential.proptest-regressions`
// records. The vendored proptest re-derives its own cases from fixed
// seeds and does not read the file, so each recorded shrink is pinned
// here as a unit test that fails by name.

/// Seed cc fac3b1… (`edges = {(0, 0)}`): a single self-loop. WIN on a
/// self-loop is the smallest genuinely three-valued instance — `win(0)`
/// is undefined — and TC's fixpoint must close after one round. Both
/// must agree compiled ≡ interpreted down to the unknowns.
#[test]
fn regression_self_loop_is_three_valued_on_both_paths() {
    let _l = lock();
    let _g = EnvGuard::new();
    let edges: BTreeSet<(i64, i64)> = [(0, 0)].into_iter().collect();
    let db = edge_db("e", &edges);
    for sem in ALL_SEMANTICS {
        assert_paths_agree(&tc(), &db, sem, Budget::SMALL);
    }
    for sem in [
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
    ] {
        assert_paths_agree(&win(), &db, sem, Budget::SMALL);
    }
    algrec::plan::set_enabled(true);
    let out = evaluate(&win(), &db, Semantics::Valid, Budget::SMALL).unwrap();
    assert!(!out.model.is_exact(), "win(0) must be undefined");
}

/// Seed cc 5a0f18… (`edges = {(0, 1), (1, 0)}`): the two-cycle — the
/// smallest drawn game and the smallest cyclic TC. The alternating
/// fixpoint leaves both positions unknown; the compiled path must
/// reproduce exactly that, not a decided game.
#[test]
fn regression_two_cycle_draw_agrees_on_both_paths() {
    let _l = lock();
    let _g = EnvGuard::new();
    let edges: BTreeSet<(i64, i64)> = [(0, 1), (1, 0)].into_iter().collect();
    let db = edge_db("e", &edges);
    for sem in ALL_SEMANTICS {
        assert_paths_agree(&tc(), &db, sem, Budget::SMALL);
    }
    for sem in [
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
    ] {
        assert_paths_agree(&win(), &db, sem, Budget::SMALL);
    }
    algrec::plan::set_enabled(true);
    let out = evaluate(&win(), &db, Semantics::WellFounded, Budget::SMALL).unwrap();
    assert_eq!(out.model.unknown_count(), 2, "both positions are drawn");
}

/// Seed cc 366601… (`edges = {(0, 1)}`): a single edge, the smallest
/// instance where every stratum of the stratified program is non-empty
/// (`r`, `dst`, and the negation-derived `un` and `src` all produce
/// facts). The whole-stratification compiled driver must agree with the
/// per-stratum interpreted driver.
#[test]
fn regression_single_edge_populates_every_stratum() {
    let _l = lock();
    let _g = EnvGuard::new();
    let edges: BTreeSet<(i64, i64)> = [(0, 1)].into_iter().collect();
    let db = graph_db(&edges);
    let p = stratified_program();
    for sem in NEG_SEMANTICS {
        assert_paths_agree(&p, &db, sem, Budget::SMALL);
    }
    algrec::plan::set_enabled(true);
    let out = evaluate(&p, &db, Semantics::Stratified, Budget::SMALL).unwrap();
    assert!(out.model.certain.holds("src", &[Value::int(0)]));
    assert!(out.model.certain.holds("dst", &[Value::int(1)]));
    assert!(out
        .model
        .certain
        .holds("un", &[Value::int(1), Value::int(0)]));
}

/// Budget exhaustion: the compiled path charges the meter on the same
/// schedule as the interpreted one, so a too-small budget fails with the
/// *identical* error at the identical point.
#[test]
fn budget_errors_are_identical_across_paths() {
    let _l = lock();
    let _g = EnvGuard::new();
    let edges: BTreeSet<(i64, i64)> = (0..12).map(|k| (k, k + 1)).collect();
    let db = edge_db("e", &edges);
    let p = tc();
    let tiny = Budget::new(1_000, 30, 64);
    for sem in ALL_SEMANTICS {
        let (c, i) = both_paths(&p, &db, sem, tiny);
        let ce = c.expect_err("budget must exhaust on the compiled path");
        let ie = i.expect_err("budget must exhaust on the interpreted path");
        assert_eq!(format!("{ce}"), format!("{ie}"), "{sem:?}");
    }
}
