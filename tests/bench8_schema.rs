//! Schema pin for the committed replica-scaling report (`BENCH_8.json`,
//! experiment E13), in the style of the `BENCH_5`/`BENCH_6`/`BENCH_7`
//! pins: key names, nesting, and value kinds are asserted against the
//! document in the repository root. If this test fails, downstream
//! consumers of the report will break: bump deliberately and update
//! them in the same change.

use algrec::serve::json::{self, Json};

fn committed_report() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_8.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    json::parse(text.trim_end()).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn keys_of(value: &Json) -> Vec<&str> {
    match value {
        Json::Obj(map) => map.keys().map(String::as_str).collect(),
        other => panic!("expected an object, got {other:?}"),
    }
}

fn is_number(value: Option<&Json>) -> bool {
    matches!(value, Some(Json::Int(_) | Json::Float(_)))
}

#[test]
fn bench_8_top_level_schema_is_pinned() {
    let doc = committed_report();
    // `Json` objects hold sorted keys, so the pinned order is
    // alphabetical — the same convention as every protocol reply.
    assert_eq!(
        keys_of(&doc),
        [
            "bench",
            "concurrency",
            "legs",
            "scale",
            "scenario",
            "shards",
            "speedup_2_replicas",
            "speedup_4_replicas",
        ]
    );
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("E13"));
    assert_eq!(
        doc.get("scenario").and_then(Json::as_str),
        Some("social_reachability")
    );
    assert!(is_number(doc.get("concurrency")));
    assert!(is_number(doc.get("scale")));
    assert!(is_number(doc.get("shards")));
    // The speedup fields are numbers when both legs ran, null otherwise.
    for key in ["speedup_2_replicas", "speedup_4_replicas"] {
        let v = doc.get(key);
        assert!(
            is_number(v) || matches!(v, Some(Json::Null)),
            "{key}: {v:?}"
        );
    }
}

#[test]
fn bench_8_legs_are_pinned_and_all_matched() {
    let doc = committed_report();
    let Some(Json::Arr(legs)) = doc.get("legs") else {
        panic!("legs must be an array");
    };
    assert!(!legs.is_empty(), "at least one replica count measured");
    let mut last_replicas = 0;
    for leg in legs {
        assert_eq!(
            keys_of(leg),
            [
                "elapsed_s",
                "latency_p50_us",
                "latency_p95_us",
                "matched",
                "max_replica_lag_bytes",
                "read_throughput_rps",
                "replicas",
                "requests",
            ]
        );
        for key in [
            "elapsed_s",
            "latency_p50_us",
            "latency_p95_us",
            "max_replica_lag_bytes",
            "read_throughput_rps",
            "requests",
        ] {
            assert!(is_number(leg.get(key)), "{key}: {:?}", leg.get(key));
        }
        // Correctness is part of the committed record: every leg's
        // reply stream matched the recording modulo epoch tags.
        assert!(
            matches!(leg.get("matched"), Some(Json::Bool(true))),
            "a committed leg diverged: {leg:?}"
        );
        let replicas = leg.get("replicas").and_then(Json::as_int).unwrap();
        assert!(
            replicas > last_replicas,
            "legs must be sorted by replica count"
        );
        last_replicas = replicas;
    }
    assert_eq!(
        legs[0].get("replicas").and_then(Json::as_int),
        Some(1),
        "the speedup baseline (one replica) must be measured"
    );
}
