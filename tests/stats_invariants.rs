//! Differential assertions on evaluation telemetry: the numbers the
//! engines report under [`Trace::collect`] must obey the paper's fixpoint
//! structure, not merely exist.
//!
//! * delta sequences are the observable shape of a least fixpoint — every
//!   monotone evaluation's per-round delta sizes must be positive until a
//!   single trailing zero (the round that proves convergence);
//! * semi-naive evaluation exists to do *less work* than naive for the
//!   same model: `facts_inserted` (cumulative derivations counted against
//!   the budget meter) must never exceed naive's, while
//!   `facts_materialized` (the final model) must be identical — if the
//!   delta engine ever materializes more facts than naive, this suite
//!   fails loudly;
//! * the optimized and baseline algebra evaluators must agree on
//!   `facts_materialized` under both exact and valid semantics;
//! * the Prop 5.2 stage simulation must use exactly as many stages as the
//!   source program's inflationary computation has productive rounds.

use algrec::prelude::*;
use algrec_datalog::parser::parse_program as parse_dl;
use algrec_translate::{inflationary_to_valid, measured_stages};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn edge_db(name: &str, edges: &BTreeSet<(i64, i64)>) -> Database {
    Database::new().with(
        name,
        Relation::from_pairs(edges.iter().map(|(a, b)| (Value::int(*a), Value::int(*b)))),
    )
}

fn arb_edges(nodes: i64, max_edges: usize) -> impl Strategy<Value = BTreeSet<(i64, i64)>> {
    prop::collection::btree_set((0..nodes, 0..nodes), 0..max_edges)
}

/// A small family of monotone (negation-free) programs over `edge`.
fn monotone_programs() -> Vec<(&'static str, Program)> {
    vec![
        (
            "tc-linear",
            parse_dl("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap(),
        ),
        (
            "tc-nonlinear",
            parse_dl("t(X, Y) :- edge(X, Y).\nt(X, Z) :- t(X, Y), t(Y, Z).").unwrap(),
        ),
        (
            "same-generation",
            parse_dl(
                "sg(X, Y) :- edge(Z, X), edge(Z, Y).\n\
                 sg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y).",
            )
            .unwrap(),
        ),
    ]
}

/// Run `program` traced under `sem` and return its stats.
fn traced(program: &Program, db: &Database, sem: Semantics) -> EvalStats {
    let tr = Trace::collect();
    evaluate_traced(program, db, sem, Budget::LARGE, tr.clone()).unwrap();
    tr.stats().expect("collect trace yields stats")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotone fixpoints converge visibly: the recorded delta sequence
    /// is non-empty, strictly positive until the end, and ends with
    /// exactly one zero — the convergence-proving round.
    #[test]
    fn delta_sequences_end_in_exactly_one_zero(edges in arb_edges(7, 16)) {
        let db = edge_db("edge", &edges);
        for (name, p) in monotone_programs() {
            for sem in [Semantics::Naive, Semantics::SemiNaive] {
                let stats = traced(&p, &db, sem);
                let deltas = &stats.deltas;
                prop_assert!(!deltas.is_empty(), "{name}/{sem:?}: no deltas recorded");
                prop_assert_eq!(
                    *deltas.last().unwrap(), 0,
                    "{}/{:?}: fixpoint must end with an empty round, got {:?}",
                    name, sem, deltas
                );
                prop_assert!(
                    deltas[..deltas.len() - 1].iter().all(|&d| d > 0),
                    "{}/{:?}: interior zero delta (loop ran past convergence): {:?}",
                    name, sem, deltas
                );
                // Each productive round's facts all count against the
                // meter, so the deltas can never outnumber insertions.
                prop_assert!(deltas.iter().sum::<usize>() <= stats.facts_inserted);
            }
        }
    }

    /// THE guard rail of the delta optimization: semi-naive must compute
    /// the identical model while inserting (counting against the budget
    /// meter) no more facts than naive. If delta evaluation ever
    /// materializes more facts than naive, this fails loudly.
    #[test]
    fn semi_naive_never_does_more_work_than_naive(edges in arb_edges(7, 16)) {
        let db = edge_db("edge", &edges);
        for (name, p) in monotone_programs() {
            let n = traced(&p, &db, Semantics::Naive);
            let s = traced(&p, &db, Semantics::SemiNaive);
            prop_assert_eq!(
                s.facts_materialized, n.facts_materialized,
                "{}: semi-naive materialized a different model than naive",
                name
            );
            prop_assert!(
                s.facts_inserted <= n.facts_inserted,
                "{}: semi-naive inserted {} facts, naive only {}",
                name, s.facts_inserted, n.facts_inserted
            );
            // Semi-naive may take one extra bookkeeping round but never
            // more: both loop once per fixpoint stage.
            prop_assert!(s.iterations <= n.iterations + 1);
        }
    }

    /// The optimized (interned + indexed + delta) algebra evaluator and
    /// the seed baseline agree on `facts_materialized`, exact and valid.
    #[test]
    fn optimized_and_baseline_materialize_alike(edges in arb_edges(6, 12)) {
        let db = edge_db("edge", &edges);
        // Exact: IFP transitive closure.
        let exact = algrec::core::parser::parse_program(
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
        ).unwrap();
        let collect_exact = |opts: EvalOptions| {
            let tr = Trace::collect();
            algrec::core::eval_exact_traced(&exact, &db, Budget::LARGE, opts, tr.clone()).unwrap();
            tr.stats().unwrap()
        };
        let o = collect_exact(EvalOptions::OPTIMIZED);
        let b = collect_exact(EvalOptions::BASELINE);
        prop_assert_eq!(o.facts_materialized, b.facts_materialized);

        // Valid: the WIN game as a recursive constant (negation through
        // difference), alternating fixpoint.
        let valid = algrec::core::parser::parse_program(
            "def win = map(edge - (map(edge, x.0) * win), x.0); query win;",
        ).unwrap();
        let collect_valid = |opts: EvalOptions| {
            let tr = Trace::collect();
            eval_valid_traced(&valid, &db, Budget::LARGE, opts, tr.clone()).unwrap();
            tr.stats().unwrap()
        };
        let ov = collect_valid(EvalOptions::OPTIMIZED);
        let bv = collect_valid(EvalOptions::BASELINE);
        prop_assert_eq!(ov.facts_materialized, bv.facts_materialized);
    }

    /// Prop 5.2 pipeline: the staged (translated) program's measured
    /// stage count equals the source program's productive inflationary
    /// rounds — the step-index simulation neither skips nor pads stages.
    #[test]
    fn staged_stage_count_matches_source_rounds(edges in arb_edges(6, 10)) {
        let db = edge_db("move", &edges);
        let p = parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap();
        let stages = (edges.len() as i64 + 3).max(4);
        let staged = inflationary_to_valid(&p, stages);
        let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
        let valid = evaluate(&staged, &db, Semantics::Valid, Budget::LARGE).unwrap();
        prop_assert!(valid.model.is_exact());
        // `win(X) :- move(X, Y), not win(Y).` has no IDB ground facts, so
        // first-appearance stages align with productive rounds exactly
        // (the final inflationary round derives nothing and is not a
        // stage).
        prop_assert_eq!(
            measured_stages(&valid.model.certain, &p),
            infl.rounds as i64 - 1
        );
    }
}

/// The traced run is observationally identical to the untraced run:
/// same model, same rounds — telemetry is read-only.
#[test]
fn tracing_does_not_change_results() {
    let edges: BTreeSet<(i64, i64)> = [(1, 2), (2, 3), (3, 1), (3, 4)].into();
    let db = edge_db("move", &edges);
    let p = parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap();
    for sem in [
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
    ] {
        let plain = evaluate(&p, &db, sem, Budget::SMALL).unwrap();
        let tr = Trace::collect();
        let traced = evaluate_traced(&p, &db, sem, Budget::SMALL, tr.clone()).unwrap();
        assert_eq!(plain.model, traced.model, "{sem:?} model changed");
        assert_eq!(plain.rounds, traced.rounds, "{sem:?} rounds changed");
        assert!(tr.stats().unwrap().iterations > 0);
    }
}
