//! Determinism across thread counts: evaluating the same program on the
//! same database must be **bit-identical** at every worker-pool width —
//! same model, same rounds, same deterministic trace counters. The
//! dense random graphs generated here exceed the engine's fan-out
//! threshold, so the {2, 4, 8}-thread runs genuinely take the
//! hash-partitioned parallel path that the single-threaded baseline
//! never enters.
//!
//! The thread and shard overrides are process-global
//! (`algrec::sched::set_threads` / `set_shards`), so this file holds
//! exactly one `#[test]`: the test binary cannot race another test
//! mutating the overrides.
//!
//! The same sweep covers the cluster's sharded evaluation: with
//! `set_shards(n)` the engines partition each round's delta by
//! first-column id into n shard-owned parts instead of whole-fact
//! hashes, and the {1, 2, 4}-shard runs must stay bit-identical too
//! (the full six-semantics differential lives in
//! `crates/cluster/tests/shard_differential.rs`).

use algrec::datalog::{evaluate_traced, parser::parse_program, Semantics};
use algrec::sched::{set_shards, set_threads};
use algrec::value::{Budget, Database, EvalStats, Relation, Trace, Value};
use proptest::prelude::*;

const TC: &str = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).";
const WIN: &str = "win(X) :- e(X, Y), not win(Y).";

/// Restore the sequential defaults even when an assertion unwinds, so a
/// failure can't leak a parallel override into a rerun within the same
/// process.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        set_threads(1);
        set_shards(1);
    }
}

fn database_of(edges: &[(i64, i64)]) -> Database {
    Database::new().with(
        "e",
        Relation::from_pairs(edges.iter().map(|&(a, b)| (Value::int(a), Value::int(b)))),
    )
}

/// The deterministic subset of collected evaluation statistics: phase
/// iterations, facts inserted, and the per-round delta trail. Wall-clock
/// and index-probe telemetry are legitimately schedule-dependent.
fn deterministic_stats(stats: &EvalStats) -> (Vec<(String, usize)>, usize, Vec<usize>) {
    (
        stats
            .phases
            .iter()
            .map(|(name, p)| (name.clone(), p.iterations))
            .collect(),
        stats.facts_inserted,
        stats.deltas.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn outputs_are_bit_identical_across_thread_counts(
        edges in proptest::collection::btree_set((0i64..40, 0i64..40), 260..320)
    ) {
        let _guard = ThreadGuard;
        let edges: Vec<(i64, i64)> = edges.into_iter().collect();
        let db = database_of(&edges);
        for (src, semantics) in [(TC, Semantics::SemiNaive), (WIN, Semantics::Valid)] {
            let program = parse_program(src).unwrap();

            set_threads(1);
            let base_trace = Trace::collect();
            let baseline =
                evaluate_traced(&program, &db, semantics, Budget::LARGE, base_trace.clone())
                    .unwrap();
            let base_stats = deterministic_stats(&base_trace.stats().unwrap());

            for (threads, shards) in [(2usize, 1usize), (4, 1), (8, 1), (2, 2), (2, 4), (4, 4)] {
                set_threads(threads);
                set_shards(shards);
                let trace = Trace::collect();
                let out = evaluate_traced(&program, &db, semantics, Budget::LARGE, trace.clone())
                    .unwrap();
                set_shards(1);
                prop_assert_eq!(
                    &out.model, &baseline.model,
                    "model diverged at {} threads / {} shards", threads, shards
                );
                prop_assert_eq!(out.rounds, baseline.rounds);
                prop_assert_eq!(
                    deterministic_stats(&trace.stats().unwrap()),
                    base_stats.clone(),
                    "deterministic trace counters diverged at {} threads / {} shards",
                    threads,
                    shards
                );
            }
        }
    }
}
