//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation of the API
//! surface it actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `RngExt` helpers `random_range` / `random_bool`. The generator
//! is SplitMix64 — statistically fine for workload synthesis, not
//! cryptographic. Determinism in the seed is the only contract the
//! workspace relies on (generators must be reproducible across runs).

#![forbid(unsafe_code)]

use std::ops::Range;

/// RNGs that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sources of raw random 64-bit words.
pub trait RngCore {
    /// Produce the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    /// The standard deterministic generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng { state }
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait UniformInt: Copy {
    /// Map a raw 64-bit word into `[range.start, range.end)`.
    fn sample_from(word: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_from(word: u64, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "random_range called with an empty range");
                let width = (hi - lo) as u128;
                (lo + (u128::from(word) % width) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods, mirroring `rand`'s extension trait.
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_from(self.next_u64(), range)
    }

    /// A Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits = {hits}");
    }
}
