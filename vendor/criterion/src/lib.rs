//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small wall-clock harness exposing the API the
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, bench_with_input, finish}`, `BenchmarkId::new`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros.
//! Timing is mean-of-samples after one warm-up run; output is one line
//! per benchmark on stdout. No statistics, no plots, no CLI filtering —
//! the experiment tables in this repo are produced by the `tables`
//! binary, and these benches only need to run and report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group, optionally parameterized.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// A benchmark id `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        println!("{}/{}/{}: {:?} (mean)", self.name, id.name, id.param, mean);
        self
    }

    /// Run one benchmark without a parameterized input.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        println!("{}/{}: {:?} (mean)", self.name, name.into(), mean);
        self
    }

    /// Finish the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_with_input`; times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, keeping the result alive so it is not optimized
    /// away. One warm-up run precedes the timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = routine();
        drop(warmup);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("case", 1), &1, |b, _| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // one warm-up plus three samples
        assert_eq!(runs, 4);
    }
}
