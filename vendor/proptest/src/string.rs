//! String strategies from a tiny regex subset.
//!
//! A `&'static str` is itself a strategy, interpreting the pattern as a
//! sequence of atoms: a character class `[a-dxy]` (ranges and single
//! characters) or a literal character, each optionally followed by a
//! `{m}` or `{m,n}` repetition. This covers the patterns used in this
//! workspace (e.g. `"[a-d]{1,3}"`); anything fancier panics loudly.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                set
            }
            '{' | '}' | ']' | '(' | ')' | '*' | '+' | '?' | '|' | '\\' | '.' => {
                panic!(
                    "unsupported regex feature {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            literal => {
                i += 1;
                vec![literal]
            }
        };
        let (mut min, mut max) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let mut parts = body.splitn(2, ',');
            min = parts
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat in pattern {pattern:?}"));
            max = match parts.next() {
                Some(m) => m
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat in pattern {pattern:?}")),
                None => min,
            };
            assert!(min <= max, "bad repeat bounds in pattern {pattern:?}");
            i = close + 1;
        }
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let reps = rng.in_range(atom.min, atom.max + 1);
            for _ in 0..reps {
                out.push(atom.choices[rng.below(atom.choices.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repeat() {
        let mut rng = TestRng::new(21);
        for _ in 0..100 {
            let s = "[a-d]{1,3}".gen_value(&mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn bare_class_and_literals() {
        let mut rng = TestRng::new(22);
        for _ in 0..50 {
            let s = "x[0-2]y".gen_value(&mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.starts_with('x') && s.ends_with('y'));
        }
    }
}
