//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a deterministic property-testing harness exposing
//! the API surface its test suites use: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_recursive` / `boxed`, [`strategy::Just`],
//! integer-range and tiny-regex string strategies, tuple strategies,
//! `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! `any::<bool>()`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberate and documented:
//! - **No shrinking.** A failing case reports its seed and case index;
//!   the generators are pure functions of the seed, so failures replay.
//! - **Fixed seeding.** Cases derive from a per-test seed, so runs are
//!   reproducible by construction (no env-var persistence files).
//! - Size/branch hints to `prop_recursive` are accepted and ignored;
//!   recursion depth alone bounds the generated structures.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude;

/// Assert a boolean condition inside a `proptest!` body, failing the
/// current case (with an optional formatted message) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    l
                );
            }
        }
    };
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), __rng);)*
                    let __body = || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
