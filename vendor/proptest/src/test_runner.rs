//! Deterministic case runner: seeds, config, and failure reporting.

use std::fmt;

/// The generator handed to strategies; SplitMix64, seeded per case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw from `lo..hi` (half-open, must be nonempty).
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }
}

/// A failed property case (carried by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `f` once per case with a deterministic per-case generator,
/// panicking (test failure) on the first case that returns `Err`.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut rng = TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!("proptest: test {test_name} failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}
