//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function from an RNG stream to a value. Strategies are
/// `Clone` so they can be reused across recursion arms.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<B, F>(self, f: F) -> Map<Self, B>
    where
        Self: Sized,
        F: Fn(Self::Value) -> B + 'static,
    {
        Map {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Build recursive structures: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more layer. The size and branch
    /// hints are accepted for API compatibility and ignored; `depth`
    /// alone bounds the nesting.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut layered = self.boxed();
        for _ in 0..depth {
            layered = recurse(layered).boxed();
        }
        layered
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_gen(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S: Strategy, B> {
    inner: S,
    f: Arc<dyn Fn(S::Value) -> B>,
}

impl<S: Strategy, B> Clone for Map<S, B> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<S: Strategy, B> Strategy for Map<S, B> {
    type Value = B;
    fn gen_value(&self, rng: &mut TestRng) -> B {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be nonempty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].gen_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy {:?}", self);
                let width = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % width) as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128 + 1;
                assert!(lo < hi, "empty range strategy {:?}", self);
                let width = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % width) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::new(5);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((0..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..3).prop_map(|n| vec![n]);
        let nested = leaf.prop_recursive(4, 16, 3, |inner| {
            (inner.clone(), inner).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            })
        });
        let mut rng = TestRng::new(9);
        for _ in 0..20 {
            assert!(!nested.gen_value(&mut rng).is_empty());
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            seen.insert(u.gen_value(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
