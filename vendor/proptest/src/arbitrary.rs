//! The `Arbitrary` trait and `any::<T>()`, for the few types the
//! workspace asks for by type rather than by explicit strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy's concrete type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Fair coin strategy for `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $any:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Clone, Copy, Debug)]
        pub struct $any;

        impl Strategy for $any {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $any;
            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}

impl_arbitrary_int! {
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    usize => AnyUsize, isize => AnyIsize
}
