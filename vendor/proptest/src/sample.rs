//! Sampling strategies over fixed sets of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice of one element (cloned) from a slice.
pub fn select<T: Clone>(items: &[T]) -> Select<T> {
    assert!(!items.is_empty(), "select over an empty slice");
    Select {
        items: items.to_vec(),
    }
}

/// Strategy returned by [`select`].
#[derive(Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
