//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A half-open range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        rng.in_range(self.lo, self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec`s of `element` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s of `element` with a target size drawn from
/// `size`. If the element space is too small to reach the target the
/// set is simply smaller — matching real proptest's best-effort fill.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 16 {
            attempts += 1;
            out.insert(self.element.gen_value(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(0i64..5, 2..6);
        let mut rng = TestRng::new(11);
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_is_best_effort_on_small_domains() {
        // only 2 possible elements, target sizes up to 5
        let s = btree_set(0i64..2, 0..6);
        let mut rng = TestRng::new(13);
        for _ in 0..50 {
            assert!(s.gen_value(&mut rng).len() <= 2);
        }
    }
}
