//! `algrec` — command-line front end for the reproduction.
//!
//! ```text
//! algrec eval   <program.dl>  [facts.dl] [--semantics S] [--pred P] [--trace] [--explain]
//! algrec alg    <program.alg> [facts.dl] [--trace] [--explain]
//! algrec spec   <spec.obj>    [--depth N]
//! algrec translate <program.dl> --pred P [facts.dl]
//! algrec stable <program.dl>  [facts.dl] [--cap N]
//! algrec repl   [facts.dl] [--data-dir DIR] [--sync P] [--snapshot-every N]
//! algrec serve  [facts.dl] [--addr HOST:PORT] [--data-dir DIR] [--sync P] [--snapshot-every N]
//! algrec scenario <list|run|record> [--corpus DIR] [-f EXPR] [--concurrency LIST]
//!                                   [--scale N] [--report PATH] [--live] [--addr HOST:PORT]
//!                                   [--no-recovery]
//! algrec cluster serve [facts.dl] --data-dir DIR [--shards N] [--addr HOST:PORT] [--sync P]
//! algrec cluster join  --primary HOST:PORT [--addr HOST:PORT]
//! algrec cluster route --primary HOST:PORT [--replica HOST:PORT]… [--addr HOST:PORT]
//! algrec cluster bench [scenario] [--corpus DIR] [--replicas LIST] [--shards N]
//!                      [--concurrency LIST] [--scale N] [--report PATH]
//! ```
//!
//! Every command also accepts `--threads N`, bounding the worker pool
//! the fixpoint engines fan out to (default: the `ALGREC_THREADS`
//! environment variable, else the machine's available parallelism;
//! `--threads 1` forces fully sequential evaluation). Outputs are
//! bit-identical at every thread count.
//!
//! * deduction programs use the Datalog syntax of `algrec_datalog::parser`;
//! * facts files are Datalog fact lists (`edge(1, 2).`), loaded as the
//!   extensional database;
//! * algebra programs use the syntax of `algrec_core::parser`;
//! * specifications use the OBJ-style syntax of `algrec_adt::parser`;
//! * semantics: `naive`, `semi-naive`, `stratified`, `inflationary`,
//!   `well-founded`, `valid` (default), `valid-extended[:N]` (N caps the
//!   stable-completion branching, default 16);
//! * `--trace` streams evaluation telemetry (phases, deltas) to stderr as
//!   `% trace:` lines and prints a final stats summary (see
//!   `algrec_value::stats`);
//! * `--explain` (on `eval` and `alg`) prints the query plan — join
//!   orders, access paths, shared subplans — instead of evaluating (see
//!   `algrec_plan` and DESIGN.md §15);
//! * `repl` is the interactive incremental-view session, `serve` the same
//!   session behind a newline-delimited-JSON TCP protocol (the server
//!   prints `% listening on ADDR` once bound; `--addr` defaults to
//!   `127.0.0.1:0`). See `algrec_serve` and DESIGN.md §10.
//! * `--data-dir DIR` makes the session durable: state is recovered from
//!   DIR on startup (write-ahead log + snapshots, see `algrec_store` and
//!   DESIGN.md §13) and every committed change is logged. `--sync`
//!   chooses the fsync policy (`always` default, `never`, `every-N`);
//!   `--snapshot-every N` compacts the log into a snapshot every N
//!   records (default 1024, `0` disables). Without `--data-dir` the
//!   session is in-memory, exactly as before.
//! * `scenario` drives the on-disk workload corpus (default directory
//!   `scenarios/`, override with `--corpus`): `list` prints the corpus,
//!   `run` replays each scenario's recorded trace against a fresh
//!   serving session at every `--concurrency` (comma-separated, default
//!   `1,4`) and diffs replies against the recording modulo epoch tags,
//!   `record` (re)writes the recordings. `-f`/`--filter` selects
//!   scenarios with the filter DSL (`name ~ authz & tag != slow`, see
//!   DESIGN.md §16); `--scale N` issues every read N times; `--report
//!   PATH` writes the `BENCH_7.json` document; `--live` replays over a
//!   throwaway TCP server instead of in-process; `--addr` replays
//!   against an already-running external server (e.g. a cluster
//!   router, which must be pre-seeded — recovery is skipped);
//!   `--no-recovery` skips the durable recovery leg.
//! * `cluster` runs the serving fleet (see `algrec_cluster` and
//!   DESIGN.md §17): `serve` a sharded durable primary (`--shards`
//!   hash-partitioned write-ahead logs under `--data-dir`, replication
//!   feed on the same port), `join` a replica subscribed to
//!   `--primary` (epoch-gated consistent reads, writes rejected),
//!   `route` the consistent-read front end over `--primary` plus each
//!   `--replica`, and `bench` the E13 read-throughput scaling
//!   experiment (`--replicas` is the list of replica *counts* to
//!   measure; `--report` writes `BENCH_8.json`). All three servers
//!   print `% ROLE listening on ADDR` once bound.

use algrec::prelude::*;
use algrec::serve::parse_semantics;
use std::io::{IsTerminal, Write};
use std::process::ExitCode;

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("algrec: {msg}");
    ExitCode::FAILURE
}

/// Parse a facts file (Datalog facts only) into a database, through the
/// shared in-place loader (the old per-fact relation clone was O(n²)).
fn load_db(path: Option<&str>) -> Result<Database, String> {
    let Some(path) = path else {
        return Ok(Database::new());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut db = Database::new();
    load_facts(&mut db, &text).map_err(|e| format!("{path}: {e}"))?;
    Ok(db)
}

struct Args {
    positional: Vec<String>,
    semantics: Semantics,
    pred: Option<String>,
    depth: usize,
    cap: usize,
    trace: bool,
    explain: bool,
    addr: Option<String>,
    data_dir: Option<String>,
    sync: algrec::store::SyncPolicy,
    snapshot_every: Option<usize>,
    corpus: String,
    filter: Option<String>,
    concurrency: Option<Vec<usize>>,
    scale: Option<usize>,
    report: Option<String>,
    live: bool,
    no_recovery: bool,
    shards: usize,
    primary: Option<String>,
    replica_addrs: Vec<String>,
    replica_counts: Option<Vec<usize>>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        semantics: Semantics::Valid,
        pred: None,
        depth: 2,
        cap: 16,
        trace: false,
        explain: false,
        addr: None,
        data_dir: None,
        sync: algrec::store::SyncPolicy::Always,
        snapshot_every: Some(1024),
        corpus: "scenarios".to_string(),
        filter: None,
        concurrency: None,
        scale: None,
        report: None,
        live: false,
        no_recovery: false,
        shards: 2,
        primary: None,
        replica_addrs: Vec::new(),
        replica_counts: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--semantics" => {
                let v = it.next().ok_or("--semantics needs a value")?;
                args.semantics = parse_semantics(v)?;
            }
            "--pred" => args.pred = Some(it.next().ok_or("--pred needs a value")?.clone()),
            "--trace" => args.trace = true,
            "--explain" => args.explain = true,
            "--depth" => {
                args.depth = it
                    .next()
                    .ok_or("--depth needs a value")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--cap" => {
                args.cap = it
                    .next()
                    .ok_or("--cap needs a value")?
                    .parse()
                    .map_err(|e| format!("--cap: {e}"))?;
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                algrec::sched::set_threads(n);
            }
            "--addr" => args.addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--data-dir" => {
                args.data_dir = Some(it.next().ok_or("--data-dir needs a value")?.clone())
            }
            "--sync" => {
                args.sync =
                    algrec::store::SyncPolicy::parse(it.next().ok_or("--sync needs a value")?)?
            }
            "--snapshot-every" => {
                let n: usize = it
                    .next()
                    .ok_or("--snapshot-every needs a value")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?;
                args.snapshot_every = (n > 0).then_some(n);
            }
            "--corpus" => args.corpus = it.next().ok_or("--corpus needs a value")?.clone(),
            "-f" | "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a value")?.clone())
            }
            "--concurrency" => {
                let list = it.next().ok_or("--concurrency needs a value")?;
                let parsed = parse_usize_list(list, "--concurrency")?;
                args.concurrency = Some(parsed);
            }
            "--scale" => {
                let n: usize = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if n == 0 {
                    return Err("--scale must be at least 1".into());
                }
                args.scale = Some(n);
            }
            "--shards" => {
                let n: usize = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                args.shards = n;
                algrec::sched::set_shards(n);
            }
            "--primary" => args.primary = Some(it.next().ok_or("--primary needs a value")?.clone()),
            "--replica" => args
                .replica_addrs
                .push(it.next().ok_or("--replica needs a value")?.clone()),
            "--replicas" => {
                let list = it.next().ok_or("--replicas needs a value")?;
                args.replica_counts = Some(parse_usize_list(list, "--replicas")?);
            }
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?.clone()),
            "--live" => args.live = true,
            "--no-recovery" => args.no_recovery = true,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

/// A comma-separated list of positive integers (`1,2,4`).
fn parse_usize_list(list: &str, flag: &str) -> Result<Vec<usize>, String> {
    let parsed: Vec<usize> = list
        .split(',')
        .map(|n| match n.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err(format!("{flag} entries must be at least 1")),
            Err(e) => Err(format!("{flag}: `{n}`: {e}")),
        })
        .collect::<Result<_, _>>()?;
    if parsed.is_empty() {
        return Err(format!("{flag} needs at least one entry"));
    }
    Ok(parsed)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// The trace handle a command should evaluate under: a streaming stderr
/// log under `--trace`, the zero-cost null trace otherwise.
fn trace_of(a: &Args) -> Trace {
    if a.trace {
        Trace::sink(LogSink::stderr())
    } else {
        Trace::Null
    }
}

fn cmd_eval(a: &Args) -> Result<(), String> {
    let [program_path, rest @ ..] = a.positional.as_slice() else {
        return Err("usage: algrec eval <program.dl> [facts.dl]".into());
    };
    let program =
        algrec::datalog::parser::parse_program(&read(program_path)?).map_err(|e| e.to_string())?;
    let db = load_db(rest.first().map(String::as_str))?;
    if a.explain {
        let plan =
            algrec::datalog::explain_program(&program, &db, None).map_err(|e| e.to_string())?;
        println!("{plan}");
        return Ok(());
    }
    let out = evaluate_traced(&program, &db, a.semantics, Budget::LARGE, trace_of(a))
        .map_err(|e| e.to_string())?;
    match &a.pred {
        Some(p) => {
            for facts in out.model.certain.facts(p) {
                println!(
                    "{p}({}).",
                    facts
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            for (q, facts) in out.model.unknown_facts() {
                if &q == p {
                    println!(
                        "% unknown: {p}({})",
                        facts
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        None => print!("{}", out.model),
    }
    if !out.model.is_exact() {
        eprintln!(
            "% {} fact(s) undefined — the program has no initial valid model on this database",
            out.model.unknown_count()
        );
    }
    Ok(())
}

fn cmd_alg(a: &Args) -> Result<(), String> {
    let [program_path, rest @ ..] = a.positional.as_slice() else {
        return Err("usage: algrec alg <program.alg> [facts.dl]".into());
    };
    let program =
        algrec::core::parser::parse_program(&read(program_path)?).map_err(|e| e.to_string())?;
    let db = load_db(rest.first().map(String::as_str))?;
    if a.explain {
        println!("{}", algrec::core::explain_program(&program, &db));
        return Ok(());
    }
    let out = eval_valid_traced(
        &program,
        &db,
        Budget::LARGE,
        EvalOptions::default(),
        trace_of(a),
    )
    .map_err(|e| e.to_string())?;
    println!("{}", out.query);
    if !out.is_well_defined() {
        eprintln!("% result is three-valued (members marked `?` are undefined)");
    }
    Ok(())
}

fn cmd_spec(a: &Args) -> Result<(), String> {
    let [spec_path] = a.positional.as_slice() else {
        return Err("usage: algrec spec <spec.obj> [--depth N]".into());
    };
    let spec = algrec_adt::parser::parse_spec(&read(spec_path)?).map_err(|e| e.to_string())?;
    let vi = algrec_adt::ValidInterpretation::compute(&spec, a.depth, Budget::LARGE)
        .map_err(|e| e.to_string())?;
    println!(
        "valid interpretation over depth-{} window: total = {}, undefined equalities = {}",
        a.depth,
        vi.is_total(),
        vi.unknown_count()
    );
    for sort in spec.signature.sorts() {
        let classes = vi.classes(sort);
        println!("sort {sort}: {} class(es)", classes.len());
        for class in classes {
            println!(
                "  {{ {} }}",
                class
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    if spec.signature.constants_only() {
        let analysis =
            algrec_adt::initial_valid_model(&spec, Budget::LARGE).map_err(|e| e.to_string())?;
        println!("valid models: {}", analysis.valid_models.len());
        match analysis.initial {
            Some(p) => println!("initial valid model: {p}"),
            None => println!("no initial valid model (the specification is not well-defined)"),
        }
    }
    Ok(())
}

fn cmd_translate(a: &Args) -> Result<(), String> {
    let [program_path, rest @ ..] = a.positional.as_slice() else {
        return Err("usage: algrec translate <program.dl> --pred P [facts.dl]".into());
    };
    let pred = a.pred.as_ref().ok_or("translate requires --pred")?;
    let program =
        algrec::datalog::parser::parse_program(&read(program_path)?).map_err(|e| e.to_string())?;
    let db = load_db(rest.first().map(String::as_str))?;
    let alg = datalog_to_algebra(&program, pred, &algrec_translate::edb_arities(&db))
        .map_err(|e| e.to_string())?;
    println!("{alg}");
    Ok(())
}

fn cmd_stable(a: &Args) -> Result<(), String> {
    let [program_path, rest @ ..] = a.positional.as_slice() else {
        return Err("usage: algrec stable <program.dl> [facts.dl] [--cap N]".into());
    };
    let program =
        algrec::datalog::parser::parse_program(&read(program_path)?).map_err(|e| e.to_string())?;
    let db = load_db(rest.first().map(String::as_str))?;
    let models = algrec::datalog::stable_models_of(&program, &db, a.cap, Budget::LARGE)
        .map_err(|e| e.to_string())?;
    println!("% {} stable model(s)", models.len());
    for (k, m) in models.iter().enumerate() {
        println!("%% model {k}");
        print!("{m}");
    }
    Ok(())
}

/// Build a serving session, preloading an optional facts file. With
/// `--data-dir` the session is durable: recovered from the directory,
/// then write-ahead-logging every committed change. The recovery report
/// goes to stderr so stdout stays protocol-clean for `serve`.
fn session_of(a: &Args) -> Result<Session, String> {
    let mut session = match &a.data_dir {
        Some(dir) => {
            let options = algrec::store::StoreOptions {
                sync: a.sync,
                snapshot_every: a.snapshot_every,
            };
            let (session, report) = algrec::store::open(
                std::path::Path::new(dir),
                Budget::LARGE,
                options,
                trace_of(a),
            )
            .map_err(|e| format!("{dir}: {e}"))?;
            if report.restored_anything() {
                eprintln!(
                    "% recovered from {dir}: snapshot {} ({} relation(s), {} view(s)), \
                     {} log record(s) replayed, {} torn byte(s) truncated",
                    report
                        .snapshot_gen
                        .map_or("none".to_string(), |g| g.to_string()),
                    report.snapshot_relations,
                    report.snapshot_views,
                    report.replayed,
                    report.truncated_bytes,
                );
            }
            session
        }
        None => Session::new(Budget::LARGE),
    };
    // Re-loading the same facts file into a recovered session is a
    // no-op: only the *effective* delta is applied and logged.
    if let Some(path) = a.positional.first() {
        let text = read(path)?;
        session.load(&text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(session)
}

fn cmd_repl(a: &Args) -> Result<(), String> {
    let mut session = session_of(a)?;
    let stdin = std::io::stdin();
    let prompt = stdin.is_terminal();
    run_repl(&mut session, stdin.lock(), std::io::stdout().lock(), prompt)
        .map_err(|e| e.to_string())
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let session = session_of(a)?;
    let addr = a.addr.as_deref().unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    // Announce the actual address (port 0 binds an ephemeral port) so
    // scripted clients can connect; flush before blocking in accept.
    println!("% listening on {bound}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    algrec::serve::serve_traced(listener, session, trace_of(a)).map_err(|e| e.to_string())
}

fn cmd_scenario(a: &Args) -> Result<(), String> {
    let [sub] = a.positional.as_slice() else {
        return Err("usage: algrec scenario <list|run|record> [--corpus DIR] [-f EXPR] …".into());
    };
    let corpus = std::path::PathBuf::from(&a.corpus);
    let filter = a
        .filter
        .as_deref()
        .map(algrec::scenario::parse_filter)
        .transpose()
        .map_err(|e| e.to_string())?;
    let mut out = std::io::stdout().lock();
    match sub.as_str() {
        "list" => algrec::scenario::list(&mut out, &corpus, filter.as_ref()),
        "record" => algrec::scenario::record(&mut out, &corpus, filter.as_ref(), Budget::LARGE),
        "run" => {
            let opts = algrec::scenario::RunOptions {
                corpus,
                filter,
                concurrency: a.concurrency.clone().unwrap_or_else(|| vec![1, 4]),
                scale: a.scale.unwrap_or(1),
                report: a.report.as_ref().map(std::path::PathBuf::from),
                live: a.live,
                addr: a.addr.clone(),
                no_recovery: a.no_recovery,
                budget: Budget::LARGE,
            };
            let reports = algrec::scenario::run(&mut out, &opts)?;
            if !algrec::scenario::all_matched(&reports) {
                return Err("replies diverged from the recording (see above)".into());
            }
            Ok(())
        }
        other => Err(format!("unknown scenario subcommand `{other}`")),
    }
}

/// Bind `--addr` (default ephemeral loopback) and announce the bound
/// address on stdout so scripted clients know where to connect.
fn bind_announced(a: &Args, role: &str) -> Result<std::net::TcpListener, String> {
    let addr = a.addr.as_deref().unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    println!("% {role} listening on {bound}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    Ok(listener)
}

/// The serving fleet: `serve` a sharded durable primary, `join` a
/// replica to it, `route` consistent reads over the fleet, `bench` the
/// E13 read-throughput scaling experiment.
fn cmd_cluster(a: &Args) -> Result<(), String> {
    use std::sync::Arc;
    let [sub, rest @ ..] = a.positional.as_slice() else {
        return Err("usage: algrec cluster <serve|join|route|bench> \
             [--data-dir DIR] [--shards N] [--primary ADDR] [--replica ADDR]… "
            .into());
    };
    match sub.as_str() {
        "serve" => {
            let dir = a
                .data_dir
                .as_ref()
                .ok_or("cluster serve requires --data-dir")?;
            // The CLI shard count drives both layers: the on-disk WAL
            // partitioning and the engine's partitioned evaluation.
            algrec::sched::set_shards(a.shards);
            let (mut session, report, shards) = algrec::cluster::open_primary(
                std::path::Path::new(dir),
                a.shards,
                Budget::LARGE,
                a.sync,
            )?;
            if report.records > 0 {
                eprintln!(
                    "% recovered from {dir}: {} commit(s) over {} record(s), \
                     {} torn byte(s) truncated",
                    report.commits, report.records, report.truncated_bytes,
                );
            }
            if let Some(path) = rest.first() {
                let text = read(path)?;
                session.load(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            let listener = bind_announced(a, "primary")?;
            let shared = Arc::new(SharedSession::new(session));
            algrec::cluster::serve_primary(listener, shared, shards);
            Ok(())
        }
        "join" => {
            let primary = a
                .primary
                .as_ref()
                .ok_or("cluster join requires --primary")?;
            let shared = Arc::new(SharedSession::new(Session::new(Budget::LARGE)));
            let mut replica = algrec::cluster::Replica::start(primary, Arc::clone(&shared))
                .map_err(|e| format!("{primary}: {e}"))?;
            let listener = bind_announced(a, "replica")?;
            algrec::cluster::serve_replica(listener, shared, Arc::clone(replica.state()));
            replica.stop();
            Ok(())
        }
        "route" => {
            let primary = a
                .primary
                .as_ref()
                .ok_or("cluster route requires --primary")?;
            let config = algrec::cluster::RouterConfig {
                primary: primary.clone(),
                replicas: a.replica_addrs.clone(),
            };
            let listener = bind_announced(a, "router")?;
            algrec::cluster::serve_router(listener, config);
            Ok(())
        }
        "bench" => {
            let defaults = algrec::cluster::BenchOptions::default();
            let opts = algrec::cluster::BenchOptions {
                corpus: std::path::PathBuf::from(&a.corpus),
                scenario: rest.first().cloned().unwrap_or(defaults.scenario),
                replicas: a.replica_counts.clone().unwrap_or(defaults.replicas),
                concurrency: a
                    .concurrency
                    .as_ref()
                    .map_or(defaults.concurrency, |v| *v.last().unwrap()),
                scale: a.scale.unwrap_or(defaults.scale),
                shards: a.shards,
                report: a.report.as_ref().map(std::path::PathBuf::from),
            };
            algrec::cluster::run_bench(&mut std::io::stdout().lock(), &opts)
        }
        other => Err(format!("unknown cluster subcommand `{other}`")),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return fail(
            "usage: algrec <eval|alg|spec|translate|stable|repl|serve|scenario|cluster> … \
             (see --help in the README)",
        );
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let result = match cmd.as_str() {
        "eval" => cmd_eval(&args),
        "alg" => cmd_alg(&args),
        "spec" => cmd_spec(&args),
        "translate" => cmd_translate(&args),
        "stable" => cmd_stable(&args),
        "repl" => cmd_repl(&args),
        "serve" => cmd_serve(&args),
        "scenario" => cmd_scenario(&args),
        "cluster" => cmd_cluster(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
