//! `algrec` — a full reproduction of *"On the Power of Algebras with
//! Recursion"* (Catriel Beeri & Tova Milo, SIGMOD 1993) as a Rust
//! workspace.
//!
//! The paper proves that algebraic query languages extended with general
//! recursive definitions (`algebra=`, `IFP-algebra=`), interpreted under
//! the **valid semantics**, express exactly the queries of general
//! deductive programs with negation. This crate re-exports the whole
//! implementation:
//!
//! * [`value`] — complex-object values, relations, three-valued truth and
//!   three-valued sets;
//! * [`adt`] — algebraic specifications with negation, valid
//!   interpretations, initial valid models (Section 2);
//! * [`datalog`] — deduction under minimal-model / stratified /
//!   inflationary / well-founded / valid / stable semantics, safety
//!   (Section 4);
//! * [`core`] — the algebra family and its valid-semantics evaluator
//!   (Section 3);
//! * [`plan`] — the hash-consed plan IR, cost-based join orderer and
//!   `explain` rendering behind the compiled execution path
//!   (`ALGREC_PLAN_BASELINE=1` keeps the interpreted path);
//! * [`translate`] — the Section 5/6 translations and the theorem
//!   harnesses;
//! * [`serve`] — the incremental materialized-view session engine behind
//!   `algrec repl` and the `algrec serve` line-protocol server;
//! * [`store`] — the durable store under the serving layer: write-ahead
//!   log, snapshots, and crash recovery (`--data-dir`);
//! * [`sched`] — the concurrency substrate: the worker pool behind
//!   parallel fixpoint rounds (`--threads`, `ALGREC_THREADS`), the
//!   shard-count knob behind partitioned evaluation (`--shards`), and
//!   the epoch-versioned snapshot swap behind the server's lock-free
//!   reads;
//! * [`cluster`] — the serving fleet: hash-sharded per-shard WALs on
//!   the primary, WAL-shipping replicas with epoch-gated consistent
//!   reads, and the epoch-vector-pinning router (`algrec cluster
//!   serve|join|route|bench`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-claim-by-claim verification record.
//!
//! ```
//! use algrec::prelude::*;
//!
//! // The same game, both paradigms, same (three-valued) answers.
//! let alg = algrec::core::parser::parse_program(
//!     "def win = map(move - (map(move, x.0) * win), x.0); query win;",
//! ).unwrap();
//! let ded = algrec::datalog::parser::parse_program(
//!     "win(X) :- move(X, Y), not win(Y).",
//! ).unwrap();
//! let db = Database::new().with("move", Relation::from_pairs([
//!     (Value::int(1), Value::int(2)),
//!     (Value::int(2), Value::int(3)),
//! ]));
//! let a = algrec::core::eval_valid(&alg, &db, Budget::SMALL).unwrap();
//! let d = algrec::datalog::evaluate(&ded, &db, algrec::datalog::Semantics::Valid, Budget::SMALL).unwrap();
//! assert_eq!(a.member(&Value::int(2)), Truth::True);
//! assert_eq!(d.model.truth("win", &[Value::int(2)]), Truth::True);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use algrec_adt as adt;
pub use algrec_cluster as cluster;
pub use algrec_core as core;
pub use algrec_datalog as datalog;
pub use algrec_plan as plan;
pub use algrec_scenario as scenario;
pub use algrec_sched as sched;
pub use algrec_serve as serve;
pub use algrec_store as store;
pub use algrec_translate as translate;
pub use algrec_value as value;

/// Commonly used items in one import.
pub mod prelude {
    pub use algrec_core::{
        eval_exact, eval_valid, eval_valid_traced, AlgExpr, AlgProgram, EvalOptions, OpDef,
    };
    pub use algrec_datalog::{evaluate, evaluate_traced, load_facts, Program, Rule, Semantics};
    pub use algrec_serve::{run_repl, serve, serve_traced, Session, SharedSession};
    pub use algrec_translate::{check_roundtrip, datalog_to_algebra};
    pub use algrec_value::{
        Budget, CollectSink, Database, EvalStats, LogSink, Relation, Trace, Truth, TvSet, Value,
    };
}
