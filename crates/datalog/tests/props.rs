//! Property-based tests for the deduction engine: parser round-trips on
//! random rule ASTs, engine agreement on random positive programs, and
//! structural invariants of the three-valued semantics.

use algrec_datalog::ast::{Atom, CmpOp, Expr, Func, Literal, Program, Rule};
use algrec_datalog::engine::Compiled;
use algrec_datalog::fixpoint::{naive, semi_naive};
use algrec_datalog::interp::Interp;
use algrec_datalog::parser::parse_program;
use algrec_datalog::safety;
use algrec_datalog::wellfounded::alternating_fixpoint;
use algrec_value::{Budget, Value};
use proptest::prelude::*;

const VARS: [&str; 3] = ["X", "Y", "Z"];
const PREDS: [&str; 3] = ["p", "q", "r"];

/// A random *value-level* expression over already-bound variables.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop::sample::select(&VARS[..]).prop_map(Expr::var),
        (-9i64..9).prop_map(Expr::int),
        "[a-c]".prop_map(|s| Expr::lit(Value::str(s))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Tuple),
            inner.clone().prop_map(|e| Expr::App(Func::Succ, vec![e])),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::App(Func::Add, vec![a, b])),
        ]
    })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        prop::sample::select(&PREDS[..]),
        prop::collection::vec(prop::sample::select(&VARS[..]).prop_map(Expr::var), 1..3),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

/// A random safe-by-construction rule: a positive guard atom binding all
/// three variables first, then arbitrary extra literals.
fn arb_safe_rule() -> impl Strategy<Value = Rule> {
    let guard = Literal::Pos(Atom::new(
        "e",
        [Expr::var("X"), Expr::var("Y"), Expr::var("Z")],
    ));
    let extra = prop_oneof![
        arb_atom().prop_map(Literal::Pos),
        arb_atom().prop_map(Literal::Neg),
        (
            prop::sample::select(
                &[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge
                ][..]
            ),
            arb_expr(),
            arb_expr()
        )
            .prop_map(|(op, l, r)| Literal::Cmp(op, l, r)),
    ];
    (arb_atom(), prop::collection::vec(extra, 0..3)).prop_map(move |(head, extras)| {
        let mut body = vec![guard.clone()];
        body.extend(extras);
        Rule::new(head, body)
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_safe_rule(), 1..5).prop_map(Program::from_rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Display → parse is the identity on random rule ASTs.
    #[test]
    fn parser_round_trips(p in arb_program()) {
        let text = p.to_string();
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        prop_assert_eq!(p, reparsed);
    }

    /// Safe-by-construction rules pass the Definition 4.1 checker.
    #[test]
    fn guarded_rules_are_safe(p in arb_program()) {
        prop_assert!(safety::is_safe(&p), "{}", p);
    }

    /// Naive and semi-naive least fixpoints agree on random positive
    /// programs over random facts.
    #[test]
    fn naive_equals_semi_naive(
        rules in prop::collection::vec(arb_safe_rule(), 1..4),
        facts in prop::collection::btree_set((0i64..4, 0i64..4, 0i64..4), 0..12),
    ) {
        // strip negative literals to make the program positive
        let positive = Program::from_rules(rules.into_iter().map(|r| {
            Rule::new(
                r.head,
                r.body.into_iter().filter(|l| !l.is_negative()).collect::<Vec<_>>(),
            )
        }));
        let mut base = Interp::new();
        for (a, b, c) in facts {
            base.insert("e", vec![Value::int(a), Value::int(b), Value::int(c)]);
        }
        let compiled = Compiled::compile(&positive).unwrap();
        let mut m1 = Budget::LARGE.meter();
        let mut m2 = Budget::LARGE.meter();
        let r1 = naive(&compiled, &base, &|_, _| false, &mut m1);
        let r2 = semi_naive(&compiled, &base, &|_, _| false, &mut m2);
        match (r1, r2) {
            (Ok((a, _)), Ok((b, _))) => prop_assert_eq!(a, b),
            // overflow-style type errors must at least agree in kind
            (Err(_), Err(_)) => {}
            (a, b) => panic!("engines disagree on failure: {a:?} vs {b:?}"),
        }
    }

    /// The alternating fixpoint maintains certain ⊆ possible, and on
    /// negation-free programs it is exact and equals the least fixpoint.
    #[test]
    fn alternating_fixpoint_invariants(
        rules in prop::collection::vec(arb_safe_rule(), 1..4),
        facts in prop::collection::btree_set((0i64..4, 0i64..4, 0i64..4), 0..10),
    ) {
        let program = Program::from_rules(rules);
        let mut base = Interp::new();
        for (a, b, c) in &facts {
            base.insert("e", vec![Value::int(*a), Value::int(*b), Value::int(*c)]);
        }
        let compiled = Compiled::compile(&program).unwrap();
        let mut meter = Budget::LARGE.meter();
        let Ok((tv, _)) = alternating_fixpoint(&compiled, &base, &mut meter) else {
            return Ok(()); // budget/type failure is acceptable on random input
        };
        prop_assert!(tv.certain.is_subset(&tv.possible));
        if !program.has_negation() {
            prop_assert!(tv.is_exact());
            let mut m2 = Budget::LARGE.meter();
            let (lfp, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
            prop_assert_eq!(tv.certain, lfp);
        }
    }

    /// Stratified evaluation agrees with the valid semantics whenever the
    /// program happens to be stratified.
    #[test]
    fn stratified_matches_valid_when_stratified(
        rules in prop::collection::vec(arb_safe_rule(), 1..4),
        facts in prop::collection::btree_set((0i64..3, 0i64..3, 0i64..3), 0..8),
    ) {
        let program = Program::from_rules(rules);
        if !algrec_datalog::stratify::is_stratified(&program) {
            return Ok(());
        }
        let mut base = Interp::new();
        for (a, b, c) in &facts {
            base.insert("e", vec![Value::int(*a), Value::int(*b), Value::int(*c)]);
        }
        let mut m1 = Budget::LARGE.meter();
        let strat = algrec_datalog::stratify::stratified(&program, &base, &mut m1);
        let compiled = Compiled::compile(&program).unwrap();
        let mut m2 = Budget::LARGE.meter();
        let valid = alternating_fixpoint(&compiled, &base, &mut m2);
        match (strat, valid) {
            (Ok((s, _)), Ok((v, _))) => {
                prop_assert!(v.is_exact(), "stratified programs are two-valued");
                prop_assert_eq!(s, v.certain);
            }
            (Err(_), Err(_)) => {}
            (s, v) => panic!("engines disagree on failure: {s:?} vs {v:?}"),
        }
    }
}
