//! Abstract syntax of deductive programs.
//!
//! The paper's deductive language (Section 4) consists of Horn clauses
//! `Q₁, …, Qₙ → Rᵢ(x̄)` where each `Qⱼ` is an atomic formula `R(x̄ⱼ)` or
//! `exp₁ = exp₂`, or a negated atomic formula, over the data types of a
//! specification — in particular, interpreted functions on the domains
//! (successor, addition, tuple formation) are allowed.
//!
//! We write rules head-first (`head :- body`) as is conventional, but the
//! structure is exactly the paper's.

use algrec_value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// An interpreted function symbol. The paper's framework is first order:
/// these are fixed operations of the imported data-type specifications
/// (nat, tuples), not function variables (cf. the genericity caveat in
/// Section 3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Func {
    /// Successor on integers (the `SUCC` of the NAT specification).
    Succ,
    /// Addition on integers.
    Add,
    /// Subtraction on integers.
    Sub,
    /// Multiplication on integers.
    Mul,
    /// Projection of the `i`-th component (0-based) of a tuple — the
    /// paper's `x.i` restructuring primitives.
    Proj(usize),
    /// Tuple concatenation with 1-tuple lifting of non-tuples: the value
    /// form of the algebra's cartesian product `×`, used by the
    /// algebra-to-deduction translations (Section 5).
    Concat,
}

impl Func {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Func::Succ | Func::Proj(_) => 1,
            Func::Add | Func::Sub | Func::Mul | Func::Concat => 2,
        }
    }

    /// Apply to evaluated arguments. Returns `None` on a dynamic type
    /// error (e.g. projecting from a non-tuple).
    pub fn apply(self, args: &[Value]) -> Option<Value> {
        match (self, args) {
            (Func::Succ, [Value::Int(i)]) => Some(Value::Int(i.checked_add(1)?)),
            (Func::Add, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_add(*b)?)),
            (Func::Sub, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_sub(*b)?)),
            (Func::Mul, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_mul(*b)?)),
            (Func::Proj(i), [Value::Tuple(t)]) => t.get(i).cloned(),
            (Func::Concat, [a, b]) => {
                let mut items: Vec<Value> = match a {
                    Value::Tuple(t) => t.clone(),
                    other => vec![other.clone()],
                };
                match b {
                    Value::Tuple(t) => items.extend(t.iter().cloned()),
                    other => items.push(other.clone()),
                }
                Some(Value::Tuple(items))
            }
            _ => None,
        }
    }

    /// Printable name.
    pub fn name(self) -> String {
        match self {
            Func::Succ => "succ".into(),
            Func::Add => "add".into(),
            Func::Sub => "sub".into(),
            Func::Mul => "mul".into(),
            Func::Proj(i) => format!("proj{i}"),
            Func::Concat => "concat".into(),
        }
    }
}

/// A term: a value expression over variables, constants and interpreted
/// functions.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// A variable.
    Var(String),
    /// A constant value.
    Lit(Value),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Interpreted function application.
    App(Func, Vec<Expr>),
}

impl Expr {
    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Constant constructor.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Lit(v.into())
    }

    /// Integer constant.
    pub fn int(i: i64) -> Self {
        Expr::Lit(Value::Int(i))
    }

    /// All variables occurring in this expression, in order of first
    /// occurrence (deduplicated).
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Expr::Lit(_) => {}
            Expr::Tuple(items) | Expr::App(_, items) => {
                items.iter().for_each(|e| e.collect_vars(out));
            }
        }
    }

    /// Is this expression ground (variable-free)?
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// Does this expression contain a function application? Pure patterns
    /// (variables, literals, tuples of patterns) can run "backwards"
    /// (match against a value); applications cannot.
    pub fn has_app(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Lit(_) => false,
            Expr::Tuple(items) => items.iter().any(Expr::has_app),
            Expr::App(_, _) => true,
        }
    }

    /// Rename every variable with `f`.
    pub fn rename_vars(&self, f: &mut impl FnMut(&str) -> String) -> Expr {
        match self {
            Expr::Var(v) => Expr::Var(f(v)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| e.rename_vars(f)).collect()),
            Expr::App(func, items) => {
                Expr::App(*func, items.iter().map(|e| e.rename_vars(f)).collect())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Lit(Value::Str(s)) => write!(f, "{s}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Tuple(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::App(func, items) => {
                write!(f, "{}(", func.name())?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A predicate atom `R(e₁, …, eₙ)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: impl Into<String>, args: impl IntoIterator<Item = Expr>) -> Self {
        Atom {
            pred: pred.into(),
            args: args.into_iter().collect(),
        }
    }

    /// All variables in the atom's arguments.
    pub fn vars(&self) -> BTreeSet<&str> {
        self.args.iter().flat_map(|e| e.vars()).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, e) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators available in rule bodies. `Eq` doubles as the
/// paper's `x = exp` binder (Definition 4.1, basis b and construction 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate on two values.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Printable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Literal {
    /// A positive atom `R(ē)`.
    Pos(Atom),
    /// A negated atom `¬R(ē)` — the paper's negation, interpreted by the
    /// chosen semantics.
    Neg(Atom),
    /// A comparison / equality `e₁ op e₂`.
    Cmp(CmpOp, Expr, Expr),
}

impl Literal {
    /// All variables in the literal.
    pub fn vars(&self) -> BTreeSet<&str> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.vars(),
            Literal::Cmp(_, l, r) => l.vars().into_iter().chain(r.vars()).collect(),
        }
    }

    /// The atom, if this is a (possibly negated) predicate literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(..) => None,
        }
    }

    /// Is this a negated atom?
    pub fn is_negative(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(op, l, r) => write!(f, "{l} {} {r}", op.symbol()),
        }
    }
}

/// A rule `head :- body` (the paper's `body → head`). A rule with an empty
/// body and ground head is a fact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: impl IntoIterator<Item = Literal>) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }

    /// Construct a fact (empty body). Panics in debug builds if the head
    /// is not ground.
    pub fn fact(head: Atom) -> Self {
        debug_assert!(
            head.args.iter().all(Expr::is_ground),
            "facts must be ground"
        );
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// All variables occurring in the rule.
    pub fn vars(&self) -> BTreeSet<&str> {
        let mut out: BTreeSet<&str> = self.head.vars();
        for lit in &self.body {
            out.extend(lit.vars());
        }
        out
    }

    /// Predicates used positively in the body.
    pub fn positive_preds(&self) -> BTreeSet<&str> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a.pred.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Predicates used negatively in the body.
    pub fn negative_preds(&self) -> BTreeSet<&str> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Neg(a) => Some(a.pred.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            write!(f, "{}.", self.head)
        } else {
            write!(f, "{} :- ", self.head)?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, ".")
        }
    }
}

/// A deductive program: a set of rules. Predicates that appear in rule
/// heads are *intensional* (IDB); all others are *extensional* (EDB) and
/// must be supplied by the [`algrec_value::Database`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Build from rules.
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Self {
        Program {
            rules: rules.into_iter().collect(),
        }
    }

    /// Add a rule.
    pub fn push(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Predicates defined by rules (IDB).
    pub fn idb_preds(&self) -> BTreeSet<&str> {
        self.rules.iter().map(|r| r.head.pred.as_str()).collect()
    }

    /// Predicates referenced but not defined (EDB).
    pub fn edb_preds(&self) -> BTreeSet<&str> {
        let idb = self.idb_preds();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .filter_map(Literal::atom)
            .map(|a| a.pred.as_str())
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// All predicate names mentioned anywhere.
    pub fn all_preds(&self) -> BTreeSet<&str> {
        let mut out = self.idb_preds();
        out.extend(self.edb_preds());
        out
    }

    /// Does any rule use negation? Programs without negation have the
    /// classical minimal-model semantics (Section 2.1) and every semantics
    /// in this crate coincides on them.
    pub fn has_negation(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(Literal::is_negative))
    }

    /// Rules whose head is `pred`.
    pub fn rules_for<'a>(&'a self, pred: &'a str) -> impl Iterator<Item = &'a Rule> + 'a {
        self.rules.iter().filter(move |r| r.head.pred == pred)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> Program {
        // tc(X,Y) :- edge(X,Y).  tc(X,Z) :- tc(X,Y), edge(Y,Z).
        Program::from_rules([
            Rule::new(
                Atom::new("tc", [Expr::var("X"), Expr::var("Y")]),
                [Literal::Pos(Atom::new(
                    "edge",
                    [Expr::var("X"), Expr::var("Y")],
                ))],
            ),
            Rule::new(
                Atom::new("tc", [Expr::var("X"), Expr::var("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [Expr::var("X"), Expr::var("Y")])),
                    Literal::Pos(Atom::new("edge", [Expr::var("Y"), Expr::var("Z")])),
                ],
            ),
        ])
    }

    #[test]
    fn func_apply() {
        assert_eq!(Func::Succ.apply(&[Value::Int(1)]), Some(Value::Int(2)));
        assert_eq!(
            Func::Add.apply(&[Value::Int(2), Value::Int(3)]),
            Some(Value::Int(5))
        );
        assert_eq!(
            Func::Sub.apply(&[Value::Int(2), Value::Int(3)]),
            Some(Value::Int(-1))
        );
        assert_eq!(
            Func::Mul.apply(&[Value::Int(2), Value::Int(3)]),
            Some(Value::Int(6))
        );
        let pair = Value::pair(Value::int(7), Value::int(8));
        assert_eq!(
            Func::Proj(1).apply(std::slice::from_ref(&pair)),
            Some(Value::Int(8))
        );
        assert_eq!(Func::Proj(2).apply(std::slice::from_ref(&pair)), None);
        assert_eq!(
            Func::Concat.apply(&[pair.clone(), Value::int(9)]),
            Some(Value::tuple([Value::int(7), Value::int(8), Value::int(9)]))
        );
        assert_eq!(
            Func::Concat.apply(&[Value::int(9), pair]),
            Some(Value::tuple([Value::int(9), Value::int(7), Value::int(8)]))
        );
        assert_eq!(Func::Concat.arity(), 2);
        assert_eq!(Func::Concat.name(), "concat");
        assert_eq!(Func::Succ.apply(&[Value::Bool(true)]), None);
        assert_eq!(Func::Succ.apply(&[Value::Int(i64::MAX)]), None);
    }

    #[test]
    fn func_arity_and_name() {
        assert_eq!(Func::Succ.arity(), 1);
        assert_eq!(Func::Add.arity(), 2);
        assert_eq!(Func::Proj(3).arity(), 1);
        assert_eq!(Func::Proj(3).name(), "proj3");
    }

    #[test]
    fn expr_vars_in_order() {
        let e = Expr::App(
            Func::Add,
            vec![
                Expr::var("Y"),
                Expr::Tuple(vec![Expr::var("X"), Expr::var("Y")]),
            ],
        );
        assert_eq!(e.vars(), vec!["Y", "X"]);
        assert!(!e.is_ground());
        assert!(e.has_app());
        assert!(!Expr::Tuple(vec![Expr::var("X")]).has_app());
        assert!(Expr::int(3).is_ground());
    }

    #[test]
    fn expr_rename() {
        let e = Expr::Tuple(vec![Expr::var("X"), Expr::int(1)]);
        let r = e.rename_vars(&mut |v| format!("{v}_0"));
        assert_eq!(r, Expr::Tuple(vec![Expr::var("X_0"), Expr::int(1)]));
    }

    #[test]
    fn cmp_ops() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(CmpOp::Eq.eval(&a, &a));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
    }

    #[test]
    fn program_idb_edb() {
        let p = tc_program();
        assert_eq!(p.idb_preds().into_iter().collect::<Vec<_>>(), vec!["tc"]);
        assert_eq!(p.edb_preds().into_iter().collect::<Vec<_>>(), vec!["edge"]);
        assert!(!p.has_negation());
        assert_eq!(p.rules_for("tc").count(), 2);
    }

    #[test]
    fn rule_pred_sets() {
        let r = Rule::new(
            Atom::new("win", [Expr::var("X")]),
            [
                Literal::Pos(Atom::new("move", [Expr::var("X"), Expr::var("Y")])),
                Literal::Neg(Atom::new("win", [Expr::var("Y")])),
            ],
        );
        assert_eq!(r.positive_preds().into_iter().collect::<Vec<_>>(), ["move"]);
        assert_eq!(r.negative_preds().into_iter().collect::<Vec<_>>(), ["win"]);
        assert_eq!(r.vars().into_iter().collect::<Vec<_>>(), ["X", "Y"]);
    }

    #[test]
    fn display_round_trips_shape() {
        let p = tc_program();
        let s = p.to_string();
        assert!(s.contains("tc(X, Y) :- edge(X, Y)."));
        assert!(s.contains("tc(X, Z) :- tc(X, Y), edge(Y, Z)."));
        let f = Rule::fact(Atom::new("edge", [Expr::int(1), Expr::int(2)]));
        assert_eq!(f.to_string(), "edge(1, 2).");
        let l = Literal::Cmp(CmpOp::Le, Expr::var("X"), Expr::int(4));
        assert_eq!(l.to_string(), "X <= 4");
        let n = Literal::Neg(Atom::new("q", [Expr::var("X")]));
        assert_eq!(n.to_string(), "not q(X)");
    }
}
