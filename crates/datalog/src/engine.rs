//! Single-rule evaluation: expression evaluation, pattern matching, body
//! planning and match enumeration.
//!
//! Every semantics in this crate is built from one primitive: *apply a
//! rule once* against a source of positive facts and an oracle deciding
//! negative literals. The semantics differ only in how they choose the
//! source and the oracle (Sections 2.2, 4 and 5 of the paper):
//!
//! * minimal model: no negation;
//! * stratified: oracle = complement of completed lower strata;
//! * inflationary: oracle = "not derived *so far*" (Prop 5.1's reading);
//! * well-founded / valid alternating fixpoint: oracle alternates between
//!   an underestimate and an overestimate ("cannot be derived *at all*").

use crate::ast::{CmpOp, Expr, Literal, Rule};
use crate::error::EvalError;
use crate::interp::Interp;
use algrec_value::budget::Meter;
use algrec_value::Value;
use std::collections::BTreeMap;

/// Variable bindings accumulated while matching a rule body.
pub type Bindings = BTreeMap<String, Value>;

/// Evaluate an expression under bindings. Fails on unbound variables and
/// dynamic type errors — the safety analysis guarantees neither happens
/// for planned rule bodies with type-correct data.
pub fn eval_expr(e: &Expr, b: &Bindings) -> Result<Value, EvalError> {
    match e {
        Expr::Var(v) => b
            .get(v)
            .cloned()
            .ok_or_else(|| EvalError::Unsafe(format!("unbound variable {v}"))),
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Tuple(items) => Ok(Value::Tuple(
            items
                .iter()
                .map(|e| eval_expr(e, b))
                .collect::<Result<_, _>>()?,
        )),
        Expr::App(f, items) => {
            let args: Vec<Value> = items
                .iter()
                .map(|e| eval_expr(e, b))
                .collect::<Result<_, _>>()?;
            f.apply(&args)
                .ok_or_else(|| EvalError::Type(format!("{}({args:?})", f.name())))
        }
    }
}

/// Match an expression *as a pattern* against a value, extending the
/// bindings. Variables bind (or test, if already bound), literals and
/// evaluable sub-expressions test, tuple patterns destructure. Returns
/// whether the match succeeded; bindings may be partially extended on
/// failure (callers clone).
pub fn match_expr(e: &Expr, v: &Value, b: &mut Bindings) -> Result<bool, EvalError> {
    let mut trail = Vec::new();
    match_expr_trail(e, v, b, &mut trail)
}

/// [`match_expr`], recording every newly bound variable on `trail` so the
/// caller can undo the bindings cheaply (the engine's alternative to
/// cloning the binding map per candidate fact).
fn match_expr_trail(
    e: &Expr,
    v: &Value,
    b: &mut Bindings,
    trail: &mut Vec<String>,
) -> Result<bool, EvalError> {
    match e {
        Expr::Var(name) => match b.get(name) {
            Some(bound) => Ok(bound == v),
            None => {
                b.insert(name.clone(), v.clone());
                trail.push(name.clone());
                Ok(true)
            }
        },
        Expr::Lit(lit) => Ok(lit == v),
        Expr::Tuple(items) => match v {
            Value::Tuple(vals) if vals.len() == items.len() => {
                for (e, val) in items.iter().zip(vals) {
                    if !match_expr_trail(e, val, b, trail)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
        Expr::App(..) => {
            // Applications cannot run backwards; the planner only
            // schedules them once their variables are bound.
            Ok(eval_expr(e, b)? == *v)
        }
    }
}

fn undo(b: &mut Bindings, trail: &mut Vec<String>, mark: usize) {
    while trail.len() > mark {
        let name = trail.pop().expect("trail length checked");
        b.remove(&name);
    }
}

/// Can `e` be *matched* once the variables in `bound` are available?
/// (Every function application inside must be fully bound; everything else
/// is a pattern.)
fn matchable(e: &Expr, bound: &dyn Fn(&str) -> bool) -> bool {
    match e {
        Expr::Var(_) | Expr::Lit(_) => true,
        Expr::Tuple(items) => items.iter().all(|e| matchable(e, bound)),
        Expr::App(..) => e.vars().iter().all(|v| bound(v)),
    }
}

/// Is `e` fully evaluable once the variables in `bound` are available?
fn evaluable(e: &Expr, bound: &dyn Fn(&str) -> bool) -> bool {
    e.vars().iter().all(|v| bound(v))
}

/// A body evaluation plan: the literal indices in execution order. The
/// plan exists iff the body can be evaluated left-to-right with every
/// negative literal, comparison and function application ground when
/// reached — the operational counterpart of Definition 4.1's range
/// restriction (see `safety` for the declarative check).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BodyPlan {
    /// Indices into `rule.body` in execution order.
    pub order: Vec<usize>,
}

/// Plan a rule body. Greedy: repeatedly pick the first not-yet-scheduled
/// literal that is executable given the variables bound so far.
pub fn plan_body(rule: &Rule) -> Result<BodyPlan, EvalError> {
    let n = rule.body.len();
    let mut scheduled = vec![false; n];
    let mut bound: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut order = Vec::with_capacity(n);

    let is_bound = |bound: &std::collections::BTreeSet<String>, v: &str| bound.contains(v);

    while order.len() < n {
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)] // `i` indexes two arrays in lockstep
        for i in 0..n {
            if scheduled[i] {
                continue;
            }
            let lit = &rule.body[i];
            let ok = {
                let bd = |v: &str| is_bound(&bound, v);
                match lit {
                    Literal::Pos(atom) => atom.args.iter().all(|e| matchable(e, &bd)),
                    Literal::Neg(atom) => atom.args.iter().all(|e| evaluable(e, &bd)),
                    Literal::Cmp(CmpOp::Eq, l, r) => {
                        // binder or test: one side evaluable, other matchable
                        (evaluable(l, &bd) && matchable(r, &bd))
                            || (evaluable(r, &bd) && matchable(l, &bd))
                    }
                    Literal::Cmp(_, l, r) => evaluable(l, &bd) && evaluable(r, &bd),
                }
            };
            if ok {
                scheduled[i] = true;
                order.push(i);
                for v in lit.vars() {
                    bound.insert(v.to_string());
                }
                progressed = true;
            }
        }
        if !progressed {
            let stuck: Vec<String> = (0..n)
                .filter(|i| !scheduled[*i])
                .map(|i| rule.body[i].to_string())
                .collect();
            return Err(EvalError::Unsafe(format!(
                "rule `{rule}` has no evaluable order; stuck literals: {}",
                stuck.join(", ")
            )));
        }
    }

    // The head must be fully evaluable from the body bindings.
    for e in &rule.head.args {
        if !evaluable(e, &|v| bound.contains(v)) {
            return Err(EvalError::Unsafe(format!(
                "rule `{rule}`: head variable not restricted by the body"
            )));
        }
    }
    Ok(BodyPlan { order })
}

/// Where positive literals read their facts during one rule application.
pub struct FactSource<'a> {
    /// Facts for every positive literal by default.
    pub full: &'a Interp,
    /// Semi-naive: the body-literal index that must instead read from this
    /// delta interpretation.
    pub delta: Option<(usize, &'a Interp)>,
}

impl<'a> FactSource<'a> {
    /// A plain source reading everything from `full`.
    pub fn full(full: &'a Interp) -> Self {
        FactSource { full, delta: None }
    }

    fn interp_for(&self, body_index: usize) -> &'a Interp {
        match self.delta {
            Some((i, d)) if i == body_index => d,
            _ => self.full,
        }
    }
}

/// Apply one rule: enumerate all satisfying bindings and emit head facts
/// into `out`. `neg` decides negative literals: `neg(pred, args)` returns
/// `true` iff `¬pred(args)` is *satisfied*. Returns the number of facts
/// that were new.
pub fn apply_rule(
    rule: &Rule,
    plan: &BodyPlan,
    source: &FactSource<'_>,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
    out: &mut Interp,
) -> Result<usize, EvalError> {
    let mut added = 0usize;
    let mut bindings = Bindings::new();
    apply_rec(
        rule,
        plan,
        0,
        source,
        neg,
        meter,
        &mut bindings,
        &mut |b, meter| {
            let args: Vec<Value> = rule
                .head
                .args
                .iter()
                .map(|e| eval_expr(e, b))
                .collect::<Result<_, _>>()?;
            for v in &args {
                meter.check_value_size(v.size())?;
            }
            if out.insert(&rule.head.pred, args) {
                added += 1;
                meter.add_facts(1)?;
            }
            Ok(())
        },
    )?;
    Ok(added)
}

/// Enumerate all satisfying bindings of a rule body, invoking `emit` for
/// each (used by grounding for stable models, which needs the bindings
/// themselves rather than just head facts).
pub fn enumerate_bindings(
    rule: &Rule,
    plan: &BodyPlan,
    source: &FactSource<'_>,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
    emit: &mut dyn FnMut(&Bindings, &mut Meter) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let mut bindings = Bindings::new();
    apply_rec(rule, plan, 0, source, neg, meter, &mut bindings, emit)
}

#[allow(clippy::too_many_arguments)]
fn apply_rec(
    rule: &Rule,
    plan: &BodyPlan,
    step: usize,
    source: &FactSource<'_>,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
    bindings: &mut Bindings,
    emit: &mut dyn FnMut(&Bindings, &mut Meter) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    if step == plan.order.len() {
        return emit(bindings, meter);
    }
    let idx = plan.order[step];
    match &rule.body[idx] {
        Literal::Pos(atom) => {
            let facts = source.interp_for(idx);
            // First-argument index: if the leading argument is already
            // computable, restrict the scan to the matching prefix range.
            // A failing evaluation (dynamic type error) falls back to the
            // full scan, which raises the same error lazily per candidate
            // — and raises nothing at all when there are no candidates,
            // matching the unindexed semantics.
            let first_bound = match atom.args.first() {
                Some(e) if e.vars().iter().all(|v| bindings.contains_key(*v)) => {
                    eval_expr(e, bindings).ok()
                }
                _ => None,
            };
            let iter: Box<dyn Iterator<Item = &Vec<Value>>> = match &first_bound {
                Some(v) => Box::new(facts.facts_with_first(&atom.pred, v)),
                None => Box::new(facts.facts(&atom.pred)),
            };
            let mut trail: Vec<String> = Vec::new();
            for fact in iter {
                if fact.len() != atom.args.len() {
                    continue;
                }
                let mut ok = true;
                for (e, v) in atom.args.iter().zip(fact) {
                    if !match_expr_trail(e, v, bindings, &mut trail)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    apply_rec(rule, plan, step + 1, source, neg, meter, bindings, emit)?;
                }
                undo(bindings, &mut trail, 0);
            }
            Ok(())
        }
        Literal::Neg(atom) => {
            let args: Vec<Value> = atom
                .args
                .iter()
                .map(|e| eval_expr(e, bindings))
                .collect::<Result<_, _>>()?;
            if neg(&atom.pred, &args) {
                apply_rec(rule, plan, step + 1, source, neg, meter, bindings, emit)?;
            }
            Ok(())
        }
        Literal::Cmp(CmpOp::Eq, l, r) => {
            // One side is evaluable (guaranteed by the plan); match the
            // other side against its value.
            let bound = |b: &Bindings, e: &Expr| e.vars().iter().all(|v| b.contains_key(*v));
            let (val_side, pat_side) = if bound(bindings, l) {
                (l, r)
            } else {
                (r, l)
            };
            let v = eval_expr(val_side, bindings)?;
            meter.check_value_size(v.size())?;
            let mut trail: Vec<String> = Vec::new();
            if match_expr_trail(pat_side, &v, bindings, &mut trail)? {
                apply_rec(rule, plan, step + 1, source, neg, meter, bindings, emit)?;
            }
            undo(bindings, &mut trail, 0);
            Ok(())
        }
        Literal::Cmp(op, l, r) => {
            let a = eval_expr(l, bindings)?;
            let b = eval_expr(r, bindings)?;
            if op.eval(&a, &b) {
                apply_rec(rule, plan, step + 1, source, neg, meter, bindings, emit)?;
            }
            Ok(())
        }
    }
}

/// A program with precomputed body plans — the compiled form every
/// fixpoint engine consumes.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The source rules.
    pub rules: Vec<Rule>,
    /// One plan per rule.
    pub plans: Vec<BodyPlan>,
}

impl Compiled {
    /// Plan every rule of a program.
    pub fn compile(program: &crate::ast::Program) -> Result<Self, EvalError> {
        let plans = program
            .rules
            .iter()
            .map(plan_body)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Compiled {
            rules: program.rules.clone(),
            plans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Func, Program};
    use algrec_value::Budget;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    #[test]
    fn eval_expr_basics() {
        let mut b = Bindings::new();
        b.insert("X".into(), i(3));
        assert_eq!(eval_expr(&v("X"), &b).unwrap(), i(3));
        assert_eq!(
            eval_expr(&Expr::App(Func::Succ, vec![v("X")]), &b).unwrap(),
            i(4)
        );
        assert_eq!(
            eval_expr(&Expr::Tuple(vec![v("X"), Expr::int(1)]), &b).unwrap(),
            Value::pair(i(3), i(1))
        );
        assert!(eval_expr(&v("Y"), &b).is_err());
        assert!(matches!(
            eval_expr(&Expr::App(Func::Succ, vec![Expr::lit("a")]), &b),
            Err(EvalError::Type(_))
        ));
    }

    #[test]
    fn match_binds_and_tests() {
        let mut b = Bindings::new();
        assert!(match_expr(&v("X"), &i(1), &mut b).unwrap());
        assert_eq!(b.get("X"), Some(&i(1)));
        assert!(!match_expr(&v("X"), &i(2), &mut b).unwrap());
        assert!(match_expr(&Expr::int(5), &i(5), &mut b).unwrap());
        assert!(!match_expr(&Expr::int(5), &i(6), &mut b).unwrap());
    }

    #[test]
    fn match_destructures_tuples() {
        let mut b = Bindings::new();
        let pat = Expr::Tuple(vec![v("A"), v("B")]);
        assert!(match_expr(&pat, &Value::pair(i(1), i(2)), &mut b).unwrap());
        assert_eq!(b.get("A"), Some(&i(1)));
        assert_eq!(b.get("B"), Some(&i(2)));
        assert!(!match_expr(&pat, &i(9), &mut Bindings::new()).unwrap());
    }

    #[test]
    fn plan_orders_binders_first() {
        // q(Y) :- Y = succ(X), e(X).   must schedule e(X) first.
        let rule = Rule::new(
            Atom::new("q", [v("Y")]),
            [
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                Literal::Pos(Atom::new("e", [v("X")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        assert_eq!(plan.order, vec![1, 0]);
    }

    #[test]
    fn plan_rejects_unsafe() {
        // q(X) :- not e(X).   X never restricted.
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Neg(Atom::new("e", [v("X")]))],
        );
        assert!(matches!(plan_body(&rule), Err(EvalError::Unsafe(_))));
        // q(X) :- e(Y).   head variable unrestricted.
        let rule2 = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("Y")]))],
        );
        assert!(matches!(plan_body(&rule2), Err(EvalError::Unsafe(_))));
    }

    #[test]
    fn apply_rule_joins() {
        // path(X,Z) :- e(X,Y), e(Y,Z).
        let rule = Rule::new(
            Atom::new("path", [v("X"), v("Z")]),
            [
                Literal::Pos(Atom::new("e", [v("X"), v("Y")])),
                Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1), i(2)]);
        facts.insert("e", vec![i(2), i(3)]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        let added = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(added, 1);
        assert!(out.holds("path", &[i(1), i(3)]));
    }

    #[test]
    fn apply_rule_negation_oracle() {
        // q(X) :- e(X), not p(X).
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Neg(Atom::new("p", [v("X")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1)]);
        facts.insert("e", vec![i(2)]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, args| args[0] != i(1), // ¬p(x) holds except for 1
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert!(!out.holds("q", &[i(1)]));
        assert!(out.holds("q", &[i(2)]));
    }

    #[test]
    fn apply_rule_with_functions_and_comparisons() {
        // double(Y) :- n(X), X < 3, Y = mul(X, 2).
        let rule = Rule::new(
            Atom::new("double", [v("Y")]),
            [
                Literal::Pos(Atom::new("n", [v("X")])),
                Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(3)),
                Literal::Cmp(
                    CmpOp::Eq,
                    v("Y"),
                    Expr::App(Func::Mul, vec![v("X"), Expr::int(2)]),
                ),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        for n in 1..=4 {
            facts.insert("n", vec![i(n)]);
        }
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.count("double"), 2);
        assert!(out.holds("double", &[i(2)]));
        assert!(out.holds("double", &[i(4)]));
    }

    #[test]
    fn delta_source_restricts_one_occurrence() {
        // path(X,Z) :- path(X,Y), e(Y,Z).  with delta on body literal 0.
        let rule = Rule::new(
            Atom::new("path", [v("X"), v("Z")]),
            [
                Literal::Pos(Atom::new("path", [v("X"), v("Y")])),
                Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut full = Interp::new();
        full.insert("path", vec![i(1), i(2)]);
        full.insert("path", vec![i(5), i(6)]);
        full.insert("e", vec![i(2), i(3)]);
        full.insert("e", vec![i(6), i(7)]);
        let mut delta = Interp::new();
        delta.insert("path", vec![i(1), i(2)]); // only this one is "new"
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource {
                full: &full,
                delta: Some((0, &delta)),
            },
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert!(out.holds("path", &[i(1), i(3)]));
        assert!(!out.holds("path", &[i(5), i(7)])); // not rederived from old
    }

    #[test]
    fn compile_whole_program() {
        let p = Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X")]))],
        )]);
        let c = Compiled::compile(&p).unwrap();
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.plans.len(), 1);
    }

    #[test]
    fn indexed_lookup_stays_lazy_on_type_errors() {
        // q(X) :- e(X), p(succ(X)).  With X bound to a string, evaluating
        // succ(X) for the first-argument index would error — but p is
        // empty, so the unindexed semantics has no candidates and raises
        // nothing. The index must not change that.
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Pos(Atom::new("p", [Expr::App(Func::Succ, vec![v("X")])])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![Value::str("a")]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        let added = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(added, 0);
        // With p non-empty the error must surface (the full scan hits it).
        facts.insert("p", vec![i(1)]);
        let err = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        );
        assert!(matches!(err, Err(EvalError::Type(_))));
    }

    #[test]
    fn fact_budget_enforced() {
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X")]))],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        for n in 0..10 {
            facts.insert("e", vec![i(n)]);
        }
        let mut out = Interp::new();
        let mut meter = Budget::new(10, 3, 64).meter();
        let err = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        );
        assert!(matches!(err, Err(EvalError::Budget(_))));
    }
}
