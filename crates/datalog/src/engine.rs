//! Single-rule evaluation: expression evaluation, pattern matching, body
//! planning and match enumeration.
//!
//! Every semantics in this crate is built from one primitive: *apply a
//! rule once* against a source of positive facts and an oracle deciding
//! negative literals. The semantics differ only in how they choose the
//! source and the oracle (Sections 2.2, 4 and 5 of the paper):
//!
//! * minimal model: no negation;
//! * stratified: oracle = complement of completed lower strata;
//! * inflationary: oracle = "not derived *so far*" (Prop 5.1's reading);
//! * well-founded / valid alternating fixpoint: oracle alternates between
//!   an underestimate and an overestimate ("cannot be derived *at all*").
//!
//! The planner compiles each rule body to slot-resolved form: variables
//! become indices into a per-rule frame (`Vec<Option<Value>>`), equality
//! orientation and first-argument probe eligibility are decided once at
//! plan time, and positive literals with a computable leading argument
//! probe the interpretation's hashed first-argument index instead of
//! scanning every fact. The binding-visible API ([`Bindings`],
//! [`enumerate_bindings`]) is unchanged: grounding reconstructs the named
//! map from the frame at each emitted match.

use crate::ast::{CmpOp, Expr, Func, Literal, Rule};
use crate::error::EvalError;
use crate::interp::Interp;
use algrec_value::budget::Meter;
use algrec_value::Value;
use std::collections::BTreeMap;

/// Variable bindings accumulated while matching a rule body.
pub type Bindings = BTreeMap<String, Value>;

/// Evaluate an expression under bindings. Fails on unbound variables and
/// dynamic type errors — the safety analysis guarantees neither happens
/// for planned rule bodies with type-correct data.
pub fn eval_expr(e: &Expr, b: &Bindings) -> Result<Value, EvalError> {
    match e {
        Expr::Var(v) => b
            .get(v)
            .cloned()
            .ok_or_else(|| EvalError::Unsafe(format!("unbound variable {v}"))),
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Tuple(items) => Ok(Value::Tuple(
            items
                .iter()
                .map(|e| eval_expr(e, b))
                .collect::<Result<_, _>>()?,
        )),
        Expr::App(f, items) => {
            let args: Vec<Value> = items
                .iter()
                .map(|e| eval_expr(e, b))
                .collect::<Result<_, _>>()?;
            f.apply(&args)
                .ok_or_else(|| EvalError::Type(format!("{}({args:?})", f.name())))
        }
    }
}

/// Match an expression *as a pattern* against a value, extending the
/// bindings. Variables bind (or test, if already bound), literals and
/// evaluable sub-expressions test, tuple patterns destructure. Returns
/// whether the match succeeded; bindings may be partially extended on
/// failure (callers clone).
pub fn match_expr(e: &Expr, v: &Value, b: &mut Bindings) -> Result<bool, EvalError> {
    match e {
        Expr::Var(name) => match b.get(name) {
            Some(bound) => Ok(bound == v),
            None => {
                b.insert(name.clone(), v.clone());
                Ok(true)
            }
        },
        Expr::Lit(lit) => Ok(lit == v),
        Expr::Tuple(items) => match v {
            Value::Tuple(vals) if vals.len() == items.len() => {
                for (e, val) in items.iter().zip(vals) {
                    if !match_expr(e, val, b)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
        Expr::App(..) => {
            // Applications cannot run backwards; the planner only
            // schedules them once their variables are bound.
            Ok(eval_expr(e, b)? == *v)
        }
    }
}

/// Can `e` be *matched* once the variables in `bound` are available?
/// (Every function application inside must be fully bound; everything else
/// is a pattern.)
fn matchable(e: &Expr, bound: &dyn Fn(&str) -> bool) -> bool {
    match e {
        Expr::Var(_) | Expr::Lit(_) => true,
        Expr::Tuple(items) => items.iter().all(|e| matchable(e, bound)),
        Expr::App(..) => e.vars().iter().all(|v| bound(v)),
    }
}

/// Is `e` fully evaluable once the variables in `bound` are available?
fn evaluable(e: &Expr, bound: &dyn Fn(&str) -> bool) -> bool {
    e.vars().iter().all(|v| bound(v))
}

/// An element expression with every variable resolved to a frame slot —
/// the compiled counterpart of [`Expr`]. Produced by [`plan_body`];
/// evaluated and matched against a `Vec<Option<Value>>` frame without any
/// name lookups or string clones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotExpr {
    /// A variable occurrence, resolved to its slot in the rule frame.
    Var(usize),
    /// A constant.
    Lit(Value),
    /// A tuple constructor (forwards) / destructuring pattern (backwards).
    Tuple(Vec<SlotExpr>),
    /// A function application; never runs backwards — the planner only
    /// schedules it once every argument variable is bound.
    App(Func, Vec<SlotExpr>),
}

/// A body literal compiled to slot-resolved form with all plan-time
/// decisions (equality orientation, index-probe eligibility) baked in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotLit {
    /// A positive atom, matched against the fact source.
    Pos {
        /// Predicate name.
        pred: String,
        /// Argument patterns.
        args: Vec<SlotExpr>,
        /// Whether the leading argument is fully computable from earlier
        /// literals when this atom is reached — if so, the engine probes
        /// the interpretation's first-argument hash index instead of
        /// scanning every fact of the predicate.
        probe_first: bool,
    },
    /// A negative atom: evaluate the arguments, consult the oracle.
    Neg {
        /// Predicate name.
        pred: String,
        /// Argument expressions (fully evaluable when reached).
        args: Vec<SlotExpr>,
    },
    /// Equality as binder-or-test. Orientation is fixed at plan time:
    /// `val` is the side evaluable when the literal is reached, `pat` is
    /// matched against its value (binding any fresh variables).
    Eq {
        /// The evaluable side.
        val: SlotExpr,
        /// The pattern side.
        pat: SlotExpr,
    },
    /// An ordering comparison; both sides evaluable when reached.
    Cmp(CmpOp, SlotExpr, SlotExpr),
}

/// A body evaluation plan: the literal indices in execution order plus the
/// slot-compiled form of every literal and the head. The plan exists iff
/// the body can be evaluated left-to-right with every negative literal,
/// comparison and function application ground when reached — the
/// operational counterpart of Definition 4.1's range restriction (see
/// `safety` for the declarative check).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BodyPlan {
    /// Indices into `rule.body` in execution order.
    pub order: Vec<usize>,
    /// The frame's variable names, in slot order (first occurrence during
    /// scheduling). `vars[i]` is the name bound at frame slot `i`.
    pub vars: Vec<String>,
    /// Slot-compiled literals, parallel to `rule.body` (so `order` indexes
    /// into this vector too).
    pub body: Vec<SlotLit>,
    /// Slot-compiled head arguments.
    pub head: Vec<SlotExpr>,
}

/// Resolve a variable name to its frame slot, allocating one on first use.
fn slot_of(vars: &mut Vec<String>, name: &str) -> usize {
    match vars.iter().position(|v| v == name) {
        Some(i) => i,
        None => {
            vars.push(name.to_string());
            vars.len() - 1
        }
    }
}

/// Compile an expression to slot form, allocating slots for fresh
/// variables in first-occurrence order.
fn compile_expr(e: &Expr, vars: &mut Vec<String>) -> SlotExpr {
    match e {
        Expr::Var(name) => SlotExpr::Var(slot_of(vars, name)),
        Expr::Lit(v) => SlotExpr::Lit(v.clone()),
        Expr::Tuple(items) => {
            SlotExpr::Tuple(items.iter().map(|e| compile_expr(e, vars)).collect())
        }
        Expr::App(f, items) => {
            SlotExpr::App(*f, items.iter().map(|e| compile_expr(e, vars)).collect())
        }
    }
}

/// Plan a rule body. Greedy: repeatedly pick the first not-yet-scheduled
/// literal that is executable given the variables bound so far, compiling
/// it to slot form as it is scheduled (so orientation and probe decisions
/// see exactly the bindings available at that point of execution).
pub fn plan_body(rule: &Rule) -> Result<BodyPlan, EvalError> {
    let n = rule.body.len();
    let mut scheduled = vec![false; n];
    let mut bound: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut order = Vec::with_capacity(n);
    let mut vars: Vec<String> = Vec::new();
    let mut compiled: Vec<Option<SlotLit>> = vec![None; n];

    while order.len() < n {
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)] // `i` indexes two arrays in lockstep
        for i in 0..n {
            if scheduled[i] {
                continue;
            }
            let lit = &rule.body[i];
            let slot_lit = {
                let bd = |v: &str| bound.contains(v);
                match lit {
                    Literal::Pos(atom) if atom.args.iter().all(|e| matchable(e, &bd)) => {
                        // The leading argument can drive an index probe iff
                        // it is computable before this atom binds anything.
                        let probe_first = matches!(atom.args.first(),
                            Some(e) if evaluable(e, &bd));
                        Some(SlotLit::Pos {
                            pred: atom.pred.clone(),
                            args: atom
                                .args
                                .iter()
                                .map(|e| compile_expr(e, &mut vars))
                                .collect(),
                            probe_first,
                        })
                    }
                    Literal::Neg(atom) if atom.args.iter().all(|e| evaluable(e, &bd)) => {
                        Some(SlotLit::Neg {
                            pred: atom.pred.clone(),
                            args: atom
                                .args
                                .iter()
                                .map(|e| compile_expr(e, &mut vars))
                                .collect(),
                        })
                    }
                    Literal::Cmp(CmpOp::Eq, l, r)
                        if (evaluable(l, &bd) && matchable(r, &bd))
                            || (evaluable(r, &bd) && matchable(l, &bd)) =>
                    {
                        // Binder or test: the evaluable side supplies the
                        // value, the other side is matched against it.
                        // (If `l` is evaluable then `r` is matchable: an
                        // evaluable side is always matchable, so the second
                        // disjunct can only fire when the first cannot.)
                        let (val, pat) = if evaluable(l, &bd) { (l, r) } else { (r, l) };
                        Some(SlotLit::Eq {
                            val: compile_expr(val, &mut vars),
                            pat: compile_expr(pat, &mut vars),
                        })
                    }
                    Literal::Cmp(op, l, r)
                        if *op != CmpOp::Eq && evaluable(l, &bd) && evaluable(r, &bd) =>
                    {
                        Some(SlotLit::Cmp(
                            *op,
                            compile_expr(l, &mut vars),
                            compile_expr(r, &mut vars),
                        ))
                    }
                    _ => None,
                }
            };
            if let Some(slot_lit) = slot_lit {
                scheduled[i] = true;
                order.push(i);
                compiled[i] = Some(slot_lit);
                for v in lit.vars() {
                    bound.insert(v.to_string());
                }
                progressed = true;
            }
        }
        if !progressed {
            let stuck: Vec<String> = (0..n)
                .filter(|i| !scheduled[*i])
                .map(|i| rule.body[i].to_string())
                .collect();
            return Err(EvalError::Unsafe(format!(
                "rule `{rule}` has no evaluable order; stuck literals: {}",
                stuck.join(", ")
            )));
        }
    }

    // The head must be fully evaluable from the body bindings.
    for e in &rule.head.args {
        if !evaluable(e, &|v| bound.contains(v)) {
            return Err(EvalError::Unsafe(format!(
                "rule `{rule}`: head variable not restricted by the body"
            )));
        }
    }
    let head = rule
        .head
        .args
        .iter()
        .map(|e| compile_expr(e, &mut vars))
        .collect();
    Ok(BodyPlan {
        order,
        vars,
        body: compiled
            .into_iter()
            .map(|l| l.expect("every literal scheduled"))
            .collect(),
        head,
    })
}

/// Evaluate a slot expression against the frame.
fn eval_slot(e: &SlotExpr, f: &[Option<Value>]) -> Result<Value, EvalError> {
    match e {
        SlotExpr::Var(i) => f[*i]
            .clone()
            .ok_or_else(|| EvalError::Unsafe(format!("unbound variable (slot {i})"))),
        SlotExpr::Lit(v) => Ok(v.clone()),
        SlotExpr::Tuple(items) => Ok(Value::Tuple(
            items
                .iter()
                .map(|e| eval_slot(e, f))
                .collect::<Result<_, _>>()?,
        )),
        SlotExpr::App(func, items) => {
            let args: Vec<Value> = items
                .iter()
                .map(|e| eval_slot(e, f))
                .collect::<Result<_, _>>()?;
            func.apply(&args)
                .ok_or_else(|| EvalError::Type(format!("{}({args:?})", func.name())))
        }
    }
}

/// Match a slot expression as a pattern against a value, recording every
/// newly filled slot on `trail` so the caller can undo cheaply.
fn match_slot(
    e: &SlotExpr,
    v: &Value,
    f: &mut [Option<Value>],
    trail: &mut Vec<usize>,
) -> Result<bool, EvalError> {
    match e {
        SlotExpr::Var(i) => match &f[*i] {
            Some(bound) => Ok(bound == v),
            None => {
                f[*i] = Some(v.clone());
                trail.push(*i);
                Ok(true)
            }
        },
        SlotExpr::Lit(lit) => Ok(lit == v),
        SlotExpr::Tuple(items) => match v {
            Value::Tuple(vals) if vals.len() == items.len() => {
                for (e, val) in items.iter().zip(vals) {
                    if !match_slot(e, val, f, trail)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
        SlotExpr::App(..) => Ok(eval_slot(e, f)? == *v),
    }
}

fn undo(f: &mut [Option<Value>], trail: &mut Vec<usize>, mark: usize) {
    while trail.len() > mark {
        let i = trail.pop().expect("trail length checked");
        f[i] = None;
    }
}

/// Where positive literals read their facts during one rule application.
pub struct FactSource<'a> {
    /// Facts for every positive literal by default.
    pub full: &'a Interp,
    /// Semi-naive: the body-literal index that must instead read from this
    /// delta interpretation.
    pub delta: Option<(usize, &'a Interp)>,
}

impl<'a> FactSource<'a> {
    /// A plain source reading everything from `full`.
    pub fn full(full: &'a Interp) -> Self {
        FactSource { full, delta: None }
    }

    fn interp_for(&self, body_index: usize) -> &'a Interp {
        match self.delta {
            Some((i, d)) if i == body_index => d,
            _ => self.full,
        }
    }
}

/// Apply one rule: enumerate all satisfying bindings and emit head facts
/// into `out`. `neg` decides negative literals: `neg(pred, args)` returns
/// `true` iff `¬pred(args)` is *satisfied*. Returns the number of facts
/// that were new.
pub fn apply_rule(
    rule: &Rule,
    plan: &BodyPlan,
    source: &FactSource<'_>,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
    out: &mut Interp,
) -> Result<usize, EvalError> {
    let mut added = 0usize;
    let mut frame: Vec<Option<Value>> = vec![None; plan.vars.len()];
    apply_rec(plan, 0, source, neg, meter, &mut frame, &mut |f, meter| {
        let args: Vec<Value> = plan
            .head
            .iter()
            .map(|e| eval_slot(e, f))
            .collect::<Result<_, _>>()?;
        for v in &args {
            meter.check_value_size(v.size())?;
        }
        if out.insert(&rule.head.pred, args) {
            added += 1;
            meter.add_facts(1)?;
        }
        Ok(())
    })?;
    Ok(added)
}

/// Enumerate all satisfying bindings of a rule body, invoking `emit` for
/// each (used by grounding for stable models, which needs the bindings
/// themselves rather than just head facts). The named binding map is
/// reconstructed from the frame per match; grounding is not on the
/// fact-derivation fast path.
pub fn enumerate_bindings(
    rule: &Rule,
    plan: &BodyPlan,
    source: &FactSource<'_>,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
    emit: &mut dyn FnMut(&Bindings, &mut Meter) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let _ = rule;
    let mut frame: Vec<Option<Value>> = vec![None; plan.vars.len()];
    apply_rec(plan, 0, source, neg, meter, &mut frame, &mut |f, meter| {
        let bindings: Bindings = plan
            .vars
            .iter()
            .zip(f.iter())
            .filter_map(|(name, v)| v.as_ref().map(|v| (name.clone(), v.clone())))
            .collect();
        emit(&bindings, meter)
    })
}

/// Callback invoked on every complete frame a rule body derives.
type EmitFn<'a> = dyn FnMut(&[Option<Value>], &mut Meter) -> Result<(), EvalError> + 'a;

fn apply_rec(
    plan: &BodyPlan,
    step: usize,
    source: &FactSource<'_>,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
    frame: &mut [Option<Value>],
    emit: &mut EmitFn<'_>,
) -> Result<(), EvalError> {
    if step == plan.order.len() {
        return emit(frame, meter);
    }
    let idx = plan.order[step];
    match &plan.body[idx] {
        SlotLit::Pos {
            pred,
            args,
            probe_first,
        } => {
            let facts = source.interp_for(idx);
            // First-argument index: if the leading argument is computable
            // here (decided at plan time), probe the hash index on the
            // matching key instead of scanning. A failing evaluation
            // (dynamic type error) falls back to the full scan, which
            // raises the same error lazily per candidate — and raises
            // nothing at all when there are no candidates, matching the
            // unindexed semantics. Probe order equals scan order: index
            // buckets preserve the sorted fact order.
            let first_key = if *probe_first {
                eval_slot(&args[0], frame).ok()
            } else {
                None
            };
            let index = first_key.as_ref().map(|_| {
                if meter.is_traced() && !facts.has_first_index(pred) {
                    let ix = facts.first_index(pred);
                    meter.record_index_build(ix.key_count());
                    ix
                } else {
                    facts.first_index(pred)
                }
            });
            let iter: Box<dyn Iterator<Item = &Vec<Value>>> = match (&first_key, &index) {
                (Some(key), Some(ix)) => {
                    if meter.is_traced() {
                        let mut it = ix.probe(key).peekable();
                        meter.record_index_probe(it.peek().is_some());
                        Box::new(it)
                    } else {
                        Box::new(ix.probe(key))
                    }
                }
                _ => Box::new(facts.facts(pred)),
            };
            let mut trail: Vec<usize> = Vec::new();
            for fact in iter {
                if fact.len() != args.len() {
                    continue;
                }
                let mut ok = true;
                for (e, v) in args.iter().zip(fact) {
                    if !match_slot(e, v, frame, &mut trail)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    apply_rec(plan, step + 1, source, neg, meter, frame, emit)?;
                }
                undo(frame, &mut trail, 0);
            }
            Ok(())
        }
        SlotLit::Neg { pred, args } => {
            let args: Vec<Value> = args
                .iter()
                .map(|e| eval_slot(e, frame))
                .collect::<Result<_, _>>()?;
            if neg(pred, &args) {
                apply_rec(plan, step + 1, source, neg, meter, frame, emit)?;
            }
            Ok(())
        }
        SlotLit::Eq { val, pat } => {
            let v = eval_slot(val, frame)?;
            meter.check_value_size(v.size())?;
            let mut trail: Vec<usize> = Vec::new();
            if match_slot(pat, &v, frame, &mut trail)? {
                apply_rec(plan, step + 1, source, neg, meter, frame, emit)?;
            }
            undo(frame, &mut trail, 0);
            Ok(())
        }
        SlotLit::Cmp(op, l, r) => {
            let a = eval_slot(l, frame)?;
            let b = eval_slot(r, frame)?;
            if op.eval(&a, &b) {
                apply_rec(plan, step + 1, source, neg, meter, frame, emit)?;
            }
            Ok(())
        }
    }
}

/// A program with precomputed body plans — the compiled form every
/// fixpoint engine consumes.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The source rules.
    pub rules: Vec<Rule>,
    /// One plan per rule.
    pub plans: Vec<BodyPlan>,
}

impl Compiled {
    /// Plan every rule of a program.
    pub fn compile(program: &crate::ast::Program) -> Result<Self, EvalError> {
        let plans = program
            .rules
            .iter()
            .map(plan_body)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Compiled {
            rules: program.rules.clone(),
            plans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Func, Program};
    use algrec_value::Budget;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    #[test]
    fn eval_expr_basics() {
        let mut b = Bindings::new();
        b.insert("X".into(), i(3));
        assert_eq!(eval_expr(&v("X"), &b).unwrap(), i(3));
        assert_eq!(
            eval_expr(&Expr::App(Func::Succ, vec![v("X")]), &b).unwrap(),
            i(4)
        );
        assert_eq!(
            eval_expr(&Expr::Tuple(vec![v("X"), Expr::int(1)]), &b).unwrap(),
            Value::pair(i(3), i(1))
        );
        assert!(eval_expr(&v("Y"), &b).is_err());
        assert!(matches!(
            eval_expr(&Expr::App(Func::Succ, vec![Expr::lit("a")]), &b),
            Err(EvalError::Type(_))
        ));
    }

    #[test]
    fn match_binds_and_tests() {
        let mut b = Bindings::new();
        assert!(match_expr(&v("X"), &i(1), &mut b).unwrap());
        assert_eq!(b.get("X"), Some(&i(1)));
        assert!(!match_expr(&v("X"), &i(2), &mut b).unwrap());
        assert!(match_expr(&Expr::int(5), &i(5), &mut b).unwrap());
        assert!(!match_expr(&Expr::int(5), &i(6), &mut b).unwrap());
    }

    #[test]
    fn match_destructures_tuples() {
        let mut b = Bindings::new();
        let pat = Expr::Tuple(vec![v("A"), v("B")]);
        assert!(match_expr(&pat, &Value::pair(i(1), i(2)), &mut b).unwrap());
        assert_eq!(b.get("A"), Some(&i(1)));
        assert_eq!(b.get("B"), Some(&i(2)));
        assert!(!match_expr(&pat, &i(9), &mut Bindings::new()).unwrap());
    }

    #[test]
    fn plan_orders_binders_first() {
        // q(Y) :- Y = succ(X), e(X).   must schedule e(X) first.
        let rule = Rule::new(
            Atom::new("q", [v("Y")]),
            [
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                Literal::Pos(Atom::new("e", [v("X")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        assert_eq!(plan.order, vec![1, 0]);
    }

    #[test]
    fn plan_assigns_slots_and_probe_flags() {
        // path(X,Z) :- e(X,Y), e(Y,Z).  Slots in scheduling order: X, Y, Z.
        let rule = Rule::new(
            Atom::new("path", [v("X"), v("Z")]),
            [
                Literal::Pos(Atom::new("e", [v("X"), v("Y")])),
                Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        assert_eq!(plan.vars, vec!["X", "Y", "Z"]);
        assert_eq!(plan.head, vec![SlotExpr::Var(0), SlotExpr::Var(2)]);
        // First occurrence scans (X unbound); second probes on bound Y.
        assert_eq!(
            plan.body[0],
            SlotLit::Pos {
                pred: "e".into(),
                args: vec![SlotExpr::Var(0), SlotExpr::Var(1)],
                probe_first: false,
            }
        );
        assert_eq!(
            plan.body[1],
            SlotLit::Pos {
                pred: "e".into(),
                args: vec![SlotExpr::Var(1), SlotExpr::Var(2)],
                probe_first: true,
            }
        );
    }

    #[test]
    fn plan_orients_equality_at_plan_time() {
        // q(Y) :- e(X), Y = succ(X).   succ(X) is the value, Y the pattern.
        let rule = Rule::new(
            Atom::new("q", [v("Y")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        assert_eq!(
            plan.body[1],
            SlotLit::Eq {
                val: SlotExpr::App(Func::Succ, vec![SlotExpr::Var(0)]),
                pat: SlotExpr::Var(1),
            }
        );
    }

    #[test]
    fn plan_rejects_unsafe() {
        // q(X) :- not e(X).   X never restricted.
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Neg(Atom::new("e", [v("X")]))],
        );
        assert!(matches!(plan_body(&rule), Err(EvalError::Unsafe(_))));
        // q(X) :- e(Y).   head variable unrestricted.
        let rule2 = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("Y")]))],
        );
        assert!(matches!(plan_body(&rule2), Err(EvalError::Unsafe(_))));
    }

    #[test]
    fn apply_rule_joins() {
        // path(X,Z) :- e(X,Y), e(Y,Z).
        let rule = Rule::new(
            Atom::new("path", [v("X"), v("Z")]),
            [
                Literal::Pos(Atom::new("e", [v("X"), v("Y")])),
                Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1), i(2)]);
        facts.insert("e", vec![i(2), i(3)]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        let added = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(added, 1);
        assert!(out.holds("path", &[i(1), i(3)]));
    }

    #[test]
    fn probe_with_constant_first_argument() {
        // q(Y) :- e(1, Y).   Constant leading argument probes the index
        // with no prior bindings at all.
        let rule = Rule::new(
            Atom::new("q", [v("Y")]),
            [Literal::Pos(Atom::new("e", [Expr::int(1), v("Y")]))],
        );
        let plan = plan_body(&rule).unwrap();
        match &plan.body[0] {
            SlotLit::Pos { probe_first, .. } => assert!(probe_first),
            other => panic!("unexpected {other:?}"),
        }
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1), i(2)]);
        facts.insert("e", vec![i(1), i(3)]);
        facts.insert("e", vec![i(2), i(9)]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.count("q"), 2);
        assert!(out.holds("q", &[i(2)]));
        assert!(out.holds("q", &[i(3)]));
        assert!(!out.holds("q", &[i(9)]));
    }

    #[test]
    fn apply_rule_negation_oracle() {
        // q(X) :- e(X), not p(X).
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Neg(Atom::new("p", [v("X")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1)]);
        facts.insert("e", vec![i(2)]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, args| args[0] != i(1), // ¬p(x) holds except for 1
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert!(!out.holds("q", &[i(1)]));
        assert!(out.holds("q", &[i(2)]));
    }

    #[test]
    fn apply_rule_with_functions_and_comparisons() {
        // double(Y) :- n(X), X < 3, Y = mul(X, 2).
        let rule = Rule::new(
            Atom::new("double", [v("Y")]),
            [
                Literal::Pos(Atom::new("n", [v("X")])),
                Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(3)),
                Literal::Cmp(
                    CmpOp::Eq,
                    v("Y"),
                    Expr::App(Func::Mul, vec![v("X"), Expr::int(2)]),
                ),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        for n in 1..=4 {
            facts.insert("n", vec![i(n)]);
        }
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.count("double"), 2);
        assert!(out.holds("double", &[i(2)]));
        assert!(out.holds("double", &[i(4)]));
    }

    #[test]
    fn delta_source_restricts_one_occurrence() {
        // path(X,Z) :- path(X,Y), e(Y,Z).  with delta on body literal 0.
        let rule = Rule::new(
            Atom::new("path", [v("X"), v("Z")]),
            [
                Literal::Pos(Atom::new("path", [v("X"), v("Y")])),
                Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut full = Interp::new();
        full.insert("path", vec![i(1), i(2)]);
        full.insert("path", vec![i(5), i(6)]);
        full.insert("e", vec![i(2), i(3)]);
        full.insert("e", vec![i(6), i(7)]);
        let mut delta = Interp::new();
        delta.insert("path", vec![i(1), i(2)]); // only this one is "new"
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        apply_rule(
            &rule,
            &plan,
            &FactSource {
                full: &full,
                delta: Some((0, &delta)),
            },
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert!(out.holds("path", &[i(1), i(3)]));
        assert!(!out.holds("path", &[i(5), i(7)])); // not rederived from old
    }

    #[test]
    fn compile_whole_program() {
        let p = Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X")]))],
        )]);
        let c = Compiled::compile(&p).unwrap();
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.plans.len(), 1);
    }

    #[test]
    fn enumerate_bindings_reconstructs_names() {
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("e", [v("X"), v("Y")])),
                Literal::Cmp(CmpOp::Lt, v("X"), v("Y")),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![i(1), i(2)]);
        facts.insert("e", vec![i(3), i(2)]);
        let mut meter = Budget::SMALL.meter();
        let mut seen = Vec::new();
        enumerate_bindings(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut |b, _| {
                seen.push(b.clone());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].get("X"), Some(&i(1)));
        assert_eq!(seen[0].get("Y"), Some(&i(2)));
    }

    #[test]
    fn indexed_lookup_stays_lazy_on_type_errors() {
        // q(X) :- e(X), p(succ(X)).  With X bound to a string, evaluating
        // succ(X) for the first-argument index would error — but p is
        // empty, so the unindexed semantics has no candidates and raises
        // nothing. The index must not change that.
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Pos(Atom::new("p", [Expr::App(Func::Succ, vec![v("X")])])),
            ],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        facts.insert("e", vec![Value::str("a")]);
        let mut out = Interp::new();
        let mut meter = Budget::SMALL.meter();
        let added = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        )
        .unwrap();
        assert_eq!(added, 0);
        // With p non-empty the error must surface (the full scan hits it).
        facts.insert("p", vec![i(1)]);
        let err = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        );
        assert!(matches!(err, Err(EvalError::Type(_))));
    }

    #[test]
    fn fact_budget_enforced() {
        let rule = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X")]))],
        );
        let plan = plan_body(&rule).unwrap();
        let mut facts = Interp::new();
        for n in 0..10 {
            facts.insert("e", vec![i(n)]);
        }
        let mut out = Interp::new();
        let mut meter = Budget::new(10, 3, 64).meter();
        let err = apply_rule(
            &rule,
            &plan,
            &FactSource::full(&facts),
            &|_, _| false,
            &mut meter,
            &mut out,
        );
        assert!(matches!(err, Err(EvalError::Budget(_))));
    }
}
