//! Stratification analysis and the stratified semantics.
//!
//! Stratified programs are the baseline class the paper starts from:
//! Theorem 4.3 (from the authors' PODS'92 work) identifies stratified
//! deduction with the positive IFP-algebra. "If the program is stratified,
//! then the answer can be obtained by successively computing the minimal
//! model of each stratum" (Section 4) — which is exactly what
//! [`stratified`] does.

use crate::ast::Program;
use crate::engine::Compiled;
use crate::error::EvalError;
use crate::fixpoint::{semi_naive_oracle, FixpointStats, NegOracle};
use crate::interp::Interp;
use algrec_value::budget::Meter;
use std::collections::{BTreeMap, BTreeSet};

/// The predicate dependency graph: edges from head predicates to body
/// predicates, marked positive/negative.
#[derive(Clone, Default, Debug)]
pub struct DepGraph {
    /// `pos[p]` = predicates that `p` depends on positively.
    pub pos: BTreeMap<String, BTreeSet<String>>,
    /// `neg[p]` = predicates that `p` depends on negatively.
    pub neg: BTreeMap<String, BTreeSet<String>>,
    /// All predicates mentioned.
    pub preds: BTreeSet<String>,
}

impl DepGraph {
    /// Build the dependency graph of a program.
    pub fn of(program: &Program) -> Self {
        let mut g = DepGraph::default();
        for rule in &program.rules {
            let head = rule.head.pred.clone();
            g.preds.insert(head.clone());
            for p in rule.positive_preds() {
                g.preds.insert(p.to_string());
                g.pos.entry(head.clone()).or_default().insert(p.to_string());
            }
            for p in rule.negative_preds() {
                g.preds.insert(p.to_string());
                g.neg.entry(head.clone()).or_default().insert(p.to_string());
            }
        }
        g
    }

    /// Predicates `p` depends on (positively or negatively).
    pub fn successors(&self, p: &str) -> impl Iterator<Item = &String> {
        self.pos
            .get(p)
            .into_iter()
            .flatten()
            .chain(self.neg.get(p).into_iter().flatten())
    }
}

/// A stratification: each IDB predicate assigned a stratum number such
/// that positive dependencies do not ascend and negative dependencies
/// strictly descend.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stratification {
    /// Stratum of each predicate (EDB predicates sit at stratum 0).
    pub stratum: BTreeMap<String, usize>,
    /// Number of strata.
    pub count: usize,
}

/// Compute a stratification, or report the negative cycle that prevents
/// one. Uses the classical iterative algorithm: lift strata over negative
/// edges until fixpoint; a predicate pushed past `|preds|` strata sits on
/// a cycle through negation.
pub fn stratify(program: &Program) -> Result<Stratification, EvalError> {
    let g = DepGraph::of(program);
    let n = g.preds.len().max(1);
    let mut stratum: BTreeMap<String, usize> =
        g.preds.iter().map(|p| (p.clone(), 0usize)).collect();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let head = &rule.head.pred;
            for p in rule.positive_preds() {
                let sp = stratum[p];
                if stratum[head] < sp {
                    stratum.insert(head.clone(), sp);
                    changed = true;
                }
            }
            for p in rule.negative_preds() {
                let sp = stratum[p] + 1;
                if stratum[head] < sp {
                    stratum.insert(head.clone(), sp);
                    changed = true;
                }
            }
            if stratum[head] > n {
                return Err(EvalError::NotStratified(format!(
                    "predicate `{head}` lies on a cycle through negation"
                )));
            }
        }
        if !changed {
            break;
        }
    }
    let count = stratum.values().copied().max().unwrap_or(0) + 1;
    Ok(Stratification { stratum, count })
}

/// Is the program stratified?
pub fn is_stratified(program: &Program) -> bool {
    stratify(program).is_ok()
}

/// Split a stratified program into per-stratum sub-programs, bottom-up.
/// Empty strata are dropped, so the result lists exactly the evaluation
/// steps of the stratified semantics; it is also the unit of incremental
/// re-evaluation in the serving layer (maintenance strategies are chosen
/// per stratum).
pub fn strata_programs(program: &Program) -> Result<Vec<Program>, EvalError> {
    let strat = stratify(program)?;
    let mut out = Vec::new();
    for level in 0..strat.count {
        let level_rules: Vec<_> = program
            .rules
            .iter()
            .filter(|r| strat.stratum[&r.head.pred] == level)
            .cloned()
            .collect();
        if !level_rules.is_empty() {
            out.push(Program::from_rules(level_rules));
        }
    }
    Ok(out)
}

/// Evaluate a stratified program: strata bottom-up, each stratum by its
/// minimal model with negation referring to the completed lower strata.
pub fn stratified(
    program: &Program,
    base: &Interp,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    // Fully-compilable programs run on the id-space machine end to end:
    // one shared value conversion and one materialization for the whole
    // stratification, instead of crossing the id↔value boundary at every
    // stratum. Falls through (`None`) for anything it cannot take —
    // including stratification and compile errors, so error ordering is
    // unchanged.
    if let Some(res) = crate::compiled::try_stratified(program, base, meter) {
        return res;
    }
    let mut total = base.clone();
    let mut stats = FixpointStats::default();
    for level_program in strata_programs(program)? {
        let compiled = Compiled::compile(&level_program)?;
        // Negation inside this stratum refers only to strictly lower
        // strata, which are complete in `total` by induction. `total`
        // is not mutated during the run, so it can be borrowed as the
        // complement oracle directly — no frozen clone needed.
        let (next, s) =
            semi_naive_oracle(&compiled, &total, &NegOracle::Complement(&total), meter)?;
        stats.rounds += s.rounds;
        stats.rule_applications += s.rule_applications;
        stats.derived += s.derived;
        total = next;
    }
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Rule};
    use algrec_value::Budget;
    use algrec_value::Value;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn unreachable_program() -> Program {
        // tc(X,Y) :- e(X,Y).  tc(X,Z) :- tc(X,Y), e(Y,Z).
        // unreach(X,Y) :- node(X), node(Y), not tc(X,Y).
        Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("e", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
                ],
            ),
            Rule::new(
                Atom::new("unreach", [v("X"), v("Y")]),
                [
                    Literal::Pos(Atom::new("node", [v("X")])),
                    Literal::Pos(Atom::new("node", [v("Y")])),
                    Literal::Neg(Atom::new("tc", [v("X"), v("Y")])),
                ],
            ),
        ])
    }

    #[test]
    fn stratifies_layered_negation() {
        let p = unreachable_program();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum["tc"], 0);
        assert_eq!(s.stratum["unreach"], 1);
        assert_eq!(s.count, 2);
        assert!(is_stratified(&p));
    }

    #[test]
    fn rejects_negative_cycle() {
        // win(X) :- move(X,Y), not win(Y).
        let p = Program::from_rules([Rule::new(
            Atom::new("win", [v("X")]),
            [
                Literal::Pos(Atom::new("move", [v("X"), v("Y")])),
                Literal::Neg(Atom::new("win", [v("Y")])),
            ],
        )]);
        assert!(matches!(stratify(&p), Err(EvalError::NotStratified(_))));
        assert!(!is_stratified(&p));
    }

    #[test]
    fn even_odd_is_stratified_without_mutual_negation() {
        // odd(Y) :- even(X), Y = succ(X) ... without negation: stratified.
        use crate::ast::{CmpOp, Func};
        let p = Program::from_rules([
            Rule::fact(Atom::new("even", [Expr::int(0)])),
            Rule::new(
                Atom::new("odd", [v("Y")]),
                [
                    Literal::Pos(Atom::new("even", [v("X")])),
                    Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(10)),
                    Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("even", [v("Y")]),
                [
                    Literal::Pos(Atom::new("odd", [v("X")])),
                    Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(10)),
                    Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                ],
            ),
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.count, 1);
        let mut meter = Budget::SMALL.meter();
        let (out, _) = stratified(&p, &Interp::new(), &mut meter).unwrap();
        assert!(out.holds("even", &[i(10)]));
        assert!(out.holds("odd", &[i(9)]));
        assert!(!out.holds("even", &[i(9)]));
    }

    #[test]
    fn evaluates_unreachable_pairs() {
        let p = unreachable_program();
        let mut base = Interp::new();
        base.insert("e", vec![i(1), i(2)]);
        base.insert("e", vec![i(2), i(3)]);
        for n in 1..=3 {
            base.insert("node", vec![i(n)]);
        }
        let mut meter = Budget::SMALL.meter();
        let (out, _) = stratified(&p, &base, &mut meter).unwrap();
        assert!(out.holds("tc", &[i(1), i(3)]));
        assert!(out.holds("unreach", &[i(3), i(1)]));
        assert!(out.holds("unreach", &[i(1), i(1)])); // no self-loop
        assert!(!out.holds("unreach", &[i(1), i(3)]));
        // 9 pairs, tc = {12,13,23} → 6 unreachable
        assert_eq!(out.count("unreach"), 6);
    }

    #[test]
    fn strata_programs_split_by_level() {
        let p = unreachable_program();
        let parts = strata_programs(&p).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].rules.len(), 2); // both tc rules
        assert!(parts[0].rules.iter().all(|r| r.head.pred == "tc"));
        assert_eq!(parts[1].rules.len(), 1);
        assert_eq!(parts[1].rules[0].head.pred, "unreach");
        assert!(strata_programs(&Program::new()).unwrap().is_empty());
    }

    #[test]
    fn dep_graph_structure() {
        let g = DepGraph::of(&unreachable_program());
        assert!(g.pos["tc"].contains("e"));
        assert!(g.neg["unreach"].contains("tc"));
        assert!(g.preds.contains("node"));
        // unreach depends on {node} positively and {tc} negatively.
        assert_eq!(g.successors("unreach").count(), 2);
    }

    #[test]
    fn three_strata() {
        // a :- e.  b :- not a.  c :- not b.
        let p = Program::from_rules([
            Rule::new(
                Atom::new("a", [v("X")]),
                [Literal::Pos(Atom::new("e", [v("X")]))],
            ),
            Rule::new(
                Atom::new("b", [v("X")]),
                [
                    Literal::Pos(Atom::new("e", [v("X")])),
                    Literal::Neg(Atom::new("a", [v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("c", [v("X")]),
                [
                    Literal::Pos(Atom::new("e", [v("X")])),
                    Literal::Neg(Atom::new("b", [v("X")])),
                ],
            ),
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!((s.stratum["a"], s.stratum["b"], s.stratum["c"]), (0, 1, 2));
        let mut base = Interp::new();
        base.insert("e", vec![i(1)]);
        let mut meter = Budget::SMALL.meter();
        let (out, _) = stratified(&p, &base, &mut meter).unwrap();
        assert!(out.holds("a", &[i(1)]));
        assert!(!out.holds("b", &[i(1)]));
        assert!(out.holds("c", &[i(1)]));
    }
}
