//! Safety: range formulas and the domain-independence transform.
//!
//! Definition 4.1 of the paper defines *range formulas*: conjunctions that
//! restrict every variable to values reachable from the database —
//! appearing in a relation, equated to a ground expression, or computed
//! from restricted variables by function application. A Horn clause
//! `φ → R(x̄)` is *safe* when `φ` is a range formula restricting `x̄`, and
//! a program is safe when all its clauses are.
//!
//! [`check_rule`] decides safety by computing the least fixpoint of the
//! "restricts" relation over the body's conjuncts — a direct reading of
//! the inductive definition:
//!
//! | Def 4.1 clause | here |
//! |---|---|
//! | basis a: `R(x̄)` restricts `x̄` | positive atom restricts its pattern variables |
//! | basis b: `x = exp`, `exp` ground | `Eq` with a ground side restricts the other side |
//! | 1: `φ₁ ∧ φ₂` | the fixpoint accumulates over all conjuncts |
//! | 2: `φ ∧ (e₁ = e₂)`, both restricted | a fully-restricted `Eq` adds nothing but is legal |
//! | 3: `φ ∧ ¬φ₂`, free vars restricted | negative literals must end up fully restricted |
//! | 4: `φ ∧ y = exp`, `exp` restricted | `Eq` with a restricted side restricts the other |
//!
//! [`make_safe`] implements Proposition 4.2: every domain-independent
//! query has an equivalent safe one, obtained by restricting each variable
//! with a generated domain predicate that enumerates the (window of the)
//! initial model reachable from the database and the program's constants.

use crate::ast::{Atom, CmpOp, Expr, Literal, Program, Rule};
use crate::error::EvalError;
use std::collections::BTreeSet;

/// Variables of `e` that occur *outside* any function application — the
/// positions where matching a stored value can bind them.
fn pattern_vars<'a>(e: &'a Expr, out: &mut BTreeSet<&'a str>) {
    match e {
        Expr::Var(v) => {
            out.insert(v);
        }
        Expr::Lit(_) => {}
        Expr::Tuple(items) => items.iter().for_each(|i| pattern_vars(i, out)),
        Expr::App(..) => {}
    }
}

/// Variables of `e` that occur *inside* a function application — these
/// must already be restricted for the expression to be computable.
fn guard_vars<'a>(e: &'a Expr, out: &mut BTreeSet<&'a str>) {
    match e {
        Expr::Var(_) | Expr::Lit(_) => {}
        Expr::Tuple(items) => items.iter().for_each(|i| guard_vars(i, out)),
        Expr::App(_, items) => items.iter().for_each(|i| {
            for v in i.vars() {
                out.insert(v);
            }
        }),
    }
}

/// The set of variables a rule body restricts (Definition 4.1), computed
/// as a least fixpoint.
pub fn restricted_vars(rule: &Rule) -> BTreeSet<&str> {
    let mut restricted: BTreeSet<&str> = BTreeSet::new();
    loop {
        let before = restricted.len();
        for lit in &rule.body {
            match lit {
                Literal::Pos(atom) => {
                    // basis a (generalized to expression arguments): an
                    // argument restricts its pattern variables once its
                    // guard variables are restricted.
                    for arg in &atom.args {
                        let mut guards = BTreeSet::new();
                        guard_vars(arg, &mut guards);
                        if guards.iter().all(|v| restricted.contains(v)) {
                            pattern_vars(arg, &mut restricted);
                        }
                    }
                }
                Literal::Cmp(CmpOp::Eq, l, r) => {
                    // basis b and construction 4: if one side is fully
                    // restricted (ground counts), it restricts the other
                    // side's pattern variables.
                    let l_fully = l.vars().iter().all(|v| restricted.contains(*v));
                    let r_fully = r.vars().iter().all(|v| restricted.contains(*v));
                    if l_fully {
                        let mut guards = BTreeSet::new();
                        guard_vars(r, &mut guards);
                        if guards.iter().all(|v| restricted.contains(v)) {
                            pattern_vars(r, &mut restricted);
                        }
                    }
                    if r_fully {
                        let mut guards = BTreeSet::new();
                        guard_vars(l, &mut guards);
                        if guards.iter().all(|v| restricted.contains(v)) {
                            pattern_vars(l, &mut restricted);
                        }
                    }
                }
                // constructions 2 and 3: tests restrict nothing.
                Literal::Cmp(..) | Literal::Neg(_) => {}
            }
        }
        if restricted.len() == before {
            return restricted;
        }
    }
}

/// Check one rule for safety. Returns the offending description on
/// failure.
pub fn check_rule(rule: &Rule) -> Result<(), EvalError> {
    let restricted = restricted_vars(rule);
    let mut unrestricted: Vec<&str> = Vec::new();
    for v in rule.vars() {
        if !restricted.contains(v) {
            unrestricted.push(v);
        }
    }
    if !unrestricted.is_empty() {
        return Err(EvalError::Unsafe(format!(
            "rule `{rule}`: variables not restricted by a range formula: {}",
            unrestricted.join(", ")
        )));
    }
    Ok(())
}

/// Check every rule of a program (Definition 4.1: "a deductive program P
/// is safe iff all its clauses are safe").
pub fn check_program(program: &Program) -> Result<(), EvalError> {
    program.rules.iter().try_for_each(check_rule)
}

/// Is the program safe?
pub fn is_safe(program: &Program) -> bool {
    check_program(program).is_ok()
}

/// The reserved name of the generated domain predicate.
pub const DOM_PRED: &str = "dom$";

/// Proposition 4.2: convert a domain-independent program into a safe one
/// by restricting every unrestricted variable with a domain predicate.
///
/// The domain predicate enumerates the elements "constructed from
/// constants, by applying functions" (the paper's proof sketch): every
/// component of every EDB fact, every constant of the program, and —
/// because our interpreted functions over the integers would make the
/// domain infinite — a budget-bounded closure is delegated to evaluation
/// time (the generated rules only *project from the EDB and program
/// constants*, which suffices for genuinely domain-independent queries;
/// for queries that need deeper function closure, widen the rules with
/// additional `dom$` clauses before evaluation).
pub fn make_safe(program: &Program, edb_arities: &[(&str, usize)]) -> Program {
    let mut out = Program::new();

    // dom$(Xi) :- R(X1, …, Xk)  for every EDB argument position.
    for (pred, arity) in edb_arities {
        for i in 0..*arity {
            let args: Vec<Expr> = (0..*arity).map(|j| Expr::var(format!("X{j}"))).collect();
            out.push(Rule::new(
                Atom::new(DOM_PRED, [Expr::var(format!("X{i}"))]),
                [Literal::Pos(Atom::new(*pred, args))],
            ));
        }
    }

    // dom$(c) for every constant in the program.
    let mut consts: BTreeSet<algrec_value::Value> = BTreeSet::new();
    fn walk_expr(e: &Expr, out: &mut BTreeSet<algrec_value::Value>) {
        match e {
            Expr::Lit(v) => {
                out.insert(v.clone());
            }
            Expr::Var(_) => {}
            Expr::Tuple(items) | Expr::App(_, items) => {
                items.iter().for_each(|i| walk_expr(i, out))
            }
        }
    }
    for rule in &program.rules {
        rule.head
            .args
            .iter()
            .for_each(|e| walk_expr(e, &mut consts));
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => {
                    a.args.iter().for_each(|e| walk_expr(e, &mut consts))
                }
                Literal::Cmp(_, l, r) => {
                    walk_expr(l, &mut consts);
                    walk_expr(r, &mut consts);
                }
            }
        }
    }
    for c in consts {
        out.push(Rule::fact(Atom::new(DOM_PRED, [Expr::Lit(c)])));
    }

    // Guard every rule: prepend dom$(V) for each variable the body does
    // not restrict (the proof of Prop 4.2 guards *all* variables; guarding
    // only the unrestricted ones is equivalent and produces smaller
    // bodies).
    for rule in &program.rules {
        let restricted = restricted_vars(rule);
        let needed: Vec<String> = rule
            .vars()
            .into_iter()
            .filter(|v| !restricted.contains(v))
            .map(str::to_string)
            .collect();
        let mut body: Vec<Literal> = needed
            .iter()
            .map(|v| Literal::Pos(Atom::new(DOM_PRED, [Expr::var(v.clone())])))
            .collect();
        body.extend(rule.body.iter().cloned());
        out.push(Rule::new(rule.head.clone(), body));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    #[test]
    fn positive_atom_restricts() {
        let r = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X"), v("Y")]))],
        );
        assert!(check_rule(&r).is_ok());
        assert_eq!(
            restricted_vars(&r).into_iter().collect::<Vec<_>>(),
            ["X", "Y"]
        );
    }

    #[test]
    fn ground_equation_restricts() {
        // q(X) :- X = 5.   (basis b)
        let r = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Cmp(CmpOp::Eq, v("X"), Expr::int(5))],
        );
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn function_of_restricted_restricts() {
        // q(Y) :- e(X), Y = succ(X).   (construction 4)
        use crate::ast::Func;
        let r = Rule::new(
            Atom::new("q", [v("Y")]),
            [
                Literal::Pos(Atom::new("e", [v("X")])),
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
            ],
        );
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn negation_does_not_restrict() {
        // q(X) :- not e(X).   (construction 3 requires X already restricted)
        let r = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Neg(Atom::new("e", [v("X")]))],
        );
        assert!(matches!(check_rule(&r), Err(EvalError::Unsafe(_))));
    }

    #[test]
    fn comparison_does_not_restrict() {
        let r = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(5))],
        );
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn app_argument_needs_restriction_first() {
        // q(X) :- e(succ(X)).  — X occurs only inside an application;
        // basis a does not restrict it.
        use crate::ast::Func;
        let r = Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new(
                "e",
                [Expr::App(Func::Succ, vec![v("X")])],
            ))],
        );
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn chained_restriction_reaches_fixpoint() {
        // q(Z) :- e(X), Y = succ(X), Z = succ(Y).
        use crate::ast::Func;
        let r = Rule::new(
            Atom::new("q", [v("Z")]),
            [
                Literal::Cmp(CmpOp::Eq, v("Z"), Expr::App(Func::Succ, vec![v("Y")])),
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                Literal::Pos(Atom::new("e", [v("X")])),
            ],
        );
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn tuple_patterns_restrict_components() {
        // q(A) :- e([A, B]).
        let r = Rule::new(
            Atom::new("q", [v("A")]),
            [Literal::Pos(Atom::new(
                "e",
                [Expr::Tuple(vec![v("A"), v("B")])],
            ))],
        );
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn program_check_reports_first_unsafe() {
        let p = Program::from_rules([
            Rule::new(
                Atom::new("ok", [v("X")]),
                [Literal::Pos(Atom::new("e", [v("X")]))],
            ),
            Rule::new(
                Atom::new("bad", [v("X")]),
                [Literal::Neg(Atom::new("e", [v("X")]))],
            ),
        ]);
        assert!(!is_safe(&p));
        let err = check_program(&p).unwrap_err();
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn make_safe_guards_unrestricted_vars() {
        use crate::engine::Compiled;
        use crate::fixpoint::semi_naive;
        use crate::interp::Interp;
        use algrec_value::{Budget, Value};

        // q(X) :- not e(X).  — d.i. only relative to a domain; Prop 4.2
        // makes it safe by guarding X with dom$.
        let p = Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Neg(Atom::new("e", [v("X")]))],
        )]);
        let safe = make_safe(&p, &[("e", 1), ("n", 1)]);
        assert!(is_safe(&safe));

        // Evaluate: domain = components of e and n.
        let mut base = Interp::new();
        base.insert("e", vec![Value::int(1)]);
        base.insert("n", vec![Value::int(1)]);
        base.insert("n", vec![Value::int(2)]);
        let compiled = Compiled::compile(&safe).unwrap();
        // Stratified-style oracle: e is extensional.
        let frozen = base.clone();
        let mut meter = Budget::SMALL.meter();
        let (out, _) =
            semi_naive(&compiled, &base, &|p, a| !frozen.holds(p, a), &mut meter).unwrap();
        assert!(!out.holds("q", &[Value::int(1)]));
        assert!(out.holds("q", &[Value::int(2)]));
    }

    #[test]
    fn make_safe_adds_program_constants() {
        let p = Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Cmp(CmpOp::Eq, v("Y"), Expr::int(9)),
                Literal::Neg(Atom::new("e", [v("X")])),
            ],
        )]);
        let safe = make_safe(&p, &[("e", 1)]);
        assert!(is_safe(&safe));
        // the constant 9 must be in the domain
        assert!(safe
            .rules
            .iter()
            .any(|r| r.head.pred == DOM_PRED && r.body.is_empty()));
    }
}
