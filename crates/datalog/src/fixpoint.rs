//! Least-fixpoint computation with a *fixed* negation oracle.
//!
//! This is the operator the paper calls "a derivation starting from a set
//! of true facts, where only facts from a fixed set are allowed to be used
//! negatively" (Section 2.2). Formally it is the Γ operator of the
//! alternating-fixpoint characterization: given an oracle deciding every
//! negative literal once and for all, the program becomes monotone and has
//! a least fixpoint.
//!
//! Two implementations are provided — textbook [`naive`] iteration and
//! [`semi_naive`] differential iteration — because experiment **E8**
//! measures the gap between them; every other module uses `semi_naive`.

use crate::engine::{apply_rule, Compiled, FactSource};
use crate::error::EvalError;
use crate::interp::Interp;
use algrec_value::budget::Meter;
use algrec_value::Value;
use std::collections::BTreeSet;

/// Statistics of one fixpoint run (used by the experiment harness).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct FixpointStats {
    /// Number of rounds until the fixpoint was reached.
    pub rounds: usize,
    /// Number of rule applications performed.
    pub rule_applications: usize,
    /// Facts derived (beyond the initial interpretation).
    pub derived: usize,
}

/// Naive evaluation: apply every rule against the full current
/// interpretation until nothing new is derived.
pub fn naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    let mut total = base.clone();
    let mut stats = FixpointStats::default();
    meter.phase_start("naive");
    loop {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            stats.rule_applications += 1;
            apply_rule(
                rule,
                plan,
                &FactSource::full(&total),
                neg,
                meter,
                &mut derived,
            )?;
        }
        let added = total.absorb(&derived);
        meter.record_delta(added);
        if added == 0 {
            break;
        }
        stats.derived += added;
    }
    meter.phase_end();
    Ok((total, stats))
}

/// Semi-naive evaluation: after the first round, a recursive rule is only
/// re-fired with at least one of its positive IDB literals constrained to
/// the facts new in the previous round.
pub fn semi_naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    let mut stats = FixpointStats::default();
    let idb: BTreeSet<&str> = compiled
        .rules
        .iter()
        .map(|r| r.head.pred.as_str())
        .collect();

    // Round 0: fire every rule once against the base.
    let mut total = base.clone();
    let mut delta = Interp::new();
    meter.phase_start("semi-naive");
    meter.tick_iteration()?;
    stats.rounds += 1;
    for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
        stats.rule_applications += 1;
        apply_rule(
            rule,
            plan,
            &FactSource::full(&total),
            neg,
            meter,
            &mut delta,
        )?;
    }
    // Keep only genuinely new facts in delta.
    let mut new_delta = Interp::new();
    for (p, args) in delta.iter() {
        if !total.holds(p, args) {
            new_delta.insert(p, args.clone());
        }
    }
    let mut delta = new_delta;
    stats.derived += total.absorb(&delta);
    meter.record_delta(delta.total());

    // Subsequent rounds: differential firing.
    while delta.total() > 0 {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            // Indices of positive body literals over IDB predicates.
            let rec_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, lit)| match lit {
                    crate::ast::Literal::Pos(a) if idb.contains(a.pred.as_str()) => Some(i),
                    _ => None,
                })
                .collect();
            // Non-recursive rules fired completely in round 0.
            for &pos in &rec_positions {
                stats.rule_applications += 1;
                apply_rule(
                    rule,
                    plan,
                    &FactSource {
                        full: &total,
                        delta: Some((pos, &delta)),
                    },
                    neg,
                    meter,
                    &mut derived,
                )?;
            }
        }
        let mut next_delta = Interp::new();
        for (p, args) in derived.iter() {
            if !total.holds(p, args) {
                next_delta.insert(p, args.clone());
            }
        }
        stats.derived += total.absorb(&next_delta);
        delta = next_delta;
        meter.record_delta(delta.total());
    }
    meter.phase_end();
    Ok((total, stats))
}

/// Semi-naive continuation: resume a completed fixpoint after new facts
/// arrive, without re-firing round 0.
///
/// `total` must be a fixpoint of the rules *before* the new facts, with
/// `seed` (the newly arrived facts, EDB or IDB) already absorbed into it.
/// Rules are fired only with one body literal at a time constrained to the
/// current delta — the first round's delta is `seed` — so the work done is
/// proportional to the consequences of the change, not to the size of the
/// materialized model. This is the stratum-scoped re-evaluation entry
/// point the serving layer's incremental maintenance builds on.
///
/// Returns the new fixpoint, the set of facts added beyond `total`, and
/// the round statistics.
pub fn semi_naive_from(
    compiled: &Compiled,
    total: &Interp,
    seed: &Interp,
    neg: &dyn Fn(&str, &[Value]) -> bool,
    meter: &mut Meter,
) -> Result<(Interp, Interp, FixpointStats), EvalError> {
    let mut stats = FixpointStats::default();
    let mut total = total.clone();
    let mut delta = seed.clone();
    let mut added_all = Interp::new();
    meter.phase_start("semi-naive-from");
    while delta.total() > 0 {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            // Fire once per positive body literal whose predicate has
            // facts in the current delta. Unlike the from-scratch
            // engine, the delta may contain EDB facts (asserted by the
            // caller), so eligibility is decided by delta content, not
            // by IDB membership.
            for (pos, lit) in rule.body.iter().enumerate() {
                let crate::ast::Literal::Pos(atom) = lit else {
                    continue;
                };
                if delta.count(&atom.pred) == 0 {
                    continue;
                }
                stats.rule_applications += 1;
                apply_rule(
                    rule,
                    plan,
                    &FactSource {
                        full: &total,
                        delta: Some((pos, &delta)),
                    },
                    neg,
                    meter,
                    &mut derived,
                )?;
            }
        }
        let mut next_delta = Interp::new();
        for (p, args) in derived.iter() {
            if !total.holds(p, args) {
                next_delta.insert(p, args.clone());
            }
        }
        stats.derived += total.absorb(&next_delta);
        added_all.absorb(&next_delta);
        delta = next_delta;
        meter.record_delta(delta.total());
    }
    meter.phase_end();
    Ok((total, added_all, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Program, Rule};
    use algrec_value::Budget;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn tc_program() -> Compiled {
        Compiled::compile(&Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("edge", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("edge", [v("Y"), v("Z")])),
                ],
            ),
        ]))
        .unwrap()
    }

    fn chain_edges(n: i64) -> Interp {
        let mut base = Interp::new();
        for k in 0..n {
            base.insert("edge", vec![i(k), i(k + 1)]);
        }
        base
    }

    #[test]
    fn naive_transitive_closure() {
        let compiled = tc_program();
        let mut meter = Budget::SMALL.meter();
        let (out, stats) = naive(&compiled, &chain_edges(5), &|_, _| false, &mut meter).unwrap();
        // chain of 6 nodes: 5+4+3+2+1 = 15 pairs
        assert_eq!(out.count("tc"), 15);
        assert!(out.holds("tc", &[i(0), i(5)]));
        assert!(stats.rounds >= 5);
    }

    #[test]
    fn semi_naive_agrees_with_naive() {
        let compiled = tc_program();
        let base = chain_edges(8);
        let mut m1 = Budget::SMALL.meter();
        let mut m2 = Budget::SMALL.meter();
        let (a, _) = naive(&compiled, &base, &|_, _| false, &mut m1).unwrap();
        let (b, sb) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        assert_eq!(a, b);
        assert!(sb.derived > 0);
    }

    #[test]
    fn semi_naive_does_less_work() {
        let compiled = tc_program();
        let base = chain_edges(20);
        let mut m1 = Budget::LARGE.meter();
        let mut m2 = Budget::LARGE.meter();
        let (a, _) = naive(&compiled, &base, &|_, _| false, &mut m1).unwrap();
        let (b, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        assert_eq!(a, b);
        // The meter's fact count only counts new facts, but naive re-derives:
        // compare iterations of the meters is equal; instead compare that
        // semi-naive visited strictly fewer (rule, fact) pairs indirectly via
        // wall-clock-free proxy: both computed the same result. The work gap
        // is measured by experiment E8; here we just pin the equality.
        assert_eq!(a.count("tc"), 20 * 21 / 2);
        let _ = b;
    }

    #[test]
    fn semi_naive_from_matches_full_reevaluation() {
        let compiled = tc_program();
        let base = chain_edges(10);
        let mut m = Budget::SMALL.meter();
        let (fixpoint, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m).unwrap();

        // Arrive: one new edge extending the chain.
        let mut total = fixpoint.clone();
        let mut seed = Interp::new();
        seed.insert("edge", vec![i(10), i(11)]);
        total.absorb(&seed);
        let mut m2 = Budget::SMALL.meter();
        let (incr, added, s_incr) =
            semi_naive_from(&compiled, &total, &seed, &|_, _| false, &mut m2).unwrap();

        // Equals the from-scratch fixpoint over the extended EDB.
        let mut base2 = chain_edges(10);
        base2.insert("edge", vec![i(10), i(11)]);
        let mut m3 = Budget::SMALL.meter();
        let (cold, s_cold) = semi_naive(&compiled, &base2, &|_, _| false, &mut m3).unwrap();
        assert_eq!(incr, cold);
        // Added = the 11 new tc pairs ending at node 11.
        assert_eq!(added.count("tc"), 11);
        // And it did strictly less derivation work than the cold run.
        assert!(s_incr.derived < s_cold.derived);
        assert!(m2.facts() < m3.facts());
    }

    #[test]
    fn semi_naive_from_empty_seed_is_noop() {
        let compiled = tc_program();
        let base = chain_edges(4);
        let mut m = Budget::SMALL.meter();
        let (fixpoint, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m).unwrap();
        let mut m2 = Budget::SMALL.meter();
        let (same, added, stats) =
            semi_naive_from(&compiled, &fixpoint, &Interp::new(), &|_, _| false, &mut m2).unwrap();
        assert_eq!(same, fixpoint);
        assert_eq!(added.total(), 0);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn negation_oracle_is_respected() {
        // q(X) :- node(X), not bad(X).
        let compiled = Compiled::compile(&Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("node", [v("X")])),
                Literal::Neg(Atom::new("bad", [v("X")])),
            ],
        )]))
        .unwrap();
        let mut base = Interp::new();
        base.insert("node", vec![i(1)]);
        base.insert("node", vec![i(2)]);
        let mut meter = Budget::SMALL.meter();
        let (out, _) = semi_naive(
            &compiled,
            &base,
            &|p, args| p == "bad" && args[0] != i(2),
            &mut meter,
        )
        .unwrap();
        assert!(out.holds("q", &[i(1)]));
        assert!(!out.holds("q", &[i(2)]));
    }

    #[test]
    fn budget_stops_runaway_generation() {
        // nat(succ(X)) :- nat(X).  — generates an infinite set; the budget
        // must stop it (paper, Section 3.1: fixed points may be infinite).
        use crate::ast::Func;
        let compiled = Compiled::compile(&Program::from_rules([
            Rule::fact(Atom::new("nat", [Expr::int(0)])),
            Rule::new(
                Atom::new("nat", [Expr::App(Func::Succ, vec![v("X")])]),
                [Literal::Pos(Atom::new("nat", [v("X")]))],
            ),
        ]))
        .unwrap();
        let mut meter = Budget::new(50, 1_000_000, 64).meter();
        let err = semi_naive(&compiled, &Interp::new(), &|_, _| false, &mut meter);
        assert!(matches!(err, Err(EvalError::Budget(_))));
    }

    #[test]
    fn bounded_generation_succeeds() {
        // nat(Y) :- nat(X), X < 10, Y = succ(X).
        use crate::ast::CmpOp;
        use crate::ast::Func;
        let compiled = Compiled::compile(&Program::from_rules([
            Rule::fact(Atom::new("nat", [Expr::int(0)])),
            Rule::new(
                Atom::new("nat", [v("Y")]),
                [
                    Literal::Pos(Atom::new("nat", [v("X")])),
                    Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(10)),
                    Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                ],
            ),
        ]))
        .unwrap();
        let mut meter = Budget::SMALL.meter();
        let (out, _) = semi_naive(&compiled, &Interp::new(), &|_, _| false, &mut meter).unwrap();
        assert_eq!(out.count("nat"), 11);
    }
}
