//! Least-fixpoint computation with a *fixed* negation oracle.
//!
//! This is the operator the paper calls "a derivation starting from a set
//! of true facts, where only facts from a fixed set are allowed to be used
//! negatively" (Section 2.2). Formally it is the Γ operator of the
//! alternating-fixpoint characterization: given an oracle deciding every
//! negative literal once and for all, the program becomes monotone and has
//! a least fixpoint.
//!
//! Two implementations are provided — textbook [`naive`] iteration and
//! [`semi_naive`] differential iteration — because experiment **E8**
//! measures the gap between them; every other module uses `semi_naive`.
//!
//! **Parallel rounds.** Rule instantiations within one round are
//! independent (every firing reads the previous `total`/`delta` and
//! writes only a candidate buffer; the round *barrier* publishes), so a
//! big-enough round fans out across the `algrec-sched` worker pool: the
//! delta is hash-partitioned across workers, each worker fires every
//! eligible (rule, position) against its partition into per-rule local
//! buffers, and the buffers are merged centrally in rule-major,
//! worker-minor order. The central merge — not the workers — counts new
//! facts against the budget meter, which keeps outputs *and* the
//! deterministic statistics (iterations, facts inserted, per-round
//! deltas) bit-identical to the sequential engine for every thread
//! count. Workers run under an unbounded fact budget but the caller's
//! real value-size limit, so a `ValueSize` budget error (which carries
//! only the limit) is the same error value no matter which worker hits
//! it. See DESIGN.md §14 for the full correctness argument.

use crate::engine::{apply_rule, Compiled, FactSource};
use crate::error::EvalError;
use crate::interp::Interp;
use algrec_value::budget::Meter;
use algrec_value::{Budget, EvalStats, Trace, Value};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Minimum round size (delta facts for differential rounds, base facts
/// for the full round) before firing fans out to the worker pool —
/// below this, thread orchestration costs more than the round. Shared
/// with the compiled executor so both paths fan out at the same point.
pub(crate) const PAR_MIN_FACTS: usize = 256;

/// Statistics of one fixpoint run (used by the experiment harness).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct FixpointStats {
    /// Number of rounds until the fixpoint was reached.
    pub rounds: usize,
    /// Number of rule applications performed.
    pub rule_applications: usize,
    /// Facts derived (beyond the initial interpretation).
    pub derived: usize,
}

/// How negative body literals are decided during a fixpoint run.
///
/// The closure-based entry points ([`naive`], [`semi_naive`],
/// [`semi_naive_from`]) wrap their argument in [`NegOracle::Fn`]; the
/// structured variants let callers say *what* the oracle is, which the
/// compiled executor exploits: a [`NegOracle::Complement`] lowers to an
/// interned id-space set (no per-consult value resolution), and callers
/// can pass a borrowed frozen interpretation instead of cloning one into
/// a closure.
pub enum NegOracle<'a> {
    /// Negation never holds (positive programs).
    False,
    /// `not p(x̄)` holds iff `p(x̄)` is absent from the frozen
    /// interpretation (stratified strata, well-founded alternation).
    Complement(&'a Interp),
    /// An arbitrary decision procedure.
    Fn(&'a (dyn Fn(&str, &[Value]) -> bool + Sync)),
}

impl NegOracle<'_> {
    /// Decide `not pred(args)`.
    pub fn test(&self, pred: &str, args: &[Value]) -> bool {
        match self {
            NegOracle::False => false,
            NegOracle::Complement(frozen) => !frozen.holds(pred, args),
            NegOracle::Fn(f) => f(pred, args),
        }
    }
}

/// Hash-partition an interpretation's facts into `n` disjoint parts.
/// Which part a fact lands in never affects the result — every worker
/// joins its part against the same shared `total`, and the parts are
/// merged back deterministically — so the hash only balances load.
fn partition_facts(facts: &Interp, n: usize) -> Vec<Interp> {
    let mut parts = vec![Interp::new(); n];
    for (p, args) in facts.iter() {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        p.hash(&mut h);
        args.hash(&mut h);
        parts[(h.finish() % n as u64) as usize].insert(p, args.clone());
    }
    parts
}

/// Partition a fact's owning shard by its *first column* — the cluster's
/// EDB partitioning function. All facts about one entity co-locate
/// regardless of predicate (zero-arity facts hash their predicate name),
/// so a shard worker's per-round work assignment is exactly the slice of
/// the delta it owns. Like [`partition_facts`], the choice of partition
/// never affects the result — only which worker derives which candidate.
pub fn shard_of_fact(pred: &str, args: &[Value], n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match args.first() {
        Some(first) => first.hash(&mut h),
        None => pred.hash(&mut h),
    }
    (h.finish() % n as u64) as usize
}

/// Partition an interpretation's facts into `n` shard-owned parts by
/// first column ([`shard_of_fact`]).
fn partition_first_column(facts: &Interp, n: usize) -> Vec<Interp> {
    let mut parts = vec![Interp::new(); n];
    for (p, args) in facts.iter() {
        parts[shard_of_fact(p, args, n)].insert(p, args.clone());
    }
    parts
}

/// One parallel worker's result: per-rule candidate buffers, plus the
/// worker's collected telemetry when the round is traced.
type WorkerOut = Result<(Vec<Interp>, Option<EvalStats>), EvalError>;

/// The meter a parallel worker runs under: unbounded iteration/fact
/// budgets (the central merge charges the real meter, keeping the
/// charge sequence bit-identical to the sequential engine) but the
/// caller's true value-size limit, so oversized constructed values fail
/// in the worker with the same deterministic error value —
/// `ValueSize` carries only the limit — regardless of which worker or
/// thread count hits them.
fn worker_budget(meter: &Meter) -> Budget {
    Budget::new(usize::MAX, usize::MAX, meter.budget().max_value_size)
}

/// Merge per-worker, per-rule candidate buffers into `derived` in
/// rule-major, worker-minor order, charging `meter` once per fact new
/// to `derived` — exactly the accounting the sequential loop performs
/// as `apply_rule` inserts — and folding worker index telemetry into
/// the trace spine first (in worker order).
fn merge_worker_buffers(
    results: Vec<WorkerOut>,
    rules: usize,
    meter: &mut Meter,
    derived: &mut Interp,
) -> Result<(), EvalError> {
    let mut buffers = Vec::with_capacity(results.len());
    for res in results {
        let (bufs, stats) = res?;
        if let Some(stats) = &stats {
            meter.absorb_worker(stats);
        }
        buffers.push(bufs);
    }
    for rule in 0..rules {
        for bufs in &buffers {
            for (p, args) in bufs[rule].iter() {
                if derived.insert(p, args.to_vec()) {
                    meter.add_facts(1)?;
                }
            }
        }
    }
    Ok(())
}

/// Fire the given `(rule index, positive-body position)` pairs
/// differentially against `delta`, accumulating candidates into
/// `derived`. Sequential for small rounds; fans the delta out across
/// the worker pool otherwise (see the module docs for the determinism
/// argument).
#[allow(clippy::too_many_arguments)]
fn fire_differential(
    compiled: &Compiled,
    total: &Interp,
    delta: &Interp,
    firings: &[(usize, usize)],
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
    derived: &mut Interp,
) -> Result<(), EvalError> {
    let threads = algrec_sched::threads();
    let shards = algrec_sched::shards();
    if (threads <= 1 && shards <= 1) || delta.total() < PAR_MIN_FACTS || firings.is_empty() {
        for &(rule, pos) in firings {
            apply_rule(
                &compiled.rules[rule],
                &compiled.plans[rule],
                &FactSource {
                    full: total,
                    delta: Some((pos, delta)),
                },
                neg,
                meter,
                derived,
            )?;
        }
        return Ok(());
    }
    // Sharded evaluation partitions by data ownership (first-column id,
    // one part per shard worker); otherwise by whole-fact hash, one part
    // per thread. Either way every worker joins its part against the
    // same shared total and the merge below is partition-minor
    // deterministic, so the two regimes are bit-identical.
    let parts = if shards > 1 {
        partition_first_column(delta, shards)
    } else {
        partition_facts(delta, threads)
    };
    let budget = worker_budget(meter);
    let traced = meter.is_traced();
    let results = algrec_sched::Pool::new(threads).run(parts.len(), |w| -> WorkerOut {
        let trace = if traced {
            Trace::collect()
        } else {
            Trace::Null
        };
        let mut wm = budget.meter_traced(trace.clone());
        let mut bufs = vec![Interp::new(); compiled.rules.len()];
        for &(rule, pos) in firings {
            // A position whose predicate has no facts in this part can
            // derive nothing from it.
            if let crate::ast::Literal::Pos(atom) = &compiled.rules[rule].body[pos] {
                if parts[w].count(&atom.pred) == 0 {
                    continue;
                }
            }
            apply_rule(
                &compiled.rules[rule],
                &compiled.plans[rule],
                &FactSource {
                    full: total,
                    delta: Some((pos, &parts[w])),
                },
                neg,
                &mut wm,
                &mut bufs[rule],
            )?;
        }
        Ok((bufs, trace.stats()))
    });
    merge_worker_buffers(results, compiled.rules.len(), meter, derived)
}

/// Fire every rule once against the full `total` (a semi-naive round 0),
/// accumulating candidates into `derived`. Parallel by *rule index* —
/// the full round has no delta to partition — when the base is big
/// enough to pay for the fan-out.
fn fire_full_round(
    compiled: &Compiled,
    total: &Interp,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
    derived: &mut Interp,
) -> Result<(), EvalError> {
    let threads = algrec_sched::threads();
    if threads <= 1 || compiled.rules.len() <= 1 || total.total() < PAR_MIN_FACTS {
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            apply_rule(rule, plan, &FactSource::full(total), neg, meter, derived)?;
        }
        return Ok(());
    }
    let budget = worker_budget(meter);
    let traced = meter.is_traced();
    let results = algrec_sched::Pool::new(threads).run(compiled.rules.len(), |r| -> WorkerOut {
        let trace = if traced {
            Trace::collect()
        } else {
            Trace::Null
        };
        let mut wm = budget.meter_traced(trace.clone());
        // One buffer per rule keeps the merge shape shared with the
        // differential path; job `r` only fills slot `r`.
        let mut bufs = vec![Interp::new(); compiled.rules.len()];
        apply_rule(
            &compiled.rules[r],
            &compiled.plans[r],
            &FactSource::full(total),
            neg,
            &mut wm,
            &mut bufs[r],
        )?;
        Ok((bufs, trace.stats()))
    });
    merge_worker_buffers(results, compiled.rules.len(), meter, derived)
}

/// Naive evaluation: apply every rule against the full current
/// interpretation until nothing new is derived.
pub fn naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    naive_oracle(compiled, base, &NegOracle::Fn(neg), meter)
}

/// [`naive`] with a structured negation oracle. Eligible programs run on
/// the compiled id-space executor (see [`crate::compiled`]); everything
/// else — and every traced run — takes the interpreted path below.
pub fn naive_oracle(
    compiled: &Compiled,
    base: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    if let Some(res) = crate::compiled::try_naive(compiled, base, neg, meter) {
        return res;
    }
    let negf = |p: &str, a: &[Value]| neg.test(p, a);
    let neg = &negf;
    let mut total = base.clone();
    let mut stats = FixpointStats::default();
    meter.phase_start("naive");
    loop {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            stats.rule_applications += 1;
            apply_rule(
                rule,
                plan,
                &FactSource::full(&total),
                neg,
                meter,
                &mut derived,
            )?;
        }
        let added = total.absorb(&derived);
        meter.record_delta(added);
        if added == 0 {
            break;
        }
        stats.derived += added;
    }
    meter.phase_end();
    Ok((total, stats))
}

/// Semi-naive evaluation: after the first round, a recursive rule is only
/// re-fired with at least one of its positive IDB literals constrained to
/// the facts new in the previous round.
pub fn semi_naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    semi_naive_oracle(compiled, base, &NegOracle::Fn(neg), meter)
}

/// [`semi_naive`] with a structured negation oracle; eligible programs
/// run compiled (see [`crate::compiled`]).
pub fn semi_naive_oracle(
    compiled: &Compiled,
    base: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    if let Some(res) = crate::compiled::try_semi_naive(compiled, base, neg, meter) {
        return res;
    }
    let negf = |p: &str, a: &[Value]| neg.test(p, a);
    let neg = &negf;
    let mut stats = FixpointStats::default();
    let idb: BTreeSet<&str> = compiled
        .rules
        .iter()
        .map(|r| r.head.pred.as_str())
        .collect();

    // Round 0: fire every rule once against the base.
    let mut total = base.clone();
    let mut delta = Interp::new();
    meter.phase_start("semi-naive");
    meter.tick_iteration()?;
    stats.rounds += 1;
    stats.rule_applications += compiled.rules.len();
    fire_full_round(compiled, &total, neg, meter, &mut delta)?;
    // Keep only genuinely new facts in delta.
    let mut new_delta = Interp::new();
    for (p, args) in delta.iter() {
        if !total.holds(p, args) {
            new_delta.insert(p, args.clone());
        }
    }
    let mut delta = new_delta;
    stats.derived += total.absorb(&delta);
    meter.record_delta(delta.total());

    // Subsequent rounds: differential firing.
    while delta.total() > 0 {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        // Fire each rule once per positive body literal over an IDB
        // predicate, constrained to the previous round's delta
        // (non-recursive rules fired completely in round 0).
        let mut firings: Vec<(usize, usize)> = Vec::new();
        for (r, rule) in compiled.rules.iter().enumerate() {
            for (pos, lit) in rule.body.iter().enumerate() {
                if let crate::ast::Literal::Pos(a) = lit {
                    if idb.contains(a.pred.as_str()) {
                        firings.push((r, pos));
                    }
                }
            }
        }
        stats.rule_applications += firings.len();
        fire_differential(compiled, &total, &delta, &firings, neg, meter, &mut derived)?;
        let mut next_delta = Interp::new();
        for (p, args) in derived.iter() {
            if !total.holds(p, args) {
                next_delta.insert(p, args.clone());
            }
        }
        stats.derived += total.absorb(&next_delta);
        delta = next_delta;
        meter.record_delta(delta.total());
    }
    meter.phase_end();
    Ok((total, stats))
}

/// Semi-naive continuation: resume a completed fixpoint after new facts
/// arrive, without re-firing round 0.
///
/// `total` must be a fixpoint of the rules *before* the new facts, with
/// `seed` (the newly arrived facts, EDB or IDB) already absorbed into it.
/// Rules are fired only with one body literal at a time constrained to the
/// current delta — the first round's delta is `seed` — so the work done is
/// proportional to the consequences of the change, not to the size of the
/// materialized model. This is the stratum-scoped re-evaluation entry
/// point the serving layer's incremental maintenance builds on.
///
/// Returns the new fixpoint, the set of facts added beyond `total`, and
/// the round statistics.
pub fn semi_naive_from(
    compiled: &Compiled,
    total: &Interp,
    seed: &Interp,
    neg: &(dyn Fn(&str, &[Value]) -> bool + Sync),
    meter: &mut Meter,
) -> Result<(Interp, Interp, FixpointStats), EvalError> {
    semi_naive_from_oracle(compiled, total, seed, &NegOracle::Fn(neg), meter)
}

/// [`semi_naive_from`] with a structured negation oracle; eligible
/// programs run compiled (see [`crate::compiled`]).
pub fn semi_naive_from_oracle(
    compiled: &Compiled,
    total: &Interp,
    seed: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Result<(Interp, Interp, FixpointStats), EvalError> {
    if let Some(res) = crate::compiled::try_semi_naive_from(compiled, total, seed, neg, meter) {
        return res;
    }
    let negf = |p: &str, a: &[Value]| neg.test(p, a);
    let neg = &negf;
    let mut stats = FixpointStats::default();
    let mut total = total.clone();
    let mut delta = seed.clone();
    let mut added_all = Interp::new();
    meter.phase_start("semi-naive-from");
    while delta.total() > 0 {
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Interp::new();
        // Fire once per positive body literal whose predicate has
        // facts in the current delta. Unlike the from-scratch
        // engine, the delta may contain EDB facts (asserted by the
        // caller), so eligibility is decided by delta content, not
        // by IDB membership — computed here, over the *full* delta, so
        // the rule-application count is partition-independent.
        let mut firings: Vec<(usize, usize)> = Vec::new();
        for (r, rule) in compiled.rules.iter().enumerate() {
            for (pos, lit) in rule.body.iter().enumerate() {
                if let crate::ast::Literal::Pos(atom) = lit {
                    if delta.count(&atom.pred) > 0 {
                        firings.push((r, pos));
                    }
                }
            }
        }
        stats.rule_applications += firings.len();
        fire_differential(compiled, &total, &delta, &firings, neg, meter, &mut derived)?;
        let mut next_delta = Interp::new();
        for (p, args) in derived.iter() {
            if !total.holds(p, args) {
                next_delta.insert(p, args.clone());
            }
        }
        stats.derived += total.absorb(&next_delta);
        added_all.absorb(&next_delta);
        delta = next_delta;
        meter.record_delta(delta.total());
    }
    meter.phase_end();
    Ok((total, added_all, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Program, Rule};
    use algrec_value::Budget;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn tc_program() -> Compiled {
        Compiled::compile(&Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("edge", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("edge", [v("Y"), v("Z")])),
                ],
            ),
        ]))
        .unwrap()
    }

    fn chain_edges(n: i64) -> Interp {
        let mut base = Interp::new();
        for k in 0..n {
            base.insert("edge", vec![i(k), i(k + 1)]);
        }
        base
    }

    #[test]
    fn naive_transitive_closure() {
        let compiled = tc_program();
        let mut meter = Budget::SMALL.meter();
        let (out, stats) = naive(&compiled, &chain_edges(5), &|_, _| false, &mut meter).unwrap();
        // chain of 6 nodes: 5+4+3+2+1 = 15 pairs
        assert_eq!(out.count("tc"), 15);
        assert!(out.holds("tc", &[i(0), i(5)]));
        assert!(stats.rounds >= 5);
    }

    #[test]
    fn semi_naive_agrees_with_naive() {
        let compiled = tc_program();
        let base = chain_edges(8);
        let mut m1 = Budget::SMALL.meter();
        let mut m2 = Budget::SMALL.meter();
        let (a, _) = naive(&compiled, &base, &|_, _| false, &mut m1).unwrap();
        let (b, sb) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        assert_eq!(a, b);
        assert!(sb.derived > 0);
    }

    #[test]
    fn semi_naive_does_less_work() {
        let compiled = tc_program();
        let base = chain_edges(20);
        let mut m1 = Budget::LARGE.meter();
        let mut m2 = Budget::LARGE.meter();
        let (a, _) = naive(&compiled, &base, &|_, _| false, &mut m1).unwrap();
        let (b, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        assert_eq!(a, b);
        // The meter's fact count only counts new facts, but naive re-derives:
        // compare iterations of the meters is equal; instead compare that
        // semi-naive visited strictly fewer (rule, fact) pairs indirectly via
        // wall-clock-free proxy: both computed the same result. The work gap
        // is measured by experiment E8; here we just pin the equality.
        assert_eq!(a.count("tc"), 20 * 21 / 2);
        let _ = b;
    }

    #[test]
    fn semi_naive_from_matches_full_reevaluation() {
        let compiled = tc_program();
        let base = chain_edges(10);
        let mut m = Budget::SMALL.meter();
        let (fixpoint, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m).unwrap();

        // Arrive: one new edge extending the chain.
        let mut total = fixpoint.clone();
        let mut seed = Interp::new();
        seed.insert("edge", vec![i(10), i(11)]);
        total.absorb(&seed);
        let mut m2 = Budget::SMALL.meter();
        let (incr, added, s_incr) =
            semi_naive_from(&compiled, &total, &seed, &|_, _| false, &mut m2).unwrap();

        // Equals the from-scratch fixpoint over the extended EDB.
        let mut base2 = chain_edges(10);
        base2.insert("edge", vec![i(10), i(11)]);
        let mut m3 = Budget::SMALL.meter();
        let (cold, s_cold) = semi_naive(&compiled, &base2, &|_, _| false, &mut m3).unwrap();
        assert_eq!(incr, cold);
        // Added = the 11 new tc pairs ending at node 11.
        assert_eq!(added.count("tc"), 11);
        // And it did strictly less derivation work than the cold run.
        assert!(s_incr.derived < s_cold.derived);
        assert!(m2.facts() < m3.facts());
    }

    #[test]
    fn semi_naive_from_empty_seed_is_noop() {
        let compiled = tc_program();
        let base = chain_edges(4);
        let mut m = Budget::SMALL.meter();
        let (fixpoint, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m).unwrap();
        let mut m2 = Budget::SMALL.meter();
        let (same, added, stats) =
            semi_naive_from(&compiled, &fixpoint, &Interp::new(), &|_, _| false, &mut m2).unwrap();
        assert_eq!(same, fixpoint);
        assert_eq!(added.total(), 0);
        assert_eq!(stats.rounds, 0);
    }

    /// A 3-out-regular graph on 40 nodes: its transitive closure has
    /// 1600 pairs and per-round deltas well above `PAR_MIN_FACTS`, so
    /// the differential rounds actually fan out once threads > 1.
    fn dense_edges() -> Interp {
        let mut base = Interp::new();
        for a in 0..40 {
            for b in [(a * 7 + 3) % 40, (a * 11 + 1) % 40, (a + 1) % 40] {
                base.insert("edge", vec![i(a), i(b)]);
            }
        }
        base
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_sequential() {
        let compiled = tc_program();
        let base = dense_edges();
        let run = |threads: usize| {
            algrec_sched::set_threads(threads);
            let trace = algrec_value::Trace::collect();
            let mut meter = Budget::LARGE.meter_traced(trace.clone());
            let out = semi_naive(&compiled, &base, &|_, _| false, &mut meter);
            let (interp, stats) = out.unwrap();
            (interp, stats, meter.facts(), trace.stats().unwrap())
        };
        let (seq, seq_stats, seq_facts, seq_ev) = run(1);
        assert_eq!(seq.count("tc"), 1600);
        for threads in [2, 4, 8] {
            let (par, par_stats, par_facts, par_ev) = run(threads);
            assert_eq!(par, seq, "output differs at {threads} threads");
            assert_eq!(par_stats, seq_stats, "fixpoint stats at {threads}");
            assert_eq!(par_facts, seq_facts, "meter facts at {threads}");
            // The deterministic slice of the telemetry must match too;
            // index traffic legitimately varies with partitioning.
            assert_eq!(par_ev.iterations, seq_ev.iterations);
            assert_eq!(par_ev.facts_inserted, seq_ev.facts_inserted);
            assert_eq!(par_ev.deltas, seq_ev.deltas);
        }
        algrec_sched::set_threads(1);
    }

    #[test]
    fn parallel_semi_naive_from_matches_sequential() {
        let compiled = tc_program();
        let base = dense_edges();
        let mut m = Budget::LARGE.meter();
        algrec_sched::set_threads(1);
        let (fixpoint, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m).unwrap();
        let mut seed = Interp::new();
        seed.insert("edge", vec![i(40), i(0)]);
        let mut total = fixpoint.clone();
        total.absorb(&seed);
        let run = |threads: usize| {
            algrec_sched::set_threads(threads);
            let mut meter = Budget::LARGE.meter();
            let out = semi_naive_from(&compiled, &total, &seed, &|_, _| false, &mut meter);
            let (interp, added, stats) = out.unwrap();
            (interp, added, stats, meter.facts())
        };
        let seq = run(1);
        for threads in [2, 4, 8] {
            let par = run(threads);
            assert_eq!(par, seq, "continuation differs at {threads} threads");
        }
        algrec_sched::set_threads(1);
    }

    #[test]
    fn negation_oracle_is_respected() {
        // q(X) :- node(X), not bad(X).
        let compiled = Compiled::compile(&Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("node", [v("X")])),
                Literal::Neg(Atom::new("bad", [v("X")])),
            ],
        )]))
        .unwrap();
        let mut base = Interp::new();
        base.insert("node", vec![i(1)]);
        base.insert("node", vec![i(2)]);
        let mut meter = Budget::SMALL.meter();
        let (out, _) = semi_naive(
            &compiled,
            &base,
            &|p, args| p == "bad" && args[0] != i(2),
            &mut meter,
        )
        .unwrap();
        assert!(out.holds("q", &[i(1)]));
        assert!(!out.holds("q", &[i(2)]));
    }

    #[test]
    fn budget_stops_runaway_generation() {
        // nat(succ(X)) :- nat(X).  — generates an infinite set; the budget
        // must stop it (paper, Section 3.1: fixed points may be infinite).
        use crate::ast::Func;
        let compiled = Compiled::compile(&Program::from_rules([
            Rule::fact(Atom::new("nat", [Expr::int(0)])),
            Rule::new(
                Atom::new("nat", [Expr::App(Func::Succ, vec![v("X")])]),
                [Literal::Pos(Atom::new("nat", [v("X")]))],
            ),
        ]))
        .unwrap();
        let mut meter = Budget::new(50, 1_000_000, 64).meter();
        let err = semi_naive(&compiled, &Interp::new(), &|_, _| false, &mut meter);
        assert!(matches!(err, Err(EvalError::Budget(_))));
    }

    #[test]
    fn bounded_generation_succeeds() {
        // nat(Y) :- nat(X), X < 10, Y = succ(X).
        use crate::ast::CmpOp;
        use crate::ast::Func;
        let compiled = Compiled::compile(&Program::from_rules([
            Rule::fact(Atom::new("nat", [Expr::int(0)])),
            Rule::new(
                Atom::new("nat", [v("Y")]),
                [
                    Literal::Pos(Atom::new("nat", [v("X")])),
                    Literal::Cmp(CmpOp::Lt, v("X"), Expr::int(10)),
                    Literal::Cmp(CmpOp::Eq, v("Y"), Expr::App(Func::Succ, vec![v("X")])),
                ],
            ),
        ]))
        .unwrap();
        let mut meter = Budget::SMALL.meter();
        let (out, _) = semi_naive(&compiled, &Interp::new(), &|_, _| false, &mut meter).unwrap();
        assert_eq!(out.count("nat"), 11);
    }
}
