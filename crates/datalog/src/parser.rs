//! A concrete syntax for deductive programs.
//!
//! The grammar is conventional Datalog-with-negation, extended with the
//! interpreted functions the paper allows on the domains:
//!
//! ```text
//! program  := (rule)*
//! rule     := atom "."  |  atom ":-" literal ("," literal)* "."
//! literal  := "not" atom | atom | expr cmp expr
//! cmp      := "=" | "!=" | "<" | "<=" | ">" | ">="
//! atom     := lident "(" expr ("," expr)* ")"
//! expr     := UIdent                 -- variable (uppercase / '_' start)
//!           | integer | "true" | "false"
//!           | "'" chars "'"          -- quoted string constant
//!           | lident                 -- bare string constant
//!           | fname "(" expr* ")"    -- succ/add/sub/mul/projK/first/second
//!           | "[" expr ("," expr)* "]"   -- tuple
//! comment  := "%" … end of line
//! ```
//!
//! Example (the paper's WIN/MOVE game, Section 3.2):
//!
//! ```
//! use algrec_datalog::parser::parse_program;
//! let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
//! assert_eq!(p.rules.len(), 1);
//! ```

use crate::ast::{Atom, CmpOp, Expr, Func, Literal, Program, Rule};
use algrec_value::Value;
use std::fmt;

/// A parse failure, with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    LIdent(String),
    UIdent(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    ColonDash,
    Cmp(CmpOp),
    Not,
    True,
    False,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'%' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b':' => {
                if self.src.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Tok::ColonDash
                } else {
                    return Err(self.err("expected `:-`"));
                }
            }
            b'=' => {
                self.pos += 1;
                Tok::Cmp(CmpOp::Eq)
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Cmp(CmpOp::Ne)
                } else {
                    return Err(self.err("expected `!=`"));
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Cmp(CmpOp::Le)
                } else {
                    self.pos += 1;
                    Tok::Cmp(CmpOp::Lt)
                }
            }
            b'>' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Cmp(CmpOp::Ge)
                } else {
                    self.pos += 1;
                    Tok::Cmp(CmpOp::Gt)
                }
            }
            b'\'' => {
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string literal"));
                }
                let text = std::str::from_utf8(&self.src[s..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?
                    .to_string();
                self.pos += 1;
                Tok::Str(text)
            }
            b'-' | b'0'..=b'9' => {
                let s = self.pos;
                self.pos += 1;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad integer `{text}`")))?;
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'$')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                match text {
                    "not" => Tok::Not,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ if c.is_ascii_uppercase() || c == b'_' => Tok::UIdent(text.to_string()),
                    _ => Tok::LIdent(text.to_string()),
                }
            }
            other => return Err(self.err(format!("unexpected character `{}`", other as char))),
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        while let Some(t) = lexer.next()? {
            toks.push(t);
        }
        Ok(Parser { toks, idx: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.idx).map_or(usize::MAX, |(o, _)| *o)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.idx += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn func_by_name(name: &str) -> Option<Func> {
        match name {
            "succ" => Some(Func::Succ),
            "add" => Some(Func::Add),
            "sub" => Some(Func::Sub),
            "mul" => Some(Func::Mul),
            "concat" => Some(Func::Concat),
            "first" => Some(Func::Proj(0)),
            "second" => Some(Func::Proj(1)),
            _ => name
                .strip_prefix("proj")
                .and_then(|k| k.parse::<usize>().ok())
                .map(Func::Proj),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::UIdent(v)) => Ok(Expr::Var(v)),
            Some(Tok::Int(n)) => Ok(Expr::Lit(Value::Int(n))),
            Some(Tok::True) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Tok::False) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::str(s))),
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if self.peek() == Some(&Tok::RBracket) {
                    self.idx += 1;
                    return Ok(Expr::Tuple(items));
                }
                loop {
                    items.push(self.parse_expr()?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break,
                        _ => return Err(self.err("expected `,` or `]` in tuple")),
                    }
                }
                Ok(Expr::Tuple(items))
            }
            Some(Tok::LIdent(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let func = Self::func_by_name(&name)
                        .ok_or_else(|| self.err(format!("unknown function `{name}`")))?;
                    self.idx += 1; // (
                    let mut args = Vec::new();
                    if self.peek() == Some(&Tok::RParen) {
                        self.idx += 1;
                    } else {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                _ => return Err(self.err("expected `,` or `)` in call")),
                            }
                        }
                    }
                    if args.len() != func.arity() {
                        return Err(self.err(format!(
                            "function `{name}` expects {} arguments, got {}",
                            func.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::App(func, args))
                } else {
                    // bare lowercase identifier: a string constant
                    Ok(Expr::Lit(Value::str(name)))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Some(Tok::LIdent(name)) => name,
            _ => return Err(self.err("expected a predicate name")),
        };
        self.expect(&Tok::LParen, "`(` after predicate name")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.idx += 1;
            return Ok(Atom::new(name, args));
        }
        loop {
            args.push(self.parse_expr()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err("expected `,` or `)` in atom")),
            }
        }
        Ok(Atom::new(name, args))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.peek() == Some(&Tok::Not) {
            self.idx += 1;
            return Ok(Literal::Neg(self.parse_atom()?));
        }
        // Could be an atom (lident followed by lparen and then a full
        // argument list ending before a cmp) or a comparison. Parse an
        // expression first; if the next token is a comparison operator it
        // was a comparison, otherwise re-parse as an atom.
        let save = self.idx;
        // Try atom when shape is lident(… ) not followed by cmp.
        if matches!(self.peek(), Some(Tok::LIdent(_))) {
            if let Ok(atom) = self.try_atom() {
                if !matches!(self.peek(), Some(Tok::Cmp(_))) {
                    return Ok(Literal::Pos(atom));
                }
                // It parsed as an atom but a comparison follows (e.g.
                // `first(X) = Y`): rewind and treat as expression.
                self.idx = save;
            } else {
                self.idx = save;
            }
        }
        let lhs = self.parse_expr()?;
        match self.bump() {
            Some(Tok::Cmp(op)) => {
                let rhs = self.parse_expr()?;
                Ok(Literal::Cmp(op, lhs, rhs))
            }
            _ => Err(self.err("expected a comparison operator")),
        }
    }

    fn try_atom(&mut self) -> Result<Atom, ParseError> {
        let save = self.idx;
        match self.parse_atom() {
            Ok(a) => Ok(a),
            Err(e) => {
                self.idx = save;
                Err(e)
            }
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.parse_atom()?;
        match self.bump() {
            Some(Tok::Dot) => Ok(Rule::new(head, [])),
            Some(Tok::ColonDash) => {
                let mut body = Vec::new();
                loop {
                    body.push(self.parse_literal()?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::Dot) => break,
                        _ => return Err(self.err("expected `,` or `.` after literal")),
                    }
                }
                Ok(Rule::new(head, body))
            }
            _ => Err(self.err("expected `.` or `:-` after rule head")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while self.peek().is_some() {
            program.push(self.parse_rule()?);
        }
        Ok(program)
    }
}

/// Parse a whole program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.parse_program()
}

/// Parse a single rule.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let rule = p.parse_rule()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(rule)
}

/// Parse a single expression (useful for constructing query arguments).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_program(
            "% transitive closure\n\
             edge(1, 2).\n\
             edge(2, 3).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- tc(X, Y), edge(Y, Z).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.rules[0].to_string(), "edge(1, 2).");
        assert_eq!(p.rules[3].to_string(), "tc(X, Z) :- tc(X, Y), edge(Y, Z).");
    }

    #[test]
    fn parses_negation_and_comparisons() {
        let p = parse_program(
            "win(X) :- move(X, Y), not win(Y).\n\
             small(X) :- n(X), X < 10, X != 5.\n",
        )
        .unwrap();
        assert!(p.has_negation());
        assert_eq!(p.rules[1].to_string(), "small(X) :- n(X), X < 10, X != 5.");
    }

    #[test]
    fn parses_functions_and_binders() {
        let r = parse_rule("next(Y) :- n(X), Y = succ(X).").unwrap();
        assert_eq!(r.to_string(), "next(Y) :- n(X), Y = succ(X).");
        let r2 = parse_rule("s(Y) :- p(X), Y = add(X, 2).").unwrap();
        assert!(r2.to_string().contains("add(X, 2)"));
        let r3 = parse_rule("f(Y) :- p(X), Y = first(X).").unwrap();
        assert!(r3.to_string().contains("proj0(X)"));
    }

    #[test]
    fn parses_tuples_and_strings() {
        let r = parse_rule("pair([X, Y]) :- e(X, Y), X != 'hello world'.").unwrap();
        assert_eq!(r.to_string(), "pair([X, Y]) :- e(X, Y), X != hello world.");
        let r2 = parse_rule("q(a) :- p(b).").unwrap();
        assert_eq!(r2.head.args[0], Expr::Lit(Value::str("a")));
    }

    #[test]
    fn parses_booleans_and_negative_ints() {
        let r = parse_rule("q(true) :- p(-3).").unwrap();
        assert_eq!(r.head.args[0], Expr::Lit(Value::Bool(true)));
        assert_eq!(r.body[0], Literal::Pos(Atom::new("p", [Expr::int(-3)])));
    }

    #[test]
    fn comparison_on_function_call_lhs() {
        // `first(X) = Y` must parse as a comparison, not an atom named first.
        let r = parse_rule("q(Y) :- p(X), first(X) = Y.").unwrap();
        assert!(matches!(&r.body[1], Literal::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn empty_tuple_and_zero_arity() {
        let r = parse_rule("unit([]) :- p(X).").unwrap();
        assert_eq!(r.head.args[0], Expr::Tuple(vec![]));
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_program("q(X) :- ").is_err());
        assert!(parse_program("q(X").is_err());
        assert!(parse_program("q(X) :- frobnicate(X) = 3.").is_err()); // unknown fn? no: atom then cmp → rewind → unknown function
        assert!(parse_program("1234abc").is_err());
        assert!(parse_program("q(X) :- X < .").is_err());
        let e = parse_program("q('unterminated").unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn round_trip_display_parse() {
        let src = "win(X) :- move(X, Y), not win(Y).";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn parse_expr_entry_point() {
        assert_eq!(
            parse_expr("succ(3)").unwrap(),
            Expr::App(Func::Succ, vec![Expr::int(3)])
        );
        assert!(parse_expr("succ(3) extra").is_err());
    }
}
