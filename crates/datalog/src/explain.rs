//! Human-readable query plans (`explain`).
//!
//! Renders, per rule, the join order and access paths the compiled
//! executor ([`crate::compiled`]) would choose against a given database:
//! scans, first-column index probes and antijoins, with the cost model
//! seeded from the database's cardinalities and (optionally) an observed
//! index hit-rate from collected [`EvalStats`]. Plan nodes are interned
//! in a hash-consing [`algrec_plan::PlanArena`], so access paths shared
//! between rules render once and are cross-referenced (`#N` tags) — the
//! common-subexpression sharing the plan IR exists for.
//!
//! Rules the compiled executor cannot take (function applications,
//! comparisons, tuple patterns) are annotated `(interpreted)` and shown
//! in the interpreted engine's greedy body order instead, so `explain`
//! always reflects the path that will actually run.

use crate::ast::{Expr, Literal, Program, Rule};
use crate::engine::plan_body;
use crate::error::EvalError;
use crate::interp::Interp;
use algrec_plan::{Catalog, FirstCol, JoinLit, PlanArena, PlanId};
use algrec_value::{Database, EvalStats};
use std::collections::{BTreeSet, HashSet};

/// Build a [`Catalog`] from the extensional database: per-relation row
/// counts and distinct-first-column counts, the statistics the cost
/// model runs on.
pub fn catalog_of(db: &Database) -> Catalog {
    let interp = Interp::from_database(db);
    let mut catalog = Catalog::new();
    let preds: Vec<String> = interp.preds().map(str::to_string).collect();
    for pred in &preds {
        let rows = interp.count(pred);
        let first: HashSet<&algrec_value::Value> =
            interp.facts(pred).filter_map(|f| f.first()).collect();
        catalog.set(pred, rows, first.len());
    }
    catalog
}

/// A literal abstracted for ordering, with display info retained.
struct ExpLit {
    join: JoinLit,
    positive: bool,
    pred: String,
    arity: usize,
    /// Display form of the first argument (probe key label).
    first_label: Option<String>,
}

fn slot_of(vars: &mut Vec<String>, name: &str) -> usize {
    match vars.iter().position(|v| v == name) {
        Some(i) => i,
        None => {
            vars.push(name.to_string());
            vars.len() - 1
        }
    }
}

/// Abstract a compilable rule body for the join orderer; `None` when any
/// argument is not a plain variable or constant (interpreted fallback).
fn explain_lits(rule: &Rule) -> Option<(Vec<ExpLit>, Vec<String>)> {
    let mut vars: Vec<String> = Vec::new();
    let mut lits = Vec::with_capacity(rule.body.len());
    for lit in &rule.body {
        let (atom, positive) = match lit {
            Literal::Pos(a) => (a, true),
            Literal::Neg(a) => (a, false),
            _ => return None,
        };
        let mut slots = Vec::with_capacity(atom.args.len());
        for arg in &atom.args {
            match arg {
                Expr::Var(name) => slots.push(Some(slot_of(&mut vars, name))),
                Expr::Lit(_) => slots.push(None),
                _ => return None,
            }
        }
        let first = match atom.args.first() {
            Some(Expr::Lit(_)) => FirstCol::Const,
            Some(Expr::Var(_)) => FirstCol::Var(slots[0].expect("var slot")),
            _ => FirstCol::None,
        };
        lits.push(ExpLit {
            join: JoinLit {
                pred: Some(atom.pred.clone()),
                produces: if positive {
                    slots.iter().flatten().copied().collect()
                } else {
                    Vec::new()
                },
                requires: if positive {
                    Vec::new()
                } else {
                    slots.iter().flatten().copied().collect()
                },
                first: if positive { first } else { FirstCol::None },
                forced_first: false,
            },
            positive,
            pred: atom.pred.clone(),
            arity: atom.args.len(),
            first_label: atom.args.first().map(|a| a.to_string()),
        });
    }
    // Head must be plain too, or the executor falls back.
    if !rule
        .head
        .args
        .iter()
        .all(|a| matches!(a, Expr::Var(_) | Expr::Lit(_)))
    {
        return None;
    }
    Some((lits, vars))
}

/// Intern the plan of one compilable rule, returning its root node.
fn plan_compiled_rule(
    rule: &Rule,
    lits: &[ExpLit],
    nvars: usize,
    catalog: &Catalog,
    idb: &BTreeSet<&str>,
    arena: &mut PlanArena,
) -> PlanId {
    let joins: Vec<JoinLit> = lits.iter().map(|l| l.join.clone()).collect();
    let order = catalog.order_join(&joins, nvars);
    let mut bound = vec![false; nvars];
    let mut children = Vec::with_capacity(order.len());
    for &i in &order {
        let lit = &lits[i];
        let sig = format!("{}/{}", lit.pred, lit.arity);
        let child = if !lit.positive {
            arena.leaf("antijoin", sig)
        } else {
            let probeable = match lit.join.first {
                FirstCol::Const => true,
                FirstCol::Var(v) => bound[v],
                FirstCol::None => false,
            };
            if probeable {
                let key = lit.first_label.as_deref().unwrap_or("?");
                arena.leaf("probe", format!("{sig} on {key}"))
            } else if idb.contains(lit.pred.as_str()) {
                arena.leaf("scan", format!("{sig} [idb]"))
            } else {
                arena.leaf(
                    "scan",
                    format!("{sig} ({:.0} rows)", catalog.card(&lit.pred)),
                )
            }
        };
        children.push(child);
        for &v in &lit.join.produces {
            bound[v] = true;
        }
    }
    arena.node("project", rule.head.to_string(), children)
}

/// Intern the fallback plan of a rule the compiled executor cannot take:
/// the interpreted engine's greedy body order, annotated `(interpreted)`.
fn plan_interpreted_rule(rule: &Rule, arena: &mut PlanArena) -> Result<PlanId, EvalError> {
    let plan = plan_body(rule)?;
    let mut children = Vec::with_capacity(plan.order.len());
    for &i in &plan.order {
        let lit = &rule.body[i];
        let op = match lit {
            Literal::Pos(_) => "scan",
            Literal::Neg(_) => "antijoin",
            Literal::Cmp(..) => "filter",
        };
        children.push(arena.leaf(op, lit.to_string()));
    }
    Ok(arena.node("project", format!("{} (interpreted)", rule.head), children))
}

/// Render the plan for every rule of `program` against `db`.
///
/// `stats` — when provided (e.g. from a previous traced run) — refines
/// the catalog's index hit-rate via [`Catalog::observe`]. Errors only
/// when a rule body cannot be put in any evaluable order, i.e. exactly
/// when evaluation itself would fail the safety check.
pub fn explain_program(
    program: &Program,
    db: &Database,
    stats: Option<&EvalStats>,
) -> Result<String, EvalError> {
    let mut catalog = catalog_of(db);
    if let Some(stats) = stats {
        catalog.observe(stats);
    }
    let idb = program.idb_preds();
    let mut arena = PlanArena::new();
    let mut roots = Vec::with_capacity(program.rules.len());
    for (r, rule) in program.rules.iter().enumerate() {
        // Safety first, exactly as evaluation would check it — an
        // unorderable body must fail `explain` too, compiled or not.
        plan_body(rule)?;
        let root = match explain_lits(rule) {
            Some((lits, vars)) => {
                plan_compiled_rule(rule, &lits, vars.len(), &catalog, &idb, &mut arena)
            }
            None => plan_interpreted_rule(rule, &mut arena)?,
        };
        roots.push((format!("rule {r}"), root));
    }
    Ok(arena.render(&roots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use algrec_value::{Relation, Value};

    fn edges_db() -> Database {
        let mut pairs = Vec::new();
        for k in 0..10i64 {
            pairs.push((Value::int(k), Value::int(k + 1)));
        }
        Database::new().with("edge", Relation::from_pairs(pairs))
    }

    #[test]
    fn tc_plan_probes_edge_and_shares_scans() {
        let program = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- tc(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let text = explain_program(&program, &edges_db(), None).unwrap();
        // The recursive rule scans tc (bigger estimated cost avoided via
        // probe on the bound join column of edge).
        assert!(text.contains("probe edge/2 on Y"), "{text}");
        assert!(text.contains("scan edge/2 (10 rows)"), "{text}");
        assert!(text.contains("project tc(X, Z)"), "{text}");
    }

    #[test]
    fn shared_access_paths_are_cross_referenced() {
        let program = parse_program(
            "a(X) :- edge(X, Y).\n\
             b(Y) :- edge(X, Y).",
        )
        .unwrap();
        let text = explain_program(&program, &edges_db(), None).unwrap();
        // Both rules scan edge identically: the second occurrence must be
        // rendered as a shared reference, not duplicated.
        assert!(text.contains("shared #"), "{text}");
    }

    #[test]
    fn non_compilable_rules_are_marked_interpreted() {
        let program = parse_program("nat(succ(X)) :- nat(X).").unwrap();
        let text = explain_program(&program, &Database::new(), None).unwrap();
        assert!(text.contains("(interpreted)"), "{text}");
    }

    #[test]
    fn unsafe_rules_error_like_evaluation() {
        let program = parse_program("p(X) :- not q(X).").unwrap();
        assert!(explain_program(&program, &Database::new(), None).is_err());
    }
}
