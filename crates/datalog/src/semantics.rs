//! A single entry point over every semantics the paper discusses.
//!
//! | variant | paper anchor |
//! |---|---|
//! | [`Semantics::Naive`] / [`Semantics::SemiNaive`] | minimal model of Horn programs (Section 2.1) |
//! | [`Semantics::Stratified`] | the Theorem 4.3 baseline class |
//! | [`Semantics::Inflationary`] | "was not derived so far" (Section 5, Prop 5.1) |
//! | [`Semantics::WellFounded`] | \[24\]; coincides with the Section 2.2 procedure |
//! | [`Semantics::Valid`] | the operational valid computation of Section 2.2 |
//! | [`Semantics::ValidExtended`] | the valid semantics of \[6\], reconstructed by refining the residue with stable completions |
//!
//! Stable models \[11\] are exposed separately ([`stable_models_of`]) since
//! they produce a *set* of two-valued models rather than one three-valued
//! model.

use crate::ast::Program;
use crate::engine::Compiled;
use crate::error::EvalError;
use crate::fixpoint::{naive, semi_naive};
use crate::inflationary::inflationary;
use crate::interp::{Interp, ThreeValued};
use crate::stable::{ground, stable_models, valid_extended};
use crate::stratify::stratified;
use crate::wellfounded::alternating_fixpoint;
use algrec_value::budget::Meter;
use algrec_value::{Budget, Database, Trace};

/// Which semantics to evaluate under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semantics {
    /// Naive least fixpoint. Positive programs only.
    Naive,
    /// Semi-naive least fixpoint. Positive programs only.
    SemiNaive,
    /// Stratum-by-stratum minimal models. Stratified programs only.
    Stratified,
    /// Inflationary fixpoint (negation = "not derived so far").
    Inflationary,
    /// Well-founded model via the alternating fixpoint.
    WellFounded,
    /// The valid computation exactly as described operationally in
    /// Section 2.2 of the paper. On normal programs this procedure
    /// computes the well-founded model; it is listed separately because it
    /// is *the paper's* semantics and the experiments refer to it by name.
    Valid,
    /// The valid semantics of \[6\] reconstructed: Section 2.2 procedure,
    /// then promote residual facts true in every stable completion. The
    /// payload caps how many undefined atoms the completion search may
    /// branch over (above the cap the refinement is skipped).
    ValidExtended(usize),
}

/// The result of an evaluation: a three-valued interpretation (exact for
/// the two-valued semantics) plus run metadata.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// The computed model.
    pub model: ThreeValued,
    /// Number of stable models of the residual program, when the
    /// semantics computed it.
    pub stable_count: Option<usize>,
    /// Outer fixpoint rounds (alternation rounds for the three-valued
    /// semantics, iteration rounds otherwise).
    pub rounds: usize,
}

/// Evaluate `program` over `db` under `semantics` within `budget`.
pub fn evaluate(
    program: &Program,
    db: &Database,
    semantics: Semantics,
    budget: Budget,
) -> Result<EvalOutcome, EvalError> {
    evaluate_traced(program, db, semantics, budget, Trace::Null)
}

/// [`evaluate`] with evaluation telemetry: phase boundaries, iteration
/// ticks, per-round delta sizes and index traffic flow to `trace` (see
/// [`algrec_value::stats`]). With [`Trace::Null`] this is exactly
/// [`evaluate`]. On success the final model size is reported as
/// `facts_materialized`; on a budget error the events collected so far
/// show consumption at the point of failure.
pub fn evaluate_traced(
    program: &Program,
    db: &Database,
    semantics: Semantics,
    budget: Budget,
    trace: Trace,
) -> Result<EvalOutcome, EvalError> {
    let compiled = Compiled::compile(program)?;
    let base = Interp::from_database(db);
    let mut meter = budget.meter_traced(trace);
    let outcome = evaluate_inner(program, &compiled, &base, semantics, &mut meter)?;
    meter.record_materialized(outcome.model.certain.total());
    Ok(outcome)
}

fn evaluate_inner(
    program: &Program,
    compiled: &Compiled,
    base: &Interp,
    semantics: Semantics,
    meter: &mut Meter,
) -> Result<EvalOutcome, EvalError> {
    match semantics {
        Semantics::Naive | Semantics::SemiNaive => {
            if program.has_negation() {
                return Err(EvalError::Unsafe(
                    "naive/semi-naive evaluation requires a negation-free program; \
                     use Stratified, Inflationary, WellFounded or Valid"
                        .into(),
                ));
            }
            let (out, stats) = if semantics == Semantics::Naive {
                naive(compiled, base, &|_, _| false, meter)?
            } else {
                semi_naive(compiled, base, &|_, _| false, meter)?
            };
            Ok(EvalOutcome {
                model: ThreeValued::exact(out),
                stable_count: None,
                rounds: stats.rounds,
            })
        }
        Semantics::Stratified => {
            let (out, stats) = stratified(program, base, meter)?;
            Ok(EvalOutcome {
                model: ThreeValued::exact(out),
                stable_count: None,
                rounds: stats.rounds,
            })
        }
        Semantics::Inflationary => {
            let (out, stats) = inflationary(compiled, base, meter)?;
            Ok(EvalOutcome {
                model: ThreeValued::exact(out),
                stable_count: None,
                rounds: stats.rounds,
            })
        }
        Semantics::WellFounded | Semantics::Valid => {
            let (tv, stats) = alternating_fixpoint(compiled, base, meter)?;
            Ok(EvalOutcome {
                model: tv,
                stable_count: None,
                rounds: stats.outer_rounds,
            })
        }
        Semantics::ValidExtended(cap) => {
            let out = valid_extended(compiled, base, cap, meter)?;
            Ok(EvalOutcome {
                model: out.refined,
                stable_count: out.stable_count,
                rounds: 0,
            })
        }
    }
}

/// Enumerate the stable models of `program` over `db`. Each model is
/// returned as a two-valued interpretation (IDB facts; the EDB is shared
/// and implicit). Fails with [`EvalError::TooManyUnknowns`] when the
/// well-founded residue exceeds `cap` atoms.
pub fn stable_models_of(
    program: &Program,
    db: &Database,
    cap: usize,
    budget: Budget,
) -> Result<Vec<Interp>, EvalError> {
    let compiled = Compiled::compile(program)?;
    let base = Interp::from_database(db);
    let mut meter = budget.meter();
    let (tv, _) = alternating_fixpoint(&compiled, &base, &mut meter)?;
    let gp = ground(&compiled, &base, &tv, &mut meter)?;
    let models = stable_models(&gp, cap)?;
    Ok(models
        .into_iter()
        .map(|m| {
            let mut interp = Interp::new();
            for (p, args) in m {
                interp.insert(&p, args);
            }
            interp
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use algrec_value::{Relation, Truth, Value};

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn win_db(edges: &[(i64, i64)]) -> Database {
        Database::new().with(
            "move",
            Relation::from_pairs(edges.iter().map(|(a, b)| (i(*a), i(*b)))),
        )
    }

    #[test]
    fn all_semantics_agree_on_positive_programs() {
        let p = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- tc(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let db = Database::new().with(
            "edge",
            Relation::from_pairs([(i(1), i(2)), (i(2), i(3)), (i(3), i(4))]),
        );
        let mut results = Vec::new();
        for sem in [
            Semantics::Naive,
            Semantics::SemiNaive,
            Semantics::Stratified,
            Semantics::Inflationary,
            Semantics::WellFounded,
            Semantics::Valid,
            Semantics::ValidExtended(16),
        ] {
            let out = evaluate(&p, &db, sem, Budget::SMALL).unwrap();
            assert!(out.model.is_exact(), "{sem:?} should be exact");
            results.push(out.model.certain);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0].count("tc"), 6);
    }

    #[test]
    fn naive_rejects_negation() {
        let p = parse_program("q(X) :- d(X), not p(X).").unwrap();
        let db = Database::new().with("d", Relation::from_values([i(1)]));
        assert!(matches!(
            evaluate(&p, &db, Semantics::Naive, Budget::SMALL),
            Err(EvalError::Unsafe(_))
        ));
    }

    #[test]
    fn valid_vs_inflationary_on_example4() {
        // The paper's Example 4: r(a). q(X) :- r(X), not q(X).
        let p = parse_program("r(a).\nq(X) :- r(X), not q(X).").unwrap();
        let db = Database::new();
        let a = Value::str("a");

        let infl = evaluate(&p, &db, Semantics::Inflationary, Budget::SMALL).unwrap();
        assert_eq!(infl.model.truth("q", std::slice::from_ref(&a)), Truth::True);

        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        assert_eq!(
            valid.model.truth("q", std::slice::from_ref(&a)),
            Truth::Unknown
        );
    }

    #[test]
    fn win_move_cyclic_vs_acyclic() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();

        let acyclic = evaluate(
            &p,
            &win_db(&[(1, 2), (2, 3)]),
            Semantics::Valid,
            Budget::SMALL,
        )
        .unwrap();
        assert!(acyclic.model.is_exact());
        assert_eq!(acyclic.model.truth("win", &[i(2)]), Truth::True);

        let cyclic = evaluate(&p, &win_db(&[(7, 7)]), Semantics::Valid, Budget::SMALL).unwrap();
        assert_eq!(cyclic.model.truth("win", &[i(7)]), Truth::Unknown);
    }

    #[test]
    fn stable_models_exposed() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let models = stable_models_of(&p, &win_db(&[(1, 2), (2, 1)]), 16, Budget::SMALL).unwrap();
        assert_eq!(models.len(), 2);
        assert!(models.iter().any(|m| m.holds("win", &[i(1)])));
        assert!(models.iter().any(|m| m.holds("win", &[i(2)])));
    }

    #[test]
    fn stratified_equals_valid_on_stratified_programs() {
        let p = parse_program(
            "tc(X, Y) :- e(X, Y).\n\
             tc(X, Z) :- tc(X, Y), e(Y, Z).\n\
             un(X, Y) :- n(X), n(Y), not tc(X, Y).",
        )
        .unwrap();
        let db = Database::new()
            .with("e", Relation::from_pairs([(i(1), i(2))]))
            .with("n", Relation::from_values([i(1), i(2)]));
        let strat = evaluate(&p, &db, Semantics::Stratified, Budget::SMALL).unwrap();
        let valid = evaluate(&p, &db, Semantics::Valid, Budget::SMALL).unwrap();
        assert!(valid.model.is_exact());
        assert_eq!(strat.model.certain, valid.model.certain);
    }
}
