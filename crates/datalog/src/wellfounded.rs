//! The alternating fixpoint: well-founded model / the paper's valid
//! computation.
//!
//! Section 2.2 describes the valid model computation operationally:
//!
//! > "At each step of the computation, we look at all the possible
//! > derivations starting from the current set T of true facts, where only
//! > facts not in T are allowed to be used negatively. The facts that are
//! > not derivable in any such computation are assumed to be certainly
//! > false, and are therefore added to F. The false facts in F and the true
//! > facts in T are then used to derive new true facts […] In this
//! > derivation, we use negatively only facts from F."
//!
//! This is precisely Van Gelder's alternating fixpoint: an *overestimate*
//! pass (negation succeeds unless the fact is certainly true) determines
//! the possible facts, everything outside is certainly false; an
//! *underestimate* pass (negation succeeds only on certainly-false facts)
//! grows the true set. [`alternating_fixpoint`] implements it; the
//! well-founded and valid entry points in `semantics` both dispatch here
//! (on normal programs the operational description and the well-founded
//! model coincide — the paper's own examples are all of this kind), and
//! the *extended* valid semantics refines the result in `stable`.

use crate::engine::Compiled;
use crate::error::EvalError;
use crate::fixpoint::{semi_naive_oracle, NegOracle};
use crate::interp::{Interp, ThreeValued};
use algrec_value::budget::Meter;

/// Statistics of an alternating-fixpoint run.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct AlternatingStats {
    /// Outer alternation rounds until the true set stabilized.
    pub outer_rounds: usize,
    /// Inner fixpoint rounds, summed.
    pub inner_rounds: usize,
    /// Facts in the final certain set.
    pub certain_facts: usize,
    /// Facts in the final possible set.
    pub possible_facts: usize,
}

/// Compute the alternating fixpoint of a compiled program over a base
/// (extensional) interpretation. Returns the three-valued result: facts
/// in `certain` are true, facts in `possible \ certain` are undefined,
/// everything else is false.
pub fn alternating_fixpoint(
    compiled: &Compiled,
    base: &Interp,
    meter: &mut Meter,
) -> Result<(ThreeValued, AlternatingStats), EvalError> {
    let mut stats = AlternatingStats::default();
    // T₀: just the database.
    let mut certain = base.clone();
    let mut possible;
    meter.phase_start("alternation");
    loop {
        stats.outer_rounds += 1;
        meter.tick_iteration()?;

        // Overestimate: every possible derivation from the current T,
        // "only facts not in T are allowed to be used negatively".
        // `certain` is only read during the run, so borrow it as the
        // complement oracle instead of cloning a frozen copy.
        meter.phase_start("possible");
        let poss = semi_naive_oracle(compiled, base, &NegOracle::Complement(&certain), meter);
        meter.phase_end();
        let (poss, s1) = poss?;
        stats.inner_rounds += s1.rounds;
        possible = poss;

        // Underestimate: facts outside `possible` are certainly false
        // ("added to F"); derive new true facts using only F negatively.
        meter.phase_start("certain");
        let next = semi_naive_oracle(compiled, base, &NegOracle::Complement(&possible), meter);
        meter.phase_end();
        let (next_certain, s2) = next?;
        stats.inner_rounds += s2.rounds;

        if next_certain == certain {
            break;
        }
        certain = next_certain;
    }
    meter.phase_end();
    stats.certain_facts = certain.total();
    stats.possible_facts = possible.total();
    debug_assert!(certain.is_subset(&possible));
    Ok((ThreeValued { certain, possible }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Program, Rule};
    use algrec_value::{Budget, Truth, Value};

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn win_program() -> Program {
        // win(X) :- move(X,Y), not win(Y).   (Example 3 / [24])
        Program::from_rules([Rule::new(
            Atom::new("win", [v("X")]),
            [
                Literal::Pos(Atom::new("move", [v("X"), v("Y")])),
                Literal::Neg(Atom::new("win", [v("Y")])),
            ],
        )])
    }

    fn run(p: &Program, base: Interp) -> ThreeValued {
        let compiled = Compiled::compile(p).unwrap();
        let mut meter = Budget::SMALL.meter();
        alternating_fixpoint(&compiled, &base, &mut meter)
            .unwrap()
            .0
    }

    #[test]
    fn acyclic_win_is_two_valued() {
        // 1 → 2 → 3 (3 has no moves: losing; 2 winning; 1 losing... wait:
        // 2 can move to 3 which has no moves, so win(2). 1 moves only to 2
        // which is winning, so win(1) is false.)
        let mut base = Interp::new();
        base.insert("move", vec![i(1), i(2)]);
        base.insert("move", vec![i(2), i(3)]);
        let tv = run(&win_program(), base);
        assert_eq!(tv.truth("win", &[i(2)]), Truth::True);
        assert_eq!(tv.truth("win", &[i(1)]), Truth::False);
        assert_eq!(tv.truth("win", &[i(3)]), Truth::False);
        assert!(tv.is_exact());
    }

    #[test]
    fn cyclic_win_is_undefined() {
        // Self-loop [a, a]: "the membership status of a in WIN will be
        // undefined" (Section 3.2).
        let mut base = Interp::new();
        base.insert("move", vec![i(7), i(7)]);
        let tv = run(&win_program(), base);
        assert_eq!(tv.truth("win", &[i(7)]), Truth::Unknown);
        assert!(!tv.is_exact());
        assert_eq!(tv.unknown_count(), 1);
    }

    #[test]
    fn two_cycle_with_escape() {
        // 1 ⇄ 2, 2 → 3. win(2) true (move to dead 3); win(1) false (its
        // only move is to winning 2); everything defined despite cycle.
        let mut base = Interp::new();
        base.insert("move", vec![i(1), i(2)]);
        base.insert("move", vec![i(2), i(1)]);
        base.insert("move", vec![i(2), i(3)]);
        let tv = run(&win_program(), base);
        assert_eq!(tv.truth("win", &[i(2)]), Truth::True);
        assert_eq!(tv.truth("win", &[i(1)]), Truth::False);
        assert!(tv.is_exact());
    }

    #[test]
    fn pure_two_cycle_undefined() {
        // 1 ⇄ 2 with no escape: both undefined (draw).
        let mut base = Interp::new();
        base.insert("move", vec![i(1), i(2)]);
        base.insert("move", vec![i(2), i(1)]);
        let tv = run(&win_program(), base);
        assert_eq!(tv.truth("win", &[i(1)]), Truth::Unknown);
        assert_eq!(tv.truth("win", &[i(2)]), Truth::Unknown);
    }

    #[test]
    fn example4_q_undefined_under_valid() {
        // r(a). q(X) :- r(X), not q(X).  — the paper, Example 4 (cont'd):
        // "neither Q(a) nor ¬Q(a) hold in the valid model".
        let p = Program::from_rules([
            Rule::fact(Atom::new("r", [Expr::lit("a")])),
            Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("r", [v("X")])),
                    Literal::Neg(Atom::new("q", [v("X")])),
                ],
            ),
        ]);
        let tv = run(&p, Interp::new());
        assert_eq!(tv.truth("q", &[Value::str("a")]), Truth::Unknown);
        assert_eq!(tv.truth("r", &[Value::str("a")]), Truth::True);
    }

    #[test]
    fn stratified_program_is_exact_and_matches_stratified_eval() {
        use crate::stratify::stratified;
        let p = Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("e", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
                ],
            ),
            Rule::new(
                Atom::new("iso", [v("X")]),
                [
                    Literal::Pos(Atom::new("node", [v("X")])),
                    Literal::Neg(Atom::new("tc", [v("X"), v("X")])),
                ],
            ),
        ]);
        let mut base = Interp::new();
        base.insert("e", vec![i(1), i(2)]);
        base.insert("e", vec![i(2), i(1)]);
        base.insert("e", vec![i(3), i(3)]);
        base.insert("node", vec![i(1)]);
        base.insert("node", vec![i(2)]);
        base.insert("node", vec![i(3)]);
        base.insert("node", vec![i(4)]);
        let tv = run(&p, base.clone());
        assert!(tv.is_exact());
        let mut meter = Budget::SMALL.meter();
        let (strat, _) = stratified(&p, &base, &mut meter).unwrap();
        assert_eq!(tv.certain, strat);
        assert_eq!(tv.truth("iso", &[i(4)]), Truth::True);
        assert_eq!(tv.truth("iso", &[i(1)]), Truth::False);
    }

    #[test]
    fn positive_program_one_outer_round_result() {
        let p = Program::from_rules([Rule::new(
            Atom::new("q", [v("X")]),
            [Literal::Pos(Atom::new("e", [v("X")]))],
        )]);
        let compiled = Compiled::compile(&p).unwrap();
        let mut base = Interp::new();
        base.insert("e", vec![i(1)]);
        let mut meter = Budget::SMALL.meter();
        let (tv, stats) = alternating_fixpoint(&compiled, &base, &mut meter).unwrap();
        assert!(tv.is_exact());
        assert!(stats.outer_rounds <= 2);
        assert_eq!(stats.certain_facts, tv.certain.total());
    }
}
