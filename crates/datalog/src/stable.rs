//! Stable models and the extended valid semantics.
//!
//! The paper situates the valid semantics \[6\] among the declarative
//! semantics for negation, alongside the well-founded \[24\] and stable
//! model \[11\] semantics, and notes (Section 7) that its results "can be
//! easily adjusted to capture other semantics for negation". This module
//! provides:
//!
//! * **Grounding** relative to an alternating-fixpoint result: every rule
//!   instance that could fire in *some* model sandwiched between the
//!   certain and possible sets (every stable model is — the well-founded
//!   model approximates all stable models).
//! * **Stable model enumeration** via the Gelfond–Lifschitz reduct,
//!   searching over the undefined atoms only. The search space is the
//!   residue the alternating fixpoint could not decide, so stratified and
//!   acyclic programs are checked in a single candidate.
//! * The **extended valid semantics**: the alternating fixpoint refined by
//!   promoting facts that hold in *every* stable completion — the "true in
//!   all possible scenarios" strengthening that distinguishes the valid
//!   semantics of \[6\] from the plain well-founded model (e.g. deriving `r`
//!   from `p ← ¬q, q ← ¬p, r ← p, r ← q`).

use crate::engine::{enumerate_bindings, eval_expr, Compiled, FactSource};
use crate::error::EvalError;
use crate::interp::{Fact, Interp, ThreeValued};
use crate::wellfounded::alternating_fixpoint;
use algrec_value::budget::Meter;
use std::collections::BTreeSet;

/// A ground rule after EDB simplification: the head fires if all `pos`
/// (IDB) facts hold and no `neg` (IDB) fact holds.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct GroundRule {
    /// Head fact.
    pub head: Fact,
    /// Positive IDB conditions.
    pub pos: Vec<Fact>,
    /// Negative IDB conditions.
    pub neg: Vec<Fact>,
}

/// A grounded program plus the three-valued scaffold it was built from.
#[derive(Clone, Debug)]
pub struct GroundProgram {
    /// Simplified ground rules.
    pub rules: Vec<GroundRule>,
    /// Certain IDB facts (subset of every stable model).
    pub certain: BTreeSet<Fact>,
    /// Undefined IDB facts (the stable-model search space).
    pub unknown: Vec<Fact>,
}

/// Ground a compiled program against an alternating-fixpoint result.
///
/// Soundness: any stable model `M` of the program satisfies
/// `certain ⊆ M ⊆ possible`, so enumerating rule bodies against `possible`
/// with negation allowed on anything not certainly true produces every
/// instance that can fire in any such `M`.
pub fn ground(
    compiled: &Compiled,
    base: &Interp,
    tv: &ThreeValued,
    meter: &mut Meter,
) -> Result<GroundProgram, EvalError> {
    let idb: BTreeSet<&str> = compiled
        .rules
        .iter()
        .map(|r| r.head.pred.as_str())
        .collect();
    let mut rules = BTreeSet::new();
    meter.phase_start("ground");

    for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
        let certain = &tv.certain;
        let possible = &tv.possible;
        enumerate_bindings(
            rule,
            plan,
            &FactSource::full(possible),
            &|p, args| !certain.holds(p, args),
            meter,
            &mut |bindings, meter| {
                let head_args = rule
                    .head
                    .args
                    .iter()
                    .map(|e| eval_expr(e, bindings))
                    .collect::<Result<Vec<_>, _>>()?;
                meter.add_facts(1)?;
                let head: Fact = (rule.head.pred.clone(), head_args);

                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for lit in &rule.body {
                    match lit {
                        crate::ast::Literal::Pos(a) if idb.contains(a.pred.as_str()) => {
                            let args = a
                                .args
                                .iter()
                                .map(|e| eval_expr(e, bindings))
                                .collect::<Result<Vec<_>, _>>()?;
                            // A certainly-true condition is derivable in
                            // the reduct of every candidate (certain facts
                            // derive through negations on certainly-false
                            // facts only), so it can be dropped.
                            if !tv.certain.holds(&a.pred, &args) {
                                pos.push((a.pred.clone(), args));
                            }
                        }
                        crate::ast::Literal::Neg(a) if idb.contains(a.pred.as_str()) => {
                            let args = a
                                .args
                                .iter()
                                .map(|e| eval_expr(e, bindings))
                                .collect::<Result<Vec<_>, _>>()?;
                            let f: Fact = (a.pred.clone(), args);
                            if tv.certain.holds(&f.0, &f.1) {
                                // ¬f is false in every candidate model:
                                // the instance never fires.
                                return Ok(());
                            }
                            if tv.possible.holds(&f.0, &f.1) {
                                neg.push(f);
                            }
                            // else: certainly false — condition satisfied,
                            // drop it.
                        }
                        // EDB literals and comparisons were decided during
                        // enumeration (their truth does not vary with M).
                        _ => {}
                    }
                }
                rules.insert(GroundRule { head, pos, neg });
                Ok(())
            },
        )?;
    }

    let certain: BTreeSet<Fact> = tv
        .certain
        .iter()
        .filter(|(p, _)| idb.contains(*p))
        .map(|(p, args)| (p.to_string(), args.clone()))
        .collect();
    let unknown: Vec<Fact> = tv
        .unknown_facts()
        .into_iter()
        .filter(|(p, _)| idb.contains(p.as_str()))
        .collect();
    let _ = base;
    meter.phase_end();
    Ok(GroundProgram {
        rules: rules.into_iter().collect(),
        certain,
        unknown,
    })
}

/// Least model of the Gelfond–Lifschitz reduct of `rules` with respect to
/// candidate `m`.
fn reduct_lfp(rules: &[GroundRule], m: &BTreeSet<Fact>) -> BTreeSet<Fact> {
    let applicable: Vec<&GroundRule> = rules
        .iter()
        .filter(|r| r.neg.iter().all(|f| !m.contains(f)))
        .collect();
    let mut derived: BTreeSet<Fact> = BTreeSet::new();
    loop {
        let mut changed = false;
        for r in &applicable {
            if !derived.contains(&r.head) && r.pos.iter().all(|f| derived.contains(f)) {
                derived.insert(r.head.clone());
                changed = true;
            }
        }
        if !changed {
            return derived;
        }
    }
}

/// Is `m` a stable model of the ground program?
pub fn is_stable(gp: &GroundProgram, m: &BTreeSet<Fact>) -> bool {
    reduct_lfp(&gp.rules, m) == *m
}

/// Enumerate all stable models of a ground program by branching over the
/// undefined atoms. Fails with [`EvalError::TooManyUnknowns`] if more than
/// `cap` atoms are undefined.
pub fn stable_models(gp: &GroundProgram, cap: usize) -> Result<Vec<BTreeSet<Fact>>, EvalError> {
    if gp.unknown.len() > cap {
        return Err(EvalError::TooManyUnknowns {
            found: gp.unknown.len(),
            cap,
        });
    }
    let mut models = Vec::new();
    let n = gp.unknown.len();
    // Every stable model contains the certain facts and differs only on
    // the unknowns.
    for mask in 0u64..(1u64 << n) {
        let mut m: BTreeSet<Fact> = gp.certain.clone();
        for (i, f) in gp.unknown.iter().enumerate() {
            if mask & (1 << i) != 0 {
                m.insert(f.clone());
            }
        }
        if is_stable(gp, &m) {
            models.push(m);
        }
    }
    Ok(models)
}

/// Result of the extended valid semantics.
#[derive(Clone, Debug)]
pub struct ValidOutcome {
    /// The plain alternating-fixpoint (well-founded) result.
    pub wfs: ThreeValued,
    /// The refinement: certain facts additionally include facts true in
    /// every stable completion; possible facts exclude facts true in none.
    pub refined: ThreeValued,
    /// Number of stable models of the residual program (`None` if the
    /// search was skipped because the residue exceeded the cap).
    pub stable_count: Option<usize>,
}

/// The extended valid semantics: alternating fixpoint, then refine the
/// undefined facts by stable completions. If the residue is larger than
/// `cap` undefined atoms, the refinement is skipped and the plain
/// alternating-fixpoint result is returned (with `stable_count = None`).
pub fn valid_extended(
    compiled: &Compiled,
    base: &Interp,
    cap: usize,
    meter: &mut Meter,
) -> Result<ValidOutcome, EvalError> {
    let (wfs, _) = alternating_fixpoint(compiled, base, meter)?;
    if wfs.is_exact() {
        return Ok(ValidOutcome {
            refined: wfs.clone(),
            wfs,
            stable_count: Some(1),
        });
    }
    let gp = ground(compiled, base, &wfs, meter)?;
    meter.phase_start("stable-search");
    let models = stable_models(&gp, cap);
    meter.phase_end();
    let models = match models {
        Ok(m) => m,
        Err(EvalError::TooManyUnknowns { .. }) => {
            return Ok(ValidOutcome {
                refined: wfs.clone(),
                wfs,
                stable_count: None,
            });
        }
        Err(e) => return Err(e),
    };
    if models.is_empty() {
        // No stable completion: the well-founded residue stands.
        return Ok(ValidOutcome {
            refined: wfs.clone(),
            wfs,
            stable_count: Some(0),
        });
    }
    // Promote facts in every stable model; demote facts in none.
    let mut refined = wfs.clone();
    for (p, args) in wfs.unknown_facts() {
        let f: Fact = (p.clone(), args.clone());
        let in_all = models.iter().all(|m| m.contains(&f));
        let in_none = models.iter().all(|m| !m.contains(&f));
        if in_all {
            refined.certain.insert(&p, args);
        } else if in_none {
            // remove from possible
            let remaining: Vec<Vec<algrec_value::Value>> = refined
                .possible
                .facts(&p)
                .filter(|a| a.as_slice() != args.as_slice())
                .cloned()
                .collect();
            refined.possible.clear_pred(&p);
            for a in remaining {
                refined.possible.insert(&p, a);
            }
        }
    }
    debug_assert!(refined.invariant_holds());
    Ok(ValidOutcome {
        wfs,
        refined,
        stable_count: Some(models.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Program, Rule};
    use algrec_value::{Budget, Truth, Value};

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    fn compile(p: &Program) -> Compiled {
        Compiled::compile(p).unwrap()
    }

    /// p ← ¬q, q ← ¬p: two stable models {p}, {q}.
    fn choice_program() -> Program {
        Program::from_rules([
            Rule::fact(Atom::new("d", [Expr::lit("a")])),
            Rule::new(
                Atom::new("p", [v("X")]),
                [
                    Literal::Pos(Atom::new("d", [v("X")])),
                    Literal::Neg(Atom::new("q", [v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("d", [v("X")])),
                    Literal::Neg(Atom::new("p", [v("X")])),
                ],
            ),
        ])
    }

    #[test]
    fn choice_has_two_stable_models() {
        let p = choice_program();
        let c = compile(&p);
        let mut meter = Budget::SMALL.meter();
        let (wfs, _) = alternating_fixpoint(&c, &Interp::new(), &mut meter).unwrap();
        assert_eq!(wfs.unknown_count(), 2);
        let gp = ground(&c, &Interp::new(), &wfs, &mut meter).unwrap();
        let models = stable_models(&gp, 16).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            // d(a) plus exactly one of p(a), q(a)
            assert_eq!(m.len(), 2);
            assert!(m.contains(&("d".to_string(), vec![s("a")])));
        }
    }

    #[test]
    fn valid_extended_promotes_scenario_invariants() {
        // p ← ¬q, q ← ¬p, r ← p, r ← q: r holds in every stable model,
        // so the (extended) valid semantics derives it although the
        // well-founded model leaves it undefined.
        let mut prog = choice_program();
        prog.push(Rule::new(
            Atom::new("r", [v("X")]),
            [Literal::Pos(Atom::new("p", [v("X")]))],
        ));
        prog.push(Rule::new(
            Atom::new("r", [v("X")]),
            [Literal::Pos(Atom::new("q", [v("X")]))],
        ));
        let c = compile(&prog);
        let mut meter = Budget::SMALL.meter();
        let out = valid_extended(&c, &Interp::new(), 16, &mut meter).unwrap();
        assert_eq!(out.stable_count, Some(2));
        assert_eq!(out.wfs.truth("r", &[s("a")]), Truth::Unknown);
        assert_eq!(out.refined.truth("r", &[s("a")]), Truth::True);
        assert_eq!(out.refined.truth("p", &[s("a")]), Truth::Unknown);
    }

    #[test]
    fn no_stable_model_detected() {
        // w ← ¬w: undefined under WFS, no stable model.
        let prog = Program::from_rules([
            Rule::fact(Atom::new("d", [Expr::lit("a")])),
            Rule::new(
                Atom::new("w", [v("X")]),
                [
                    Literal::Pos(Atom::new("d", [v("X")])),
                    Literal::Neg(Atom::new("w", [v("X")])),
                ],
            ),
        ]);
        let c = compile(&prog);
        let mut meter = Budget::SMALL.meter();
        let out = valid_extended(&c, &Interp::new(), 16, &mut meter).unwrap();
        assert_eq!(out.stable_count, Some(0));
        assert_eq!(out.refined.truth("w", &[s("a")]), Truth::Unknown);
    }

    #[test]
    fn stratified_program_single_stable_model() {
        let prog = Program::from_rules([
            Rule::fact(Atom::new("e", [Expr::int(1)])),
            Rule::new(
                Atom::new("a", [v("X")]),
                [Literal::Pos(Atom::new("e", [v("X")]))],
            ),
            Rule::new(
                Atom::new("b", [v("X")]),
                [
                    Literal::Pos(Atom::new("e", [v("X")])),
                    Literal::Neg(Atom::new("a", [v("X")])),
                ],
            ),
        ]);
        let c = compile(&prog);
        let mut meter = Budget::SMALL.meter();
        let out = valid_extended(&c, &Interp::new(), 16, &mut meter).unwrap();
        assert_eq!(out.stable_count, Some(1));
        assert!(out.refined.is_exact());
        assert_eq!(out.refined.truth("a", &[Value::int(1)]), Truth::True);
        assert_eq!(out.refined.truth("b", &[Value::int(1)]), Truth::False);
    }

    #[test]
    fn win_cycle_stable_models() {
        // 1 ⇄ 2: stable models are {win(1)} and {win(2)}.
        let prog = Program::from_rules([Rule::new(
            Atom::new("win", [v("X")]),
            [
                Literal::Pos(Atom::new("move", [v("X"), v("Y")])),
                Literal::Neg(Atom::new("win", [v("Y")])),
            ],
        )]);
        let c = compile(&prog);
        let mut base = Interp::new();
        base.insert("move", vec![Value::int(1), Value::int(2)]);
        base.insert("move", vec![Value::int(2), Value::int(1)]);
        let mut meter = Budget::SMALL.meter();
        let (wfs, _) = alternating_fixpoint(&c, &base, &mut meter).unwrap();
        let gp = ground(&c, &base, &wfs, &mut meter).unwrap();
        let models = stable_models(&gp, 16).unwrap();
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn self_loop_win_has_no_stable_model() {
        // move(a,a): win(a) ← ¬win(a) after grounding — no stable model.
        let prog = Program::from_rules([Rule::new(
            Atom::new("win", [v("X")]),
            [
                Literal::Pos(Atom::new("move", [v("X"), v("Y")])),
                Literal::Neg(Atom::new("win", [v("Y")])),
            ],
        )]);
        let c = compile(&prog);
        let mut base = Interp::new();
        base.insert("move", vec![s("a"), s("a")]);
        let mut meter = Budget::SMALL.meter();
        let out = valid_extended(&c, &base, 16, &mut meter).unwrap();
        assert_eq!(out.stable_count, Some(0));
    }

    #[test]
    fn cap_respected() {
        // Chain of choices: 10 unknown atoms with cap 3 → skipped search.
        let mut rules = vec![];
        for k in 0..5 {
            rules.push(Rule::fact(Atom::new("d", [Expr::int(k)])));
        }
        rules.push(Rule::new(
            Atom::new("p", [v("X")]),
            [
                Literal::Pos(Atom::new("d", [v("X")])),
                Literal::Neg(Atom::new("q", [v("X")])),
            ],
        ));
        rules.push(Rule::new(
            Atom::new("q", [v("X")]),
            [
                Literal::Pos(Atom::new("d", [v("X")])),
                Literal::Neg(Atom::new("p", [v("X")])),
            ],
        ));
        let prog = Program::from_rules(rules);
        let c = compile(&prog);
        let mut meter = Budget::SMALL.meter();
        let out = valid_extended(&c, &Interp::new(), 3, &mut meter).unwrap();
        assert_eq!(out.stable_count, None);
        assert_eq!(out.refined, out.wfs);
    }

    #[test]
    fn ground_rule_simplification() {
        // b(X) :- e(X), not a(X): with a(1) certainly false, the ground
        // rule for b(1) should have no conditions left.
        let prog = Program::from_rules([
            Rule::fact(Atom::new("e", [Expr::int(1)])),
            Rule::new(
                Atom::new("a", [v("X")]),
                [
                    Literal::Pos(Atom::new("e", [v("X")])),
                    Literal::Pos(Atom::new("never", [v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("b", [v("X")]),
                [
                    Literal::Pos(Atom::new("e", [v("X")])),
                    Literal::Neg(Atom::new("a", [v("X")])),
                ],
            ),
        ]);
        let c = compile(&prog);
        let mut meter = Budget::SMALL.meter();
        let (wfs, _) = alternating_fixpoint(&c, &Interp::new(), &mut meter).unwrap();
        let gp = ground(&c, &Interp::new(), &wfs, &mut meter).unwrap();
        let b_rule = gp
            .rules
            .iter()
            .find(|r| r.head.0 == "b")
            .expect("ground rule for b");
        assert!(b_rule.pos.is_empty());
        assert!(b_rule.neg.is_empty());
    }
}
