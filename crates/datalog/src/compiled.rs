//! Slot-compiled, id-space fixpoint execution — the engine behind the
//! plan IR (`algrec-plan`).
//!
//! The interpreted engine ([`crate::engine`]) walks slot expressions and
//! clones [`Value`]s on every match. This module instead *compiles* each
//! eligible rule to a flat sequence of column operations over interned
//! value ids ([`Vid`]): facts become rows in flat [`Chunk`] arenas (one
//! contiguous `Vec<Vid>` per relation — no per-row allocation), each
//! relation carries an open-addressing dedup set of row indices and a
//! first-column hash index (probe), and a rule body becomes
//! `Bind`/`Check`/`Const` column ops in a cost-chosen join order
//! ([`algrec_plan::Catalog::order_join`]). The hot loop therefore does
//! no string hashing, no `Value` clones, no heap traffic per candidate
//! and no per-match budget checks.
//!
//! **Eligibility.** A program is compilable when every head and body
//! argument is a variable or a constant and every body literal is a
//! positive or negative atom (no comparisons, equalities or function
//! applications — those construct fresh values, which the id-space
//! executor deliberately cannot do). The entry points additionally
//! require the plan toggle ([`algrec_plan::enabled`]) and an *untraced*
//! meter: traced runs keep the interpreted path so every telemetry
//! stream (index builds/probes, per-phase counters) stays byte-identical
//! to previous releases. Conversion also falls back if any converted
//! value exceeds the budget's value-size limit — with variable/constant
//! heads the executor only ever recombines existing values, so once the
//! inputs fit, no per-match size check is needed.
//!
//! **Exact parity.** For eligible programs the compiled fixpoints
//! reproduce the interpreted engines *bit for bit*: same model, same
//! [`FixpointStats`], same meter protocol (one `tick_iteration` per
//! round, one `add_facts` per fact new to the round's candidate buffer,
//! one `record_delta` per round) and hence the same budget errors. The
//! differential rounds keep the parallel discipline of
//! [`crate::fixpoint`]: hash-partitioned delta, per-worker per-rule
//! candidate buffers, deterministic rule-major/worker-minor merge that
//! alone charges the real meter. All charged quantities are sizes of
//! sets, so they are independent of enumeration order and thread count.

use crate::ast::{Expr, Literal, Rule};
use crate::engine::Compiled;
use crate::error::EvalError;
use crate::fixpoint::{FixpointStats, NegOracle, PAR_MIN_FACTS};
use crate::interp::Interp;
use algrec_value::budget::Meter;
use algrec_value::{Value, Vid};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// FxHash-style multiply-rotate hasher: `Vid`s are small dense integers,
/// so a fast non-cryptographic mix beats SipHash by a wide margin on the
/// row-dedup and index paths.
#[derive(Default, Clone)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn push(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(u64::from(b));
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.push(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.push(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.push(n as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;
type FxMap<K, V> = HashMap<K, V, FxBuild>;

#[inline]
fn hash_row(row: &[Vid]) -> u64 {
    let mut h = FxHasher::default();
    for v in row {
        h.write_u32(v.index());
    }
    h.finish()
}

/// Flat row arena: every row of one relation (or one buffer) lives in a
/// single `Vec<Vid>`, delimited by an offsets table. Appending a row is
/// a `memcpy` into the tail — no per-row allocation, no per-row free on
/// teardown — and scans walk contiguous memory. Rows keep insertion
/// order, which the deterministic merge relies on.
#[derive(Clone)]
struct Chunk {
    data: Vec<Vid>,
    /// `offsets[i]..offsets[i+1]` delimits row `i`; starts as `[0]`.
    offsets: Vec<u32>,
}

impl Default for Chunk {
    fn default() -> Self {
        Chunk {
            data: Vec::new(),
            offsets: vec![0],
        }
    }
}

impl Chunk {
    #[inline]
    fn push(&mut self, row: &[Vid]) {
        self.data.extend_from_slice(row);
        self.offsets.push(self.data.len() as u32);
    }

    #[inline]
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    #[inline]
    fn row(&self, i: usize) -> &[Vid] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = &[Vid]> {
        (0..self.len()).map(move |i| self.row(i))
    }
}

/// Deduplicating arena table: a [`Chunk`] row store plus an
/// open-addressing hash set of row indices (power-of-two slots,
/// `u32::MAX` marks empty). Membership and insertion share one probe
/// pass — the table grows *before* probing, so the empty slot the probe
/// finds is valid for insertion.
#[derive(Default, Clone)]
struct Table {
    chunk: Chunk,
    slots: Box<[u32]>,
}

impl Table {
    const EMPTY: u32 = u32::MAX;

    /// Insert `row`, returning `true` iff it was new.
    fn insert(&mut self, row: &[Vid]) -> bool {
        if (self.chunk.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash_row(row) as usize) & mask;
        loop {
            match self.slots[i] {
                Self::EMPTY => break,
                idx => {
                    if self.chunk.row(idx as usize) == row {
                        return false;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        self.slots[i] = self.chunk.len() as u32;
        self.chunk.push(row);
        true
    }

    #[inline]
    fn contains(&self, row: &[Vid]) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash_row(row) as usize) & mask;
        loop {
            match self.slots[i] {
                Self::EMPTY => return false,
                idx => {
                    if self.chunk.row(idx as usize) == row {
                        return true;
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let mut slots = vec![Self::EMPTY; cap].into_boxed_slice();
        let mask = cap - 1;
        for idx in 0..self.chunk.len() as u32 {
            let mut i = (hash_row(self.chunk.row(idx as usize)) as usize) & mask;
            while slots[i] != Self::EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = idx;
        }
        self.slots = slots;
    }

    #[inline]
    fn len(&self) -> usize {
        self.chunk.len()
    }
}

/// One relation in id space: dedup/scan table plus first-column index.
#[derive(Default, Clone)]
struct Rel {
    table: Table,
    first: FxMap<Vid, Vec<u32>>,
}

impl Rel {
    /// Insert `row`, maintaining the first-column index; `true` iff new.
    fn insert(&mut self, row: &[Vid]) -> bool {
        if !self.table.insert(row) {
            return false;
        }
        if let Some(&k) = row.first() {
            self.first
                .entry(k)
                .or_default()
                .push((self.table.len() - 1) as u32);
        }
        true
    }
}

/// A database in id space, indexed by predicate id.
#[derive(Clone)]
struct IdDb {
    rels: Vec<Rel>,
}

impl IdDb {
    fn new(npreds: usize) -> Self {
        IdDb {
            rels: vec![Rel::default(); npreds],
        }
    }
}

/// A per-round delta: one plain [`Chunk`] per predicate id. Delta
/// literals are forced first in the join order and therefore always
/// *scanned*, never probed, and [`Machine::split_new`] only ever emits
/// rows new to the total — so neither the dedup slots nor the
/// first-column index of [`Rel`] would ever be consulted.
type DeltaDb = Vec<Chunk>;

fn delta_total(delta: &DeltaDb) -> usize {
    delta.iter().map(Chunk::len).sum()
}

/// Predicate-name interning local to one compiled program.
#[derive(Default)]
struct PredTable {
    names: Vec<String>,
    ids: HashMap<String, usize>,
}

impl PredTable {
    fn id(&mut self, name: &str) -> usize {
        if let Some(&i) = self.ids.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), i);
        i
    }

    fn get(&self, name: &str) -> Option<usize> {
        self.ids.get(name).copied()
    }
}

/// A head argument or fully-bound literal argument.
#[derive(Clone, Copy, Debug)]
enum CArg {
    Var(usize),
    Const(Vid),
}

#[inline]
fn arg_vid(a: CArg, frame: &[Vid]) -> Vid {
    match a {
        CArg::Var(s) => frame[s],
        CArg::Const(v) => v,
    }
}

/// One column of a positive literal, with the bind-vs-check decision
/// made at compile time from the chosen join order.
#[derive(Clone, Copy, Debug)]
enum CCol {
    Bind(usize),
    Check(usize),
    Const(Vid),
}

/// A positive literal compiled against a fixed join order.
#[derive(Clone, Debug)]
struct CPos {
    pred: usize,
    cols: Box<[CCol]>,
    /// First-column probe key, when computable at arrival.
    probe: Option<CArg>,
    /// Semi-naive: read this literal from the delta instead of the total.
    from_delta: bool,
}

/// One execution step of a compiled rule body.
#[derive(Clone, Debug)]
enum COp {
    Pos(CPos),
    Neg { pred: usize, args: Box<[CArg]> },
}

/// A rule body compiled for one delta position (or for full firing).
#[derive(Clone, Debug)]
struct CVariant {
    /// Predicate of the delta literal (for empty-partition skips).
    pred: usize,
    ops: Box<[COp]>,
}

/// A fully compiled rule.
#[derive(Clone, Debug)]
struct CRule {
    head_pred: usize,
    head: Box<[CArg]>,
    nvars: usize,
    /// Ops for full (round-0 / naive) firing.
    full: Box<[COp]>,
    /// One variant per positive body literal, in body order.
    variants: Vec<CVariant>,
}

/// Source form of a body literal after slot/pred resolution.
enum SrcLit {
    Pos { pred: usize, args: Vec<CArg> },
    Neg { pred: usize, args: Vec<CArg> },
}

/// Negation oracle, lowered to id space where possible.
enum NegDb<'a> {
    /// Negation never satisfied (positive programs).
    False,
    /// Inflationary reading: `¬p(x)` iff `p(x)` is not in the current
    /// total (which is frozen within a round — candidates are buffered).
    Total,
    /// Complement of a frozen interpretation, interned per negated
    /// predicate id (`None` = predicate absent, so `¬` always holds).
    Sets(Vec<Option<Table>>),
    /// Arbitrary callback; arguments are resolved back to [`Value`]s.
    Fn(&'a (dyn Fn(&str, &[Value]) -> bool + Sync)),
}

#[inline]
fn neg_holds(neg: &NegDb<'_>, total: &IdDb, pred: usize, row: &[Vid], names: &[String]) -> bool {
    match neg {
        NegDb::False => false,
        NegDb::Total => !total.rels[pred].table.contains(row),
        NegDb::Sets(sets) => match &sets[pred] {
            Some(set) => !set.contains(row),
            None => true,
        },
        NegDb::Fn(f) => {
            let args: Vec<Value> = row.iter().map(|v| v.resolve().clone()).collect();
            f(&names[pred], &args)
        }
    }
}

/// Per-round candidate buffer, keyed by predicate id: arena tables, so
/// a candidate costs at most a tail append (and usually just a probe —
/// in the fixpoint's inner loop most candidates are re-derivations).
/// Insertion charges nothing itself; callers charge the meter on `true`
/// returns, matching the interpreted engine's per-new-candidate
/// accounting.
struct Derived {
    tables: Vec<Table>,
}

impl Derived {
    fn new(npreds: usize) -> Self {
        Derived {
            tables: (0..npreds).map(|_| Table::default()).collect(),
        }
    }

    #[inline]
    fn insert(&mut self, pred: usize, row: &[Vid]) -> bool {
        self.tables[pred].insert(row)
    }
}

#[inline]
fn match_cols(cols: &[CCol], row: &[Vid], frame: &mut [Vid]) -> bool {
    if row.len() != cols.len() {
        return false;
    }
    for (c, &v) in cols.iter().zip(row.iter()) {
        match *c {
            CCol::Bind(s) => frame[s] = v,
            CCol::Check(s) => {
                if frame[s] != v {
                    return false;
                }
            }
            CCol::Const(k) => {
                if k != v {
                    return false;
                }
            }
        }
    }
    true
}

/// Shared read-only context for one firing.
struct FireCtx<'a> {
    total: &'a IdDb,
    delta: Option<&'a DeltaDb>,
    neg: &'a NegDb<'a>,
    names: &'a [String],
}

fn fire_ops<S: FnMut(&[Vid]) -> Result<(), EvalError>>(
    ctx: &FireCtx<'_>,
    ops: &[COp],
    k: usize,
    frame: &mut [Vid],
    scratch: &mut Vec<Vid>,
    sink: &mut S,
) -> Result<(), EvalError> {
    let Some(op) = ops.get(k) else {
        return sink(frame);
    };
    match op {
        COp::Pos(p) => {
            if p.from_delta {
                // Deltas are plain chunks (no index): always scanned.
                let rows = &ctx.delta.expect("differential firing carries a delta")[p.pred];
                for ri in 0..rows.len() {
                    if match_cols(&p.cols, rows.row(ri), frame) {
                        fire_ops(ctx, ops, k + 1, frame, scratch, sink)?;
                    }
                }
                return Ok(());
            }
            let rel = &ctx.total.rels[p.pred];
            if let Some(key_src) = p.probe {
                let key = arg_vid(key_src, frame);
                if let Some(bucket) = rel.first.get(&key) {
                    for &ri in bucket {
                        if match_cols(&p.cols, rel.table.chunk.row(ri as usize), frame) {
                            fire_ops(ctx, ops, k + 1, frame, scratch, sink)?;
                        }
                    }
                }
            } else {
                for ri in 0..rel.table.len() {
                    if match_cols(&p.cols, rel.table.chunk.row(ri), frame) {
                        fire_ops(ctx, ops, k + 1, frame, scratch, sink)?;
                    }
                }
            }
            Ok(())
        }
        COp::Neg { pred, args } => {
            // The consult row lives in the shared scratch buffer: no
            // allocation per candidate. Its borrow ends before the
            // recursion, which reuses the buffer for deeper negations.
            scratch.clear();
            scratch.extend(args.iter().map(|a| arg_vid(*a, frame)));
            if neg_holds(ctx.neg, ctx.total, *pred, scratch, ctx.names) {
                fire_ops(ctx, ops, k + 1, frame, scratch, sink)?;
            }
            Ok(())
        }
    }
}

fn fire_rule<O: FnMut(usize, &[Vid]) -> Result<(), EvalError>>(
    ctx: &FireCtx<'_>,
    rule: &CRule,
    ops: &[COp],
    dummy: Vid,
    out: &mut O,
) -> Result<(), EvalError> {
    let mut frame = vec![dummy; rule.nvars];
    let mut neg_scratch = Vec::new();
    let mut head_scratch: Vec<Vid> = Vec::with_capacity(rule.head.len());
    let head = &rule.head;
    let head_pred = rule.head_pred;
    let mut sink = |frame: &[Vid]| {
        head_scratch.clear();
        head_scratch.extend(head.iter().map(|a| arg_vid(*a, frame)));
        out(head_pred, &head_scratch)
    };
    fire_ops(ctx, ops, 0, &mut frame, &mut neg_scratch, &mut sink)
}

/// Is `e` a plain variable or constant (the only shapes the id-space
/// executor handles)?
fn simple_expr(e: &Expr) -> bool {
    matches!(e, Expr::Var(_) | Expr::Lit(_))
}

fn rule_compilable(rule: &Rule) -> bool {
    rule.head.args.iter().all(simple_expr)
        && rule.body.iter().all(|lit| match lit {
            Literal::Pos(a) | Literal::Neg(a) => a.args.iter().all(simple_expr),
            _ => false,
        })
}

/// Shared gate for every entry point.
fn eligible(compiled: &Compiled, meter: &Meter) -> bool {
    algrec_plan::enabled() && !meter.is_traced() && compiled.rules.iter().all(rule_compilable)
}

/// The id-space working state shared by every run mode: the predicate
/// table, interned relations, and the negation oracle. Rule code is
/// compiled separately — one [`LevelCode`] per program (or per stratum)
/// — so a stratified run reuses one machine, and its interned totals,
/// across strata instead of crossing the id↔value boundary at every
/// stratum.
struct Machine<'a> {
    table: PredTable,
    total: IdDb,
    init: Vec<usize>,
    neg: NegDb<'a>,
    dummy: Vid,
}

/// One rule after slot/pred resolution: head predicate, head args,
/// variable count, body.
type Resolved = (usize, Vec<CArg>, usize, Vec<SrcLit>);

/// The rules of one evaluation unit (a whole program, or one stratum),
/// lowered against the machine's table with join orders costed from the
/// machine's totals at lowering time.
struct LevelCode {
    rules: Vec<CRule>,
    /// Static differential firing list: the (rule, variant) pairs whose
    /// variant predicate is an IDB head of this unit.
    firings: Vec<(usize, usize)>,
    /// Preds read differentially by `firings` — the only ones worth
    /// copying into the per-round delta.
    consumed: Vec<bool>,
}

/// Resolve per-rule variable slots and literal arguments; `None` when a
/// literal constant exceeds the value-size limit.
fn resolve_rule(
    rule: &Rule,
    table: &mut PredTable,
    limit: usize,
) -> Option<(usize, Vec<CArg>, usize, Vec<SrcLit>)> {
    // Variable slots in first-occurrence order over body then head.
    let mut names: Vec<String> = Vec::new();
    let slot_of = |n: &str, names: &mut Vec<String>| match names.iter().position(|v| v == n) {
        Some(i) => i,
        None => {
            names.push(n.to_string());
            names.len() - 1
        }
    };
    let conv = |e: &Expr, names: &mut Vec<String>| -> Option<CArg> {
        match e {
            Expr::Var(n) => Some(CArg::Var(slot_of(n, names))),
            Expr::Lit(v) => {
                if v.size() > limit {
                    return None;
                }
                Some(CArg::Const(Vid::of(v)))
            }
            _ => None,
        }
    };
    let mut body = Vec::with_capacity(rule.body.len());
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => {
                let args = a
                    .args
                    .iter()
                    .map(|e| conv(e, &mut names))
                    .collect::<Option<Vec<_>>>()?;
                body.push(SrcLit::Pos {
                    pred: table.id(&a.pred),
                    args,
                });
            }
            Literal::Neg(a) => {
                let args = a
                    .args
                    .iter()
                    .map(|e| conv(e, &mut names))
                    .collect::<Option<Vec<_>>>()?;
                body.push(SrcLit::Neg {
                    pred: table.id(&a.pred),
                    args,
                });
            }
            _ => return None,
        }
    }
    let head = rule
        .head
        .args
        .iter()
        .map(|e| conv(e, &mut names))
        .collect::<Option<Vec<_>>>()?;
    Some((table.id(&rule.head.pred), head, names.len(), body))
}

/// Build the `JoinLit` view of a resolved body for the cost-based
/// orderer.
fn join_lits(
    body: &[SrcLit],
    table: &PredTable,
    delta_pos: Option<usize>,
) -> Vec<algrec_plan::JoinLit> {
    body.iter()
        .enumerate()
        .map(|(i, lit)| match lit {
            SrcLit::Pos { pred, args } => algrec_plan::JoinLit {
                pred: Some(table.names[*pred].clone()),
                produces: args
                    .iter()
                    .filter_map(|a| match a {
                        CArg::Var(s) => Some(*s),
                        CArg::Const(_) => None,
                    })
                    .collect(),
                requires: Vec::new(),
                first: match args.first() {
                    Some(CArg::Const(_)) => algrec_plan::FirstCol::Const,
                    Some(CArg::Var(s)) => algrec_plan::FirstCol::Var(*s),
                    None => algrec_plan::FirstCol::None,
                },
                forced_first: delta_pos == Some(i),
            },
            SrcLit::Neg { pred, args } => algrec_plan::JoinLit {
                pred: Some(table.names[*pred].clone()),
                produces: Vec::new(),
                requires: args
                    .iter()
                    .filter_map(|a| match a {
                        CArg::Var(s) => Some(*s),
                        CArg::Const(_) => None,
                    })
                    .collect(),
                first: algrec_plan::FirstCol::None,
                forced_first: false,
            },
        })
        .collect()
}

/// Lower a resolved body in the given order into column ops.
fn lower(body: &[SrcLit], order: &[usize], delta_pos: Option<usize>, nvars: usize) -> Box<[COp]> {
    let mut bound = vec![false; nvars];
    let mut ops = Vec::with_capacity(order.len());
    for &i in order {
        match &body[i] {
            SrcLit::Pos { pred, args } => {
                // Delta literals are stored without a first-column index,
                // so they must scan (they come first anyway).
                let probe = if delta_pos == Some(i) {
                    None
                } else {
                    match args.first() {
                        Some(CArg::Const(v)) => Some(CArg::Const(*v)),
                        Some(CArg::Var(s)) if bound[*s] => Some(CArg::Var(*s)),
                        _ => None,
                    }
                };
                let cols = args
                    .iter()
                    .map(|a| match a {
                        CArg::Const(v) => CCol::Const(*v),
                        CArg::Var(s) => {
                            if bound[*s] {
                                CCol::Check(*s)
                            } else {
                                bound[*s] = true;
                                CCol::Bind(*s)
                            }
                        }
                    })
                    .collect();
                ops.push(COp::Pos(CPos {
                    pred: *pred,
                    cols,
                    probe,
                    from_delta: delta_pos == Some(i),
                }));
            }
            SrcLit::Neg { pred, args } => {
                ops.push(COp::Neg {
                    pred: *pred,
                    args: args.to_vec().into_boxed_slice(),
                });
            }
        }
    }
    ops.into_boxed_slice()
}

impl<'a> Machine<'a> {
    /// Resolve every level's rules against one shared table and intern
    /// the base interpretation. `None` when any converted value exceeds
    /// the meter's value-size limit — the caller then keeps the
    /// interpreted path, which performs the authoritative per-match size
    /// checks. With `total_oracle` the negation oracle is the live
    /// complement of the machine's totals ([`NegDb::Total`]): the
    /// inflationary reading, and also the stratified one (see
    /// [`try_stratified`]).
    fn build(
        levels: &[&Compiled],
        base: &Interp,
        oracle: &'a NegOracle<'a>,
        meter: &Meter,
        total_oracle: bool,
    ) -> Option<(Machine<'a>, Vec<Vec<Resolved>>)> {
        let limit = meter.budget().max_value_size;
        let mut table = PredTable::default();
        let mut resolved_levels = Vec::with_capacity(levels.len());
        for level in levels {
            let mut resolved = Vec::with_capacity(level.rules.len());
            for rule in &level.rules {
                resolved.push(resolve_rule(rule, &mut table, limit)?);
            }
            resolved_levels.push(resolved);
        }
        let npreds = table.names.len();

        // Intern the base for every mentioned predicate.
        let mut total = IdDb::new(npreds);
        let mut row: Vec<Vid> = Vec::new();
        for (p, name) in table.names.clone().iter().enumerate() {
            for fact in base.facts(name) {
                row.clear();
                for v in fact {
                    if v.size() > limit {
                        return None;
                    }
                    row.push(Vid::of(v));
                }
                total.rels[p].insert(&row);
            }
        }
        let init: Vec<usize> = total.rels.iter().map(|r| r.table.len()).collect();

        // Lower the negation oracle over the preds negated anywhere.
        let neg = if total_oracle {
            NegDb::Total
        } else {
            match oracle {
                NegOracle::False => NegDb::False,
                NegOracle::Fn(f) => NegDb::Fn(*f),
                NegOracle::Complement(frozen) => {
                    let mut negated = vec![false; npreds];
                    for resolved in &resolved_levels {
                        for (_, _, _, body) in resolved {
                            for lit in body {
                                if let SrcLit::Neg { pred, .. } = lit {
                                    negated[*pred] = true;
                                }
                            }
                        }
                    }
                    let mut sets: Vec<Option<Table>> = vec![None; npreds];
                    let mut row: Vec<Vid> = Vec::new();
                    for (p, is_neg) in negated.iter().enumerate() {
                        if !is_neg {
                            continue;
                        }
                        let mut set = Table::default();
                        for fact in frozen.facts(&table.names[p]) {
                            row.clear();
                            row.extend(fact.iter().map(Vid::of));
                            set.insert(&row);
                        }
                        sets[p] = Some(set);
                    }
                    NegDb::Sets(sets)
                }
            }
        };

        Some((
            Machine {
                table,
                total,
                init,
                neg,
                dummy: Vid::of(&Value::Bool(false)),
            },
            resolved_levels,
        ))
    }

    /// Lower one level's resolved rules into executable code: join orders
    /// from a cost model sampled from the *current* totals (for a
    /// stratum, that includes every completed lower stratum), one full
    /// plan plus one delta-first variant per positive body literal, and
    /// the static differential firing list.
    fn compile_level(&self, resolved: &[Resolved]) -> LevelCode {
        let npreds = self.table.names.len();
        let mut catalog = algrec_plan::Catalog::new();
        for (p, name) in self.table.names.iter().enumerate() {
            if self.total.rels[p].table.len() > 0 {
                catalog.set(
                    name,
                    self.total.rels[p].table.len(),
                    self.total.rels[p].first.len(),
                );
            }
        }

        let mut rules = Vec::with_capacity(resolved.len());
        let mut idb = vec![false; npreds];
        for (head_pred, head, nvars, body) in resolved {
            idb[*head_pred] = true;
            let full_order = catalog.order_join(&join_lits(body, &self.table, None), *nvars);
            let mut variants = Vec::new();
            for (i, lit) in body.iter().enumerate() {
                if let SrcLit::Pos { pred, .. } = lit {
                    let order = catalog.order_join(&join_lits(body, &self.table, Some(i)), *nvars);
                    variants.push(CVariant {
                        pred: *pred,
                        ops: lower(body, &order, Some(i), *nvars),
                    });
                }
            }
            rules.push(CRule {
                head_pred: *head_pred,
                head: head.to_vec().into_boxed_slice(),
                nvars: *nvars,
                full: lower(body, &full_order, None, *nvars),
                variants,
            });
        }

        let mut firings = Vec::new();
        let mut consumed = vec![false; npreds];
        for (r, rule) in rules.iter().enumerate() {
            for (vi, variant) in rule.variants.iter().enumerate() {
                if idb[variant.pred] {
                    firings.push((r, vi));
                    consumed[variant.pred] = true;
                }
            }
        }
        LevelCode {
            rules,
            firings,
            consumed,
        }
    }

    /// Intern an externally supplied delta (the continuation seed).
    /// Returns the id-space delta over mentioned predicates plus the
    /// count of seed facts over unmentioned ones (they drive the round
    /// condition exactly as in the interpreted engine, then vanish).
    fn intern_seed(&self, seed: &Interp, limit: usize) -> Option<(DeltaDb, usize)> {
        let mut db: DeltaDb = vec![Chunk::default(); self.table.names.len()];
        let mut extra = 0usize;
        let mut row: Vec<Vid> = Vec::new();
        for (pred, args) in seed.iter() {
            match self.table.get(pred) {
                Some(p) => {
                    row.clear();
                    for v in args {
                        if v.size() > limit {
                            return None;
                        }
                        row.push(Vid::of(v));
                    }
                    db[p].push(&row);
                }
                None => extra += 1,
            }
        }
        Some((db, extra))
    }

    /// Append every candidate not yet in `total` to it, returning the
    /// id-space next delta and the number of new facts. The count covers
    /// *all* new facts (it drives the round condition, exactly like the
    /// interpreted engine's `delta.total()`), but only `consumed` preds
    /// are copied into the delta — facts nobody reads differentially
    /// would only be copied and dropped.
    fn split_new(&mut self, derived: Derived, consumed: &[bool]) -> (DeltaDb, usize) {
        let mut delta: DeltaDb = vec![Chunk::default(); self.total.rels.len()];
        let mut added = 0usize;
        for (p, table) in derived.tables.iter().enumerate() {
            let keep = consumed.get(p).copied().unwrap_or(false);
            for row in table.chunk.iter() {
                if !self.total.rels[p].insert(row) {
                    continue;
                }
                if keep {
                    delta[p].push(row);
                }
                added += 1;
            }
        }
        (delta, added)
    }

    /// Fire one full (non-differential) pass of every rule into
    /// `derived`, charging the meter per new candidate.
    fn fire_full(
        &self,
        code: &LevelCode,
        stats: &mut FixpointStats,
        meter: &mut Meter,
        derived: &mut Derived,
    ) -> Result<(), EvalError> {
        let ctx = FireCtx {
            total: &self.total,
            delta: None,
            neg: &self.neg,
            names: &self.table.names,
        };
        for rule in &code.rules {
            stats.rule_applications += 1;
            fire_rule(&ctx, rule, &rule.full, self.dummy, &mut |p, row| {
                if derived.insert(p, row) {
                    meter.add_facts(1)?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Differentially fire `(rule, variant)` pairs against `delta`,
    /// sequentially for small rounds and via the deterministic
    /// partition/merge discipline otherwise.
    fn fire_differential(
        &self,
        rules: &[CRule],
        delta: &DeltaDb,
        firings: &[(usize, usize)],
        meter: &mut Meter,
        derived: &mut Derived,
    ) -> Result<(), EvalError> {
        let threads = algrec_sched::threads();
        let shards = algrec_sched::shards();
        if (threads <= 1 && shards <= 1) || delta_total(delta) < PAR_MIN_FACTS || firings.is_empty()
        {
            let ctx = FireCtx {
                total: &self.total,
                delta: Some(delta),
                neg: &self.neg,
                names: &self.table.names,
            };
            for &(r, vi) in firings {
                let rule = &rules[r];
                let variant = &rule.variants[vi];
                fire_rule(&ctx, rule, &variant.ops, self.dummy, &mut |p, row| {
                    if derived.insert(p, row) {
                        meter.add_facts(1)?;
                    }
                    Ok(())
                })?;
            }
            return Ok(());
        }

        // Partition the delta rows across workers; which partition a row
        // lands in only balances load (all workers join against the same
        // total, and the merge below is partition-order-deterministic).
        // Sharded evaluation instead keys each row on its first-column
        // interned id — the cluster's EDB partitioning function — with
        // exactly one part per shard worker, so the round's work
        // assignment follows data ownership.
        let nparts = if shards > 1 { shards } else { threads };
        let npreds = self.total.rels.len();
        let mut parts: Vec<DeltaDb> = (0..nparts)
            .map(|_| vec![Chunk::default(); npreds])
            .collect();
        for (p, rows) in delta.iter().enumerate() {
            for row in rows.iter() {
                let mut h = FxHasher::default();
                if shards > 1 {
                    match row.first() {
                        Some(v) => h.write_u32(v.index()),
                        None => h.write_usize(p),
                    }
                } else {
                    h.write_usize(p);
                    for v in row.iter() {
                        h.write_u32(v.index());
                    }
                }
                let w = (h.finish() % nparts as u64) as usize;
                parts[w][p].push(row);
            }
        }
        let nrules = rules.len();
        // Per-worker per-rule candidate tables: the arena keeps first-
        // derivation order, so the merge below stays deterministic.
        let results: Vec<Result<Vec<Table>, EvalError>> =
            algrec_sched::Pool::new(threads).run(parts.len(), |w| {
                let ctx = FireCtx {
                    total: &self.total,
                    delta: Some(&parts[w]),
                    neg: &self.neg,
                    names: &self.table.names,
                };
                let mut bufs: Vec<Table> = (0..nrules).map(|_| Table::default()).collect();
                for &(r, vi) in firings {
                    let rule = &rules[r];
                    let variant = &rule.variants[vi];
                    if parts[w][variant.pred].is_empty() {
                        continue;
                    }
                    fire_rule(&ctx, rule, &variant.ops, self.dummy, &mut |_, row| {
                        bufs[r].insert(row);
                        Ok(())
                    })?;
                }
                Ok(bufs)
            });
        // Deterministic merge: rule-major, worker-minor; only here does
        // the real meter get charged.
        let mut buffers = Vec::with_capacity(results.len());
        for res in results {
            buffers.push(res?);
        }
        for (r, rule) in rules.iter().enumerate() {
            for bufs in &buffers {
                for row in bufs[r].chunk.iter() {
                    if derived.insert(rule.head_pred, row) {
                        meter.add_facts(1)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolve every row appended beyond the initial conversion back to
    /// values, inserting into `out`. Bulk path: one interner read lock
    /// for the whole materialization and one sorted bulk build per
    /// predicate, instead of a lock acquisition and a `BTreeSet` insert
    /// per fact. Rows are pre-sorted in *id* space: ids used by new rows
    /// are ranked by their values' canonical order (one `Value`
    /// comparison sort over the few distinct ids), then rows sort by
    /// `u32` rank sequences — so the per-row sorting never touches
    /// values, and the `BTreeSet` bulk build sees already-sorted input.
    fn materialize_new(&self, out: &mut Interp) {
        algrec_value::intern::with_values(|values| {
            let mut rank: Vec<u32> = vec![u32::MAX; values.len()];
            let mut used: Vec<Vid> = Vec::new();
            for (p, rel) in self.total.rels.iter().enumerate() {
                for ri in self.init[p]..rel.table.len() {
                    for &v in rel.table.chunk.row(ri) {
                        let slot = &mut rank[v.index() as usize];
                        if *slot == u32::MAX {
                            *slot = 0;
                            used.push(v);
                        }
                    }
                }
            }
            used.sort_unstable_by(|a, b| {
                values[a.index() as usize].cmp(values[b.index() as usize])
            });
            for (i, v) in used.iter().enumerate() {
                rank[v.index() as usize] = i as u32;
            }
            for (p, rel) in self.total.rels.iter().enumerate() {
                let n = rel.table.len();
                if n == self.init[p] {
                    continue;
                }
                let chunk = &rel.table.chunk;
                let mut idxs: Vec<u32> = (self.init[p] as u32..n as u32).collect();
                let max_arity = idxs
                    .iter()
                    .map(|&ri| chunk.row(ri as usize).len())
                    .max()
                    .unwrap_or(0);
                if max_arity <= 2 {
                    // Pack both ranks (offset by 1, missing column = 0 so
                    // a shorter prefix sorts first) into one u64 key: a
                    // single integer sort replaces the per-comparison
                    // iterator walk. Rows are deduplicated and ranks are
                    // injective, so keys are distinct.
                    let mut keyed: Vec<(u64, u32)> = idxs
                        .iter()
                        .map(|&ri| {
                            let row = chunk.row(ri as usize);
                            let k0 = row
                                .first()
                                .map_or(0, |v| rank[v.index() as usize] as u64 + 1);
                            let k1 = row
                                .get(1)
                                .map_or(0, |v| rank[v.index() as usize] as u64 + 1);
                            ((k0 << 32) | k1, ri)
                        })
                        .collect();
                    keyed.sort_unstable();
                    idxs = keyed.into_iter().map(|(_, ri)| ri).collect();
                } else {
                    idxs.sort_unstable_by(|&a, &b| {
                        chunk
                            .row(a as usize)
                            .iter()
                            .map(|v| rank[v.index() as usize])
                            .cmp(
                                chunk
                                    .row(b as usize)
                                    .iter()
                                    .map(|v| rank[v.index() as usize]),
                            )
                    });
                }
                let rows: Vec<Vec<Value>> = idxs
                    .iter()
                    .map(|&ri| {
                        chunk
                            .row(ri as usize)
                            .iter()
                            .map(|&v| values[v.index() as usize].clone())
                            .collect()
                    })
                    .collect();
                out.insert_all(&self.table.names[p], rows);
            }
        });
    }

    /// Naive/inflationary fixpoint: fire every rule fully each round
    /// until nothing new appears. The two modes share this loop; only
    /// the phase label and the negation oracle (baked into the machine)
    /// differ. Candidates are buffered, so the total each round reads
    /// *is* the round-start snapshot.
    fn run_exhaustive(
        &mut self,
        code: &LevelCode,
        phase: &'static str,
        meter: &mut Meter,
    ) -> Result<FixpointStats, EvalError> {
        let mut stats = FixpointStats::default();
        meter.phase_start(phase);
        loop {
            meter.tick_iteration()?;
            stats.rounds += 1;
            let mut derived = Derived::new(self.total.rels.len());
            self.fire_full(code, &mut stats, meter, &mut derived)?;
            let (_, added) = self.split_new(derived, &[]);
            meter.record_delta(added);
            if added == 0 {
                break;
            }
            stats.derived += added;
        }
        meter.phase_end();
        Ok(stats)
    }

    /// One semi-naive evaluation unit (a whole program, or one stratum):
    /// full round 0, then differential rounds while *any* new fact
    /// appeared, accumulating into `stats`. Phase markers bracket the
    /// unit, matching the interpreted engine's per-stratum protocol.
    fn semi_naive_level(
        &mut self,
        code: &LevelCode,
        meter: &mut Meter,
        stats: &mut FixpointStats,
    ) -> Result<(), EvalError> {
        meter.phase_start("semi-naive");
        meter.tick_iteration()?;
        stats.rounds += 1;
        let mut derived = Derived::new(self.total.rels.len());
        self.fire_full(code, stats, meter, &mut derived)?;
        let (mut delta, added0) = self.split_new(derived, &code.consumed);
        stats.derived += added0;
        meter.record_delta(added0);

        let mut delta_count = added0;
        while delta_count > 0 {
            meter.tick_iteration()?;
            stats.rounds += 1;
            stats.rule_applications += code.firings.len();
            let mut derived = Derived::new(self.total.rels.len());
            self.fire_differential(&code.rules, &delta, &code.firings, meter, &mut derived)?;
            let (next, added) = self.split_new(derived, &code.consumed);
            stats.derived += added;
            delta = next;
            delta_count = added;
            meter.record_delta(added);
        }
        meter.phase_end();
        Ok(())
    }

    fn run_semi_naive_from(
        &mut self,
        code: &LevelCode,
        total_in: &Interp,
        seed: (DeltaDb, usize),
        meter: &mut Meter,
    ) -> Result<(Interp, Interp, FixpointStats), EvalError> {
        let (mut delta, extra) = seed;
        let mut stats = FixpointStats::default();
        meter.phase_start("semi-naive-from");
        // The round condition counts *all* new facts from the previous
        // round (plus seed facts over unmentioned preds), exactly like
        // the interpreted engine's `delta.total()`.
        let mut delta_count = delta_total(&delta) + extra;
        while delta_count > 0 {
            meter.tick_iteration()?;
            stats.rounds += 1;
            // Fire once per positive body literal whose predicate has
            // facts in the current delta (the seed may contain EDB
            // facts, so eligibility is by delta content, not IDB
            // membership — same rule as the interpreted engine).
            let mut firings = Vec::new();
            for (r, rule) in code.rules.iter().enumerate() {
                for (vi, variant) in rule.variants.iter().enumerate() {
                    if !delta[variant.pred].is_empty() {
                        firings.push((r, vi));
                    }
                }
            }
            stats.rule_applications += firings.len();
            let mut derived = Derived::new(self.total.rels.len());
            self.fire_differential(&code.rules, &delta, &firings, meter, &mut derived)?;
            let (next, added) = self.split_new(derived, &code.consumed);
            stats.derived += added;
            delta = next;
            delta_count = added;
            meter.record_delta(added);
        }
        meter.phase_end();
        let mut out = total_in.clone();
        let mut added_all = Interp::new();
        self.materialize_new(&mut out);
        self.materialize_new(&mut added_all);
        Ok((out, added_all, stats))
    }
}

/// Compiled naive fixpoint; `None` when the program, toggle or meter
/// keeps the interpreted path.
pub(crate) fn try_naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Option<Result<(Interp, FixpointStats), EvalError>> {
    if !eligible(compiled, meter) {
        return None;
    }
    let (mut machine, resolved) = Machine::build(&[compiled], base, neg, meter, false)?;
    let code = machine.compile_level(&resolved[0]);
    Some(machine.run_exhaustive(&code, "naive", meter).map(|stats| {
        let mut out = base.clone();
        machine.materialize_new(&mut out);
        (out, stats)
    }))
}

/// Compiled semi-naive fixpoint; `None` keeps the interpreted path.
pub(crate) fn try_semi_naive(
    compiled: &Compiled,
    base: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Option<Result<(Interp, FixpointStats), EvalError>> {
    if !eligible(compiled, meter) {
        return None;
    }
    let (mut machine, resolved) = Machine::build(&[compiled], base, neg, meter, false)?;
    let code = machine.compile_level(&resolved[0]);
    let mut stats = FixpointStats::default();
    Some(
        machine
            .semi_naive_level(&code, meter, &mut stats)
            .map(|()| {
                let mut out = base.clone();
                machine.materialize_new(&mut out);
                (out, stats)
            }),
    )
}

/// Compiled semi-naive continuation; `None` keeps the interpreted path.
pub(crate) fn try_semi_naive_from(
    compiled: &Compiled,
    total: &Interp,
    seed: &Interp,
    neg: &NegOracle<'_>,
    meter: &mut Meter,
) -> Option<Result<(Interp, Interp, FixpointStats), EvalError>> {
    if !eligible(compiled, meter) {
        return None;
    }
    let (mut machine, resolved) = Machine::build(&[compiled], total, neg, meter, false)?;
    let code = machine.compile_level(&resolved[0]);
    // Seed conversion can also fall back (oversized values).
    let seed = machine.intern_seed(seed, meter.budget().max_value_size)?;
    Some(machine.run_semi_naive_from(&code, total, seed, meter))
}

/// Compiled inflationary fixpoint; `None` keeps the interpreted path.
pub(crate) fn try_inflationary(
    compiled: &Compiled,
    base: &Interp,
    meter: &mut Meter,
) -> Option<Result<(Interp, FixpointStats), EvalError>> {
    if !eligible(compiled, meter) {
        return None;
    }
    let (mut machine, resolved) =
        Machine::build(&[compiled], base, &NegOracle::False, meter, true)?;
    let code = machine.compile_level(&resolved[0]);
    Some(
        machine
            .run_exhaustive(&code, "inflationary", meter)
            .map(|stats| {
                let mut out = base.clone();
                machine.materialize_new(&mut out);
                (out, stats)
            }),
    )
}

/// Compiled *whole-stratification* semi-naive fixpoint: one machine, one
/// id space, one materialization for every stratum. `None` keeps the
/// interpreted per-stratum driver (non-datalog rules, oversized values,
/// tracing, or the plan toggle off).
///
/// Negation is read through [`NegDb::Total`], the live complement of the
/// machine's totals. That is exactly the stratified semantics: by
/// construction every predicate negated in stratum `k` is defined in a
/// strictly lower stratum, hence complete and *frozen* before stratum
/// `k` starts firing — `¬p(x) ⇔ x ∉ total` — and the interpreted
/// driver's per-stratum frozen snapshot ([`NegOracle::Complement`])
/// coincides with it. Join orders still see per-stratum statistics:
/// each stratum's code is lowered only after all lower strata completed,
/// so the catalog samples the same cardinalities the per-stratum driver
/// would have.
pub(crate) fn try_stratified(
    program: &crate::ast::Program,
    base: &Interp,
    meter: &mut Meter,
) -> Option<Result<(Interp, FixpointStats), EvalError>> {
    if !algrec_plan::enabled() || meter.is_traced() {
        return None;
    }
    let layers = crate::stratify::strata_programs(program).ok()?;
    let mut compiled = Vec::with_capacity(layers.len());
    for layer in &layers {
        let c = Compiled::compile(layer).ok()?;
        if !c.rules.iter().all(rule_compilable) {
            return None;
        }
        compiled.push(c);
    }
    let refs: Vec<&Compiled> = compiled.iter().collect();
    let (mut machine, resolved) = Machine::build(&refs, base, &NegOracle::False, meter, true)?;
    let mut stats = FixpointStats::default();
    for level in &resolved {
        // Lowered only now, after every lower stratum completed: the
        // catalog samples the same cardinalities the per-stratum driver
        // would have.
        let code = machine.compile_level(level);
        if let Err(e) = machine.semi_naive_level(&code, meter, &mut stats) {
            return Some(Err(e));
        }
    }
    let mut out = base.clone();
    machine.materialize_new(&mut out);
    Some(Ok((out, stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Program};
    use crate::fixpoint;
    use crate::inflationary::inflationary;
    use algrec_value::Budget;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn tc_program() -> Compiled {
        Compiled::compile(&Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("edge", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("edge", [v("Y"), v("Z")])),
                ],
            ),
        ]))
        .unwrap()
    }

    fn chain(n: i64) -> Interp {
        let mut base = Interp::new();
        for k in 0..n {
            base.insert("edge", vec![i(k), i(k + 1)]);
        }
        base
    }

    /// Run `f` with the compiled path force-enabled, restoring the
    /// ambient toggle afterwards (the suite may run under
    /// `ALGREC_PLAN_BASELINE=1`).
    fn with_plan<R>(f: impl FnOnce() -> R) -> R {
        let prev = algrec_plan::enabled();
        algrec_plan::set_enabled(true);
        let r = f();
        algrec_plan::set_enabled(prev);
        r
    }

    #[test]
    fn compiled_semi_naive_matches_interpreted_exactly() {
        with_plan(|| {
            let compiled = tc_program();
            let base = chain(12);
            let mut mc = Budget::LARGE.meter();
            let (out_c, stats_c) = try_semi_naive(&compiled, &base, &NegOracle::False, &mut mc)
                .expect("eligible")
                .unwrap();
            // Interpreted reference: a traced meter forces the old path.
            let trace = algrec_value::Trace::collect();
            let mut mi = Budget::LARGE.meter_traced(trace);
            let (out_i, stats_i) =
                fixpoint::semi_naive(&compiled, &base, &|_, _| false, &mut mi).unwrap();
            assert_eq!(out_c, out_i);
            assert_eq!(stats_c, stats_i);
            assert_eq!(mc.facts(), mi.facts());
            assert_eq!(mc.iterations(), mi.iterations());
        });
    }

    #[test]
    fn compiled_naive_matches_interpreted_exactly() {
        with_plan(|| {
            let compiled = tc_program();
            let base = chain(6);
            let mut mc = Budget::LARGE.meter();
            let (out_c, stats_c) = try_naive(&compiled, &base, &NegOracle::False, &mut mc)
                .expect("eligible")
                .unwrap();
            let trace = algrec_value::Trace::collect();
            let mut mi = Budget::LARGE.meter_traced(trace);
            let (out_i, stats_i) =
                fixpoint::naive(&compiled, &base, &|_, _| false, &mut mi).unwrap();
            assert_eq!(out_c, out_i);
            assert_eq!(stats_c, stats_i);
            assert_eq!(mc.facts(), mi.facts());
            assert_eq!(mc.iterations(), mi.iterations());
        });
    }

    #[test]
    fn fn_oracle_round_trips_through_values() {
        with_plan(|| {
            // q(X) :- node(X), not bad(X).
            let compiled = Compiled::compile(&Program::from_rules([Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("node", [v("X")])),
                    Literal::Neg(Atom::new("bad", [v("X")])),
                ],
            )]))
            .unwrap();
            let mut base = Interp::new();
            base.insert("node", vec![i(1)]);
            base.insert("node", vec![i(2)]);
            let f = |p: &str, args: &[Value]| p == "bad" && args[0] != i(2);
            let mut m = Budget::SMALL.meter();
            let (out, _) = try_semi_naive(&compiled, &base, &NegOracle::Fn(&f), &mut m)
                .expect("eligible")
                .unwrap();
            assert!(out.holds("q", &[i(1)]));
            assert!(!out.holds("q", &[i(2)]));
        });
    }

    #[test]
    fn complement_oracle_matches_closure() {
        with_plan(|| {
            // un(X, Y) :- node(X), node(Y), not tc(X, Y).
            let compiled = Compiled::compile(&Program::from_rules([Rule::new(
                Atom::new("un", [v("X"), v("Y")]),
                [
                    Literal::Pos(Atom::new("node", [v("X")])),
                    Literal::Pos(Atom::new("node", [v("Y")])),
                    Literal::Neg(Atom::new("tc", [v("X"), v("Y")])),
                ],
            )]))
            .unwrap();
            let mut base = Interp::new();
            let mut frozen = Interp::new();
            for k in 0..4 {
                base.insert("node", vec![i(k)]);
            }
            frozen.insert("tc", vec![i(0), i(1)]);
            frozen.insert("tc", vec![i(2), i(3)]);
            let mut mc = Budget::SMALL.meter();
            let (out_c, stats_c) =
                try_semi_naive(&compiled, &base, &NegOracle::Complement(&frozen), &mut mc)
                    .expect("eligible")
                    .unwrap();
            let trace = algrec_value::Trace::collect();
            let mut mi = Budget::SMALL.meter_traced(trace);
            let (out_i, stats_i) =
                fixpoint::semi_naive(&compiled, &base, &|p, args| !frozen.holds(p, args), &mut mi)
                    .unwrap();
            assert_eq!(out_c, out_i);
            assert_eq!(stats_c, stats_i);
            assert_eq!(out_c.count("un"), 14);
        });
    }

    #[test]
    fn compiled_inflationary_matches_interpreted() {
        with_plan(|| {
            // r(a).  q(X) :- r(X), not q(X).  — the Example 4 gadget.
            let compiled = Compiled::compile(&Program::from_rules([
                Rule::fact(Atom::new("r", [Expr::lit("a")])),
                Rule::new(
                    Atom::new("q", [v("X")]),
                    [
                        Literal::Pos(Atom::new("r", [v("X")])),
                        Literal::Neg(Atom::new("q", [v("X")])),
                    ],
                ),
            ]))
            .unwrap();
            let mut mc = Budget::SMALL.meter();
            let (out_c, stats_c) = try_inflationary(&compiled, &Interp::new(), &mut mc)
                .expect("eligible")
                .unwrap();
            let trace = algrec_value::Trace::collect();
            let mut mi = Budget::SMALL.meter_traced(trace);
            let (out_i, stats_i) = inflationary(&compiled, &Interp::new(), &mut mi).unwrap();
            assert_eq!(out_c, out_i);
            assert_eq!(stats_c, stats_i);
            assert_eq!(mc.facts(), mi.facts());
            assert!(out_c.holds("q", &[Value::str("a")]));
        });
    }

    #[test]
    fn compiled_continuation_matches_interpreted() {
        with_plan(|| {
            let compiled = tc_program();
            let base = chain(8);
            let mut m = Budget::SMALL.meter();
            let (fixed, _) = try_semi_naive(&compiled, &base, &NegOracle::False, &mut m)
                .expect("eligible")
                .unwrap();
            let mut seed = Interp::new();
            seed.insert("edge", vec![i(8), i(9)]);
            seed.insert("orphan", vec![i(99)]); // unmentioned predicate
            let mut total = fixed.clone();
            total.absorb(&seed);
            let mut mc = Budget::SMALL.meter();
            let (out_c, added_c, stats_c) =
                try_semi_naive_from(&compiled, &total, &seed, &NegOracle::False, &mut mc)
                    .expect("eligible")
                    .unwrap();
            let trace = algrec_value::Trace::collect();
            let mut mi = Budget::SMALL.meter_traced(trace);
            let (out_i, added_i, stats_i) =
                fixpoint::semi_naive_from(&compiled, &total, &seed, &|_, _| false, &mut mi)
                    .unwrap();
            assert_eq!(out_c, out_i);
            assert_eq!(added_c, added_i);
            assert_eq!(stats_c, stats_i);
            assert_eq!(mc.facts(), mi.facts());
        });
    }

    #[test]
    fn ineligible_programs_fall_back() {
        with_plan(|| {
            // nat(succ(X)) :- nat(X).  — function application in the head.
            use crate::ast::Func;
            let compiled = Compiled::compile(&Program::from_rules([
                Rule::fact(Atom::new("nat", [Expr::int(0)])),
                Rule::new(
                    Atom::new("nat", [Expr::App(Func::Succ, vec![v("X")])]),
                    [Literal::Pos(Atom::new("nat", [v("X")]))],
                ),
            ]))
            .unwrap();
            let mut m = Budget::SMALL.meter();
            assert!(try_semi_naive(&compiled, &Interp::new(), &NegOracle::False, &mut m).is_none());
        });
    }

    #[test]
    fn traced_meters_fall_back() {
        with_plan(|| {
            let compiled = tc_program();
            let trace = algrec_value::Trace::collect();
            let mut m = Budget::SMALL.meter_traced(trace);
            assert!(try_semi_naive(&compiled, &chain(3), &NegOracle::False, &mut m).is_none());
        });
    }

    #[test]
    fn disabled_toggle_falls_back() {
        let prev = algrec_plan::enabled();
        algrec_plan::set_enabled(false);
        let compiled = tc_program();
        let mut m = Budget::SMALL.meter();
        assert!(try_semi_naive(&compiled, &chain(3), &NegOracle::False, &mut m).is_none());
        algrec_plan::set_enabled(prev);
    }

    #[test]
    fn budget_errors_are_identical() {
        with_plan(|| {
            let compiled = tc_program();
            let base = chain(10);
            let budget = Budget::new(1_000, 20, 64);
            let mut mc = budget.meter();
            let err_c = try_semi_naive(&compiled, &base, &NegOracle::False, &mut mc)
                .expect("eligible")
                .unwrap_err();
            let trace = algrec_value::Trace::collect();
            let mut mi = budget.meter_traced(trace);
            let err_i = fixpoint::semi_naive(&compiled, &base, &|_, _| false, &mut mi).unwrap_err();
            assert_eq!(format!("{err_c}"), format!("{err_i}"));
        });
    }
}
