//! Shared parsing and loading of ground facts — the extensional database.
//!
//! Fact files are Datalog fact lists (`edge(1, 2).`); the same grammar
//! also carries single-fact deltas in the serving layer's `+fact` /
//! `-fact` commands and in the line protocol. Everything that consumes
//! ground facts — the `algrec` CLI's facts-file argument, the REPL and
//! the TCP server — goes through this module, so the parse rules (ground
//! heads only, no rule bodies) and the in-place loading strategy are
//! defined exactly once.

use crate::ast::{Expr, Rule};
use crate::interp::{args_tuple, Fact};
use crate::parser::{parse_program, ParseError};
use algrec_value::{Database, Value};

fn ground_fact(rule: &Rule) -> Result<Fact, ParseError> {
    if !rule.body.is_empty() {
        return Err(ParseError {
            offset: 0,
            message: format!("expected a ground fact, found rule `{rule}`"),
        });
    }
    let args: Vec<Value> = rule
        .head
        .args
        .iter()
        .map(|e| match e {
            Expr::Lit(v) => Ok(v.clone()),
            other => Err(ParseError {
                offset: 0,
                message: format!("non-ground fact argument `{other}` in `{rule}`"),
            }),
        })
        .collect::<Result<_, _>>()?;
    Ok((rule.head.pred.clone(), args))
}

/// Parse one ground fact, e.g. `edge(1, 2)` (the trailing period is
/// optional, matching how deltas are written interactively).
pub fn parse_fact(src: &str) -> Result<Fact, ParseError> {
    let trimmed = src.trim();
    let with_dot = if trimmed.ends_with('.') {
        trimmed.to_string()
    } else {
        format!("{trimmed}.")
    };
    let program = parse_program(&with_dot)?;
    match program.rules.as_slice() {
        [rule] => ground_fact(rule),
        _ => Err(ParseError {
            offset: 0,
            message: format!("expected exactly one fact, got `{trimmed}`"),
        }),
    }
}

/// Parse a facts file: a sequence of ground facts, comments allowed.
pub fn parse_facts(src: &str) -> Result<Vec<Fact>, ParseError> {
    let program = parse_program(src)?;
    program.rules.iter().map(ground_fact).collect()
}

/// Convert a fact to the [`Database`] member convention: unary facts are
/// bare values, wider facts are tuples.
pub fn fact_value(fact: &Fact) -> (String, Value) {
    (fact.0.clone(), args_tuple(&fact.1))
}

/// Parse `src` as a facts file and load every fact into `db` **in
/// place**; returns the number of genuinely new members. Replaces the old
/// per-fact clone-the-whole-relation loader (which made loading O(n²) in
/// the relation size).
pub fn load_facts(db: &mut Database, src: &str) -> Result<usize, ParseError> {
    let facts = parse_facts(src)?;
    let mut added = 0usize;
    for fact in &facts {
        let (name, member) = fact_value(fact);
        if db.insert_value(name, member) {
            added += 1;
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    #[test]
    fn parses_single_fact_with_or_without_dot() {
        assert_eq!(
            parse_fact("edge(1, 2)").unwrap(),
            ("edge".to_string(), vec![i(1), i(2)])
        );
        assert_eq!(
            parse_fact(" edge(1, 2). ").unwrap(),
            ("edge".to_string(), vec![i(1), i(2)])
        );
        // Zero-arity atoms are not in the grammar.
        assert!(parse_fact("flag.").is_err());
    }

    #[test]
    fn rejects_rules_and_variables() {
        assert!(parse_fact("p(X)").is_err());
        assert!(parse_fact("p(1) :- q(1)").is_err());
        assert!(parse_facts("e(1, 2).\np(X) :- e(X, Y).").is_err());
        assert!(parse_fact("e(1). e(2).").is_err());
    }

    #[test]
    fn loads_in_place_and_counts_new() {
        let mut db = Database::new();
        let n = load_facts(&mut db, "edge(1, 2).\nedge(2, 3).\nnode(1).").unwrap();
        assert_eq!(n, 3);
        assert!(db.get("edge").unwrap().contains(&Value::pair(i(1), i(2))));
        assert!(db.get("node").unwrap().contains(&i(1)));
        // Reloading adds nothing.
        assert_eq!(load_facts(&mut db, "edge(1, 2).").unwrap(), 0);
    }

    #[test]
    fn loading_is_not_quadratic() {
        // 20k facts into one relation: the old clone-per-fact loader took
        // O(n²) member copies; the in-place loader is effectively linear.
        // We assert behavior (all present), and rely on the shared path
        // for performance.
        let src: String = (0..20_000)
            .map(|k| format!("e({k}, {}).\n", k + 1))
            .collect();
        let mut db = Database::new();
        let start = std::time::Instant::now();
        assert_eq!(load_facts(&mut db, &src).unwrap(), 20_000);
        assert_eq!(db.get("e").unwrap().len(), 20_000);
        // Generous bound: in-place loading of 20k facts is well under 5s
        // even in debug builds; the quadratic loader blew far past it.
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }
}
