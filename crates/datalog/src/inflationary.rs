//! The inflationary fixpoint semantics.
//!
//! Under the inflationary semantics, negation reads "*was not derived so
//! far*" (Section 5): at every step all rules fire against the facts
//! accumulated so far — with negative literals evaluated against that same
//! accumulating set — and the results are added, never retracted. This is
//! the semantics of the paper's IFP operator, and the target semantics of
//! the Prop 5.1 translation; Example 4 (`IFP_{ {a} − x }`) is the program
//! that separates it from the valid semantics.

use crate::engine::{apply_rule, Compiled, FactSource};
use crate::error::EvalError;
use crate::fixpoint::FixpointStats;
use crate::interp::Interp;
use algrec_value::budget::Meter;

/// Compute the inflationary fixpoint of a compiled program over a base
/// interpretation.
pub fn inflationary(
    compiled: &Compiled,
    base: &Interp,
    meter: &mut Meter,
) -> Result<(Interp, FixpointStats), EvalError> {
    if let Some(res) = crate::compiled::try_inflationary(compiled, base, meter) {
        return res;
    }
    let mut total = base.clone();
    let mut stats = FixpointStats::default();
    meter.phase_start("inflationary");
    loop {
        meter.tick_iteration()?;
        stats.rounds += 1;
        // Freeze the step: both positive matching and the negation oracle
        // see the same snapshot ("was not derived so far").
        let snapshot = total.clone();
        let mut derived = Interp::new();
        for (rule, plan) in compiled.rules.iter().zip(&compiled.plans) {
            stats.rule_applications += 1;
            apply_rule(
                rule,
                plan,
                &FactSource::full(&snapshot),
                &|p, args| !snapshot.holds(p, args),
                meter,
                &mut derived,
            )?;
        }
        let added = total.absorb(&derived);
        meter.record_delta(added);
        if added == 0 {
            break;
        }
        stats.derived += added;
    }
    meter.phase_end();
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Expr, Literal, Program, Rule};
    use algrec_value::{Budget, Value};

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    fn a() -> Value {
        Value::str("a")
    }

    /// Example 4 of the paper: the translation of `Q = IFP_{ {a} − x }`:
    ///   r(a).   q(X) :- r(X), not q(X).
    /// Under the inflationary semantics `q(a)` IS derived (first step: no
    /// `q` facts yet, so `¬q(a)` is assumed and `q(a)` fires).
    fn example4() -> Program {
        Program::from_rules([
            Rule::fact(Atom::new("r", [Expr::lit("a")])),
            Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("r", [v("X")])),
                    Literal::Neg(Atom::new("q", [v("X")])),
                ],
            ),
        ])
    }

    #[test]
    fn example4_inflationary_derives_q_a() {
        let compiled = Compiled::compile(&example4()).unwrap();
        let mut meter = Budget::SMALL.meter();
        let (out, stats) = inflationary(&compiled, &Interp::new(), &mut meter).unwrap();
        assert!(out.holds("q", &[a()]));
        assert!(out.holds("r", &[a()]));
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn inflationary_never_retracts() {
        // p(1).  q(X) :- p(X), not q(X).  r(X) :- q(X).
        // Once q(1) is in, r(1) follows even though q(1)'s justification
        // is self-defeating — inflationary accumulation is permanent.
        let p = Program::from_rules([
            Rule::fact(Atom::new("p", [Expr::int(1)])),
            Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("p", [v("X")])),
                    Literal::Neg(Atom::new("q", [v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("r", [v("X")]),
                [Literal::Pos(Atom::new("q", [v("X")]))],
            ),
        ]);
        let compiled = Compiled::compile(&p).unwrap();
        let mut meter = Budget::SMALL.meter();
        let (out, _) = inflationary(&compiled, &Interp::new(), &mut meter).unwrap();
        assert!(out.holds("q", &[Value::int(1)]));
        assert!(out.holds("r", &[Value::int(1)]));
    }

    #[test]
    fn positive_programs_match_least_fixpoint() {
        use crate::fixpoint::semi_naive;
        let p = Program::from_rules([
            Rule::new(
                Atom::new("tc", [v("X"), v("Y")]),
                [Literal::Pos(Atom::new("e", [v("X"), v("Y")]))],
            ),
            Rule::new(
                Atom::new("tc", [v("X"), v("Z")]),
                [
                    Literal::Pos(Atom::new("tc", [v("X"), v("Y")])),
                    Literal::Pos(Atom::new("e", [v("Y"), v("Z")])),
                ],
            ),
        ]);
        let compiled = Compiled::compile(&p).unwrap();
        let mut base = Interp::new();
        base.insert("e", vec![Value::int(1), Value::int(2)]);
        base.insert("e", vec![Value::int(2), Value::int(3)]);
        let mut m1 = Budget::SMALL.meter();
        let mut m2 = Budget::SMALL.meter();
        let (infl, _) = inflationary(&compiled, &base, &mut m1).unwrap();
        let (lfp, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        assert_eq!(infl, lfp);
    }

    #[test]
    fn stage_frozen_negation() {
        // Two rules racing in one step: s(1). p(X) :- s(X), not q(X).
        // q(X) :- s(X), not p(X). Inflationary: both fire in step 1
        // (neither p nor q derived yet), so BOTH p(1) and q(1) hold.
        let prog = Program::from_rules([
            Rule::fact(Atom::new("s", [Expr::int(1)])),
            Rule::new(
                Atom::new("p", [v("X")]),
                [
                    Literal::Pos(Atom::new("s", [v("X")])),
                    Literal::Neg(Atom::new("q", [v("X")])),
                ],
            ),
            Rule::new(
                Atom::new("q", [v("X")]),
                [
                    Literal::Pos(Atom::new("s", [v("X")])),
                    Literal::Neg(Atom::new("p", [v("X")])),
                ],
            ),
        ]);
        let compiled = Compiled::compile(&prog).unwrap();
        let mut meter = Budget::SMALL.meter();
        let (out, _) = inflationary(&compiled, &Interp::new(), &mut meter).unwrap();
        assert!(out.holds("p", &[Value::int(1)]));
        assert!(out.holds("q", &[Value::int(1)]));
    }
}
