//! Interpretations: assignments of fact sets to predicates.
//!
//! A two-valued [`Interp`] is the output of the minimal-model, stratified
//! and inflationary semantics; a [`ThreeValued`] interpretation — a pair of
//! `Interp`s, certain ⊆ possible — is the output of the well-founded and
//! valid semantics (the `(T, F, undefined)` partition of Section 2.2,
//! with `F` represented implicitly as "not possible").

use crate::ast::Atom;
use algrec_value::{ColumnIndex, Database, Relation, Truth, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A ground fact: predicate name plus argument values.
pub type Fact = (String, Vec<Value>);

/// A two-valued interpretation: for each predicate, the set of argument
/// vectors that hold.
///
/// Fact sets are held behind `Arc` with copy-on-write mutation
/// (`Arc::make_mut`): cloning an interpretation — which the evaluators do
/// at every stratum boundary, in [`ThreeValued::exact`], and when the
/// serving layer snapshots — costs one reference bump per predicate
/// instead of a deep copy of every fact. A clone that is subsequently
/// mutated pays the deep copy then, for the mutated predicate only.
///
/// Alongside the canonical fact sets, the interpretation lazily caches a
/// [`ColumnIndex`] over each predicate's first argument (interned keys),
/// built on first probe by [`Interp::first_index`] and invalidated by
/// mutation. Like the cache on [`Relation`], it is derived state: ignored
/// by `Clone`-equality semantics, `PartialEq`, `Debug` and `Display`.
/// The cache lives behind a `Mutex` (not a `RefCell`) so a shared
/// `&Interp` can be probed from parallel fixpoint workers; the lock is
/// held only for the cache lookup/insert, never across a probe.
#[derive(Default)]
pub struct Interp {
    preds: BTreeMap<String, Arc<BTreeSet<Vec<Value>>>>,
    first_index: Mutex<HashMap<String, Arc<ColumnIndex<Vec<Value>>>>>,
}

impl Clone for Interp {
    fn clone(&self) -> Self {
        Interp {
            preds: self.preds.clone(),
            first_index: Mutex::new(
                self.first_index
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

impl PartialEq for Interp {
    fn eq(&self, other: &Self) -> bool {
        self.preds == other.preds
    }
}

impl Eq for Interp {}

impl fmt::Debug for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("preds", &self.preds)
            .finish()
    }
}

impl Interp {
    /// The empty interpretation.
    pub fn new() -> Self {
        Interp::default()
    }

    /// Load the extensional database: each relation's members become
    /// facts. A member that is a tuple `[a, b, …]` becomes the fact
    /// `R(a, b, …)`; a non-tuple member `v` becomes the unary fact `R(v)`.
    pub fn from_database(db: &Database) -> Self {
        let mut out = Interp::new();
        for (name, rel) in db.iter() {
            for v in rel.iter() {
                out.insert(name, tuple_args(v));
            }
        }
        out
    }

    /// Insert a fact; returns whether it was new. Invalidates the
    /// predicate's cached first-argument index.
    pub fn insert(&mut self, pred: &str, args: Vec<Value>) -> bool {
        let set = self.preds.entry(pred.to_string()).or_default();
        // Don't un-share (deep-copy) a set the fact is already in.
        if set.contains(&args) {
            return false;
        }
        Arc::make_mut(set).insert(args);
        self.index_cache_mut().remove(pred);
        true
    }

    /// Insert a batch of facts for one predicate. Equivalent to repeated
    /// [`Interp::insert`], but a predicate seen for the first time is
    /// bulk-built from the whole batch (one sort instead of per-fact
    /// B-tree inserts) — the fast path for materializing a freshly
    /// computed relation.
    pub fn insert_all(&mut self, pred: &str, rows: Vec<Vec<Value>>) {
        if rows.is_empty() {
            return;
        }
        match self.preds.get_mut(pred) {
            None => {
                self.preds
                    .insert(pred.to_string(), Arc::new(rows.into_iter().collect()));
            }
            Some(set) => {
                Arc::make_mut(set).extend(rows);
            }
        }
        self.index_cache_mut().remove(pred);
    }

    /// Remove a fact; returns whether it was present. Invalidates the
    /// predicate's cached first-argument index. Used by incremental view
    /// maintenance (DRed's over-deletion pass); the batch fixpoint engines
    /// only ever grow interpretations.
    pub fn remove(&mut self, pred: &str, args: &[Value]) -> bool {
        let Some(set) = self.preds.get_mut(pred) else {
            return false;
        };
        // Don't un-share (deep-copy) a set the fact isn't in.
        if !set.contains(args) {
            return false;
        }
        Arc::make_mut(set).remove(args);
        if set.is_empty() {
            self.preds.remove(pred);
        }
        self.index_cache_mut().remove(pred);
        true
    }

    /// Does the fact hold?
    pub fn holds(&self, pred: &str, args: &[Value]) -> bool {
        self.preds.get(pred).is_some_and(|s| s.contains(args))
    }

    /// The fact set of one predicate (empty if absent).
    pub fn facts(&self, pred: &str) -> impl Iterator<Item = &Vec<Value>> {
        self.preds.get(pred).into_iter().flat_map(|s| s.iter())
    }

    /// The facts of `pred` whose first argument equals `first` — a prefix
    /// range over the ordered fact set, so matching a bound first column
    /// costs O(log n + answers) instead of a full scan. This is the
    /// engine's (deliberately simple) index; experiment E8 measures its
    /// effect together with semi-naive evaluation.
    pub fn facts_with_first<'a>(
        &'a self,
        pred: &str,
        first: &'a Value,
    ) -> impl Iterator<Item = &'a Vec<Value>> + 'a {
        self.preds.get(pred).into_iter().flat_map(move |set| {
            set.range(vec![first.clone()]..)
                .take_while(move |f| f.first() == Some(first))
        })
    }

    /// Is a first-argument index already cached for this predicate?
    /// (Telemetry uses this to distinguish index builds from cache hits.)
    pub fn has_first_index(&self, pred: &str) -> bool {
        self.first_index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(pred)
    }

    /// Exclusive access to the index cache (we hold `&mut self`, so the
    /// lock cannot be contended; a poisoned cache is just a cache).
    fn index_cache_mut(&mut self) -> &mut HashMap<String, Arc<ColumnIndex<Vec<Value>>>> {
        self.first_index
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The lazily built hash index over one predicate's first argument,
    /// keyed by interned value ids. Zero-arity facts have no first
    /// argument and are skipped (they can never match a bound-first
    /// probe). Subsequent calls return the same cached index until the
    /// predicate is mutated; probing is the matcher's fast path when a
    /// positive literal's leading argument is already ground.
    pub fn first_index(&self, pred: &str) -> Arc<ColumnIndex<Vec<Value>>> {
        // Hold the lock across the build so concurrent probes of the
        // same cold predicate build the index once, not once per worker.
        let mut cache = self.first_index.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(idx) = cache.get(pred) {
            return idx.clone();
        }
        let idx = Arc::new(ColumnIndex::build_skipping(
            self.facts(pred).cloned(),
            |args: &Vec<Value>| args.first(),
            true,
        ));
        cache.insert(pred.to_string(), idx.clone());
        idx
    }

    /// Number of facts for one predicate.
    pub fn count(&self, pred: &str) -> usize {
        self.preds.get(pred).map_or(0, |s| s.len())
    }

    /// Total number of facts.
    pub fn total(&self) -> usize {
        self.preds.values().map(|s| s.len()).sum()
    }

    /// Predicates with at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = &str> {
        self.preds.keys().map(String::as_str)
    }

    /// Merge all facts of `other` into `self`; returns the number of new
    /// facts.
    pub fn absorb(&mut self, other: &Interp) -> usize {
        let mut added = 0;
        for (pred, facts) in &other.preds {
            match self.preds.get_mut(pred) {
                None => {
                    // Share the whole set (copy-on-write): no fact copies.
                    self.preds.insert(pred.clone(), facts.clone());
                    added += facts.len();
                    self.index_cache_mut().remove(pred);
                }
                Some(entry) => {
                    if Arc::ptr_eq(entry, facts) {
                        continue;
                    }
                    // Un-share only if something is actually new.
                    if facts.iter().any(|f| !entry.contains(f)) {
                        let set = Arc::make_mut(entry);
                        for f in facts.iter() {
                            if set.insert(f.clone()) {
                                added += 1;
                            }
                        }
                        self.index_cache_mut().remove(pred);
                    }
                }
            }
        }
        added
    }

    /// Is `self` a subset of `other` (pointwise)?
    pub fn is_subset(&self, other: &Interp) -> bool {
        self.preds.iter().all(|(pred, facts)| {
            other
                .preds
                .get(pred)
                .is_some_and(|o| Arc::ptr_eq(facts, o) || facts.is_subset(o))
                || facts.is_empty()
        })
    }

    /// Iterate every fact.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Vec<Value>)> {
        self.preds
            .iter()
            .flat_map(|(p, fs)| fs.iter().map(move |f| (p.as_str(), f)))
    }

    /// Extract a predicate's facts as a [`Relation`] of tuple values
    /// (unary facts become bare values).
    pub fn to_relation(&self, pred: &str) -> Relation {
        Relation::from_values(self.facts(pred).map(|args| args_tuple(args)))
    }

    /// Remove all facts of one predicate.
    pub fn clear_pred(&mut self, pred: &str) {
        self.preds.remove(pred);
        self.index_cache_mut().remove(pred);
    }
}

impl fmt::Display for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pred, facts) in &self.preds {
            for args in facts.iter() {
                write!(f, "{pred}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

/// Convert a relation member into a fact argument vector: tuples spread
/// into columns, other values become a single column.
pub fn tuple_args(v: &Value) -> Vec<Value> {
    match v {
        Value::Tuple(items) => items.clone(),
        other => vec![other.clone()],
    }
}

/// Inverse of [`tuple_args`]: a 1-column fact is a bare value, wider facts
/// are tuples.
pub fn args_tuple(args: &[Value]) -> Value {
    if args.len() == 1 {
        args[0].clone()
    } else {
        Value::Tuple(args.to_vec())
    }
}

/// A three-valued interpretation: certain facts (true) and possible facts
/// (true or undefined); everything else is false. This is the paper's
/// `(T, F, undefined)` partition over the materialized fact window.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct ThreeValued {
    /// Certainly-true facts (the paper's `T`).
    pub certain: Interp,
    /// Possibly-true facts (complement of the paper's `F` within the
    /// window); invariant: `certain ⊆ possible`.
    pub possible: Interp,
}

impl ThreeValued {
    /// A fully-two-valued interpretation (no unknowns).
    pub fn exact(i: Interp) -> Self {
        ThreeValued {
            certain: i.clone(),
            possible: i,
        }
    }

    /// Three-valued truth of a fact.
    pub fn truth(&self, pred: &str, args: &[Value]) -> Truth {
        if self.certain.holds(pred, args) {
            Truth::True
        } else if self.possible.holds(pred, args) {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    /// Truth of an atom given ground argument values, by name.
    pub fn truth_of(&self, atom: &Atom, args: &[Value]) -> Truth {
        self.truth(&atom.pred, args)
    }

    /// Is the whole interpretation two-valued? This is the paper's
    /// *well-definedness*: the program has an initial valid model iff the
    /// valid interpretation is total on the observables (Definition 2.2
    /// and the discussion in Section 3.2).
    pub fn is_exact(&self) -> bool {
        self.certain == self.possible
    }

    /// The undefined facts (possible but not certain).
    pub fn unknown_facts(&self) -> Vec<Fact> {
        self.possible
            .iter()
            .filter(|(p, args)| !self.certain.holds(p, args))
            .map(|(p, args)| (p.to_string(), args.clone()))
            .collect()
    }

    /// Number of undefined facts.
    pub fn unknown_count(&self) -> usize {
        self.possible.total() - self.certain.total()
    }

    /// Check the representation invariant.
    pub fn invariant_holds(&self) -> bool {
        self.certain.is_subset(&self.possible)
    }
}

impl fmt::Display for ThreeValued {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- certain --")?;
        write!(f, "{}", self.certain)?;
        let unknowns = self.unknown_facts();
        if !unknowns.is_empty() {
            writeln!(f, "-- unknown --")?;
            for (p, args) in unknowns {
                write!(f, "{p}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, ")?")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    #[test]
    fn insert_and_holds() {
        let mut m = Interp::new();
        assert!(m.insert("p", vec![i(1)]));
        assert!(!m.insert("p", vec![i(1)]));
        assert!(m.holds("p", &[i(1)]));
        assert!(!m.holds("p", &[i(2)]));
        assert!(!m.holds("q", &[i(1)]));
        assert_eq!(m.count("p"), 1);
        assert_eq!(m.total(), 1);
    }

    #[test]
    fn remove_deletes_and_invalidates() {
        let mut m = Interp::new();
        m.insert("p", vec![i(1), i(2)]);
        m.insert("p", vec![i(3), i(4)]);
        let _ = m.first_index("p");
        assert!(m.has_first_index("p"));
        assert!(m.remove("p", &[i(1), i(2)]));
        assert!(!m.remove("p", &[i(1), i(2)]));
        assert!(!m.has_first_index("p"), "index invalidated");
        assert!(!m.holds("p", &[i(1), i(2)]));
        assert!(m.holds("p", &[i(3), i(4)]));
        assert!(m.remove("p", &[i(3), i(4)]));
        // Emptied predicate disappears entirely.
        assert_eq!(m.preds().count(), 0);
        assert!(!m.remove("q", &[i(1)]));
    }

    #[test]
    fn from_database_spreads_tuples() {
        let db = Database::new()
            .with("e", Relation::from_pairs([(i(1), i(2))]))
            .with("u", Relation::from_values([i(7)]));
        let m = Interp::from_database(&db);
        assert!(m.holds("e", &[i(1), i(2)]));
        assert!(m.holds("u", &[i(7)]));
    }

    #[test]
    fn to_relation_round_trip() {
        let db = Database::new().with("e", Relation::from_pairs([(i(1), i(2)), (i(2), i(3))]));
        let m = Interp::from_database(&db);
        assert_eq!(&m.to_relation("e"), db.get("e").unwrap());
    }

    #[test]
    fn absorb_counts_new() {
        let mut a = Interp::new();
        a.insert("p", vec![i(1)]);
        let mut b = Interp::new();
        b.insert("p", vec![i(1)]);
        b.insert("p", vec![i(2)]);
        b.insert("q", vec![i(3)]);
        assert_eq!(a.absorb(&b), 2);
        assert_eq!(a.total(), 3);
        assert!(b.is_subset(&a));
    }

    #[test]
    fn subset_checks() {
        let mut a = Interp::new();
        a.insert("p", vec![i(1)]);
        let mut b = a.clone();
        b.insert("p", vec![i(2)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(Interp::new().is_subset(&a));
    }

    #[test]
    fn three_valued_truth() {
        let mut certain = Interp::new();
        certain.insert("p", vec![i(1)]);
        let mut possible = certain.clone();
        possible.insert("p", vec![i(2)]);
        let tv = ThreeValued { certain, possible };
        assert!(tv.invariant_holds());
        assert_eq!(tv.truth("p", &[i(1)]), Truth::True);
        assert_eq!(tv.truth("p", &[i(2)]), Truth::Unknown);
        assert_eq!(tv.truth("p", &[i(3)]), Truth::False);
        assert!(!tv.is_exact());
        assert_eq!(tv.unknown_count(), 1);
        assert_eq!(tv.unknown_facts(), vec![("p".to_string(), vec![i(2)])]);
    }

    #[test]
    fn exact_three_valued() {
        let mut m = Interp::new();
        m.insert("p", vec![i(1)]);
        let tv = ThreeValued::exact(m);
        assert!(tv.is_exact());
        assert_eq!(tv.unknown_count(), 0);
    }

    #[test]
    fn args_tuple_round_trip() {
        assert_eq!(args_tuple(&[i(1)]), i(1));
        assert_eq!(args_tuple(&[i(1), i(2)]), Value::pair(i(1), i(2)));
        assert_eq!(tuple_args(&Value::pair(i(1), i(2))), vec![i(1), i(2)]);
        assert_eq!(tuple_args(&i(5)), vec![i(5)]);
    }

    #[test]
    fn first_index_probes_and_invalidates() {
        let mut m = Interp::new();
        m.insert("e", vec![i(1), i(2)]);
        m.insert("e", vec![i(1), i(3)]);
        m.insert("e", vec![i(2), i(3)]);
        let idx = m.first_index("e");
        assert_eq!(idx.probe(&i(1)).count(), 2);
        assert_eq!(idx.probe(&i(9)).count(), 0);
        assert!(Arc::ptr_eq(&idx, &m.first_index("e")));
        m.insert("e", vec![i(9), i(9)]);
        let idx2 = m.first_index("e");
        assert!(!Arc::ptr_eq(&idx, &idx2));
        assert_eq!(idx2.probe(&i(9)).count(), 1);
        // Probing one predicate must not see another's facts.
        assert_eq!(m.first_index("p").probe(&i(1)).count(), 0);
    }

    #[test]
    fn first_index_agrees_with_range_probe() {
        let mut m = Interp::new();
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            m.insert("e", vec![i(a), i(b)]);
        }
        for key in 0..4 {
            let via_index: Vec<Vec<Value>> = m.first_index("e").probe(&i(key)).cloned().collect();
            let via_range: Vec<Vec<Value>> = m.facts_with_first("e", &i(key)).cloned().collect();
            assert_eq!(via_index, via_range, "key {key}");
        }
    }

    #[test]
    fn index_cache_invisible_to_equality_and_clone() {
        let mut a = Interp::new();
        a.insert("p", vec![i(1)]);
        let b = a.clone();
        let _ = a.first_index("p");
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c.first_index("p").probe(&i(1)).count(), 1);
    }

    #[test]
    fn display_facts() {
        let mut m = Interp::new();
        m.insert("p", vec![i(1), i(2)]);
        assert_eq!(m.to_string(), "p(1, 2).\n");
    }
}
