//! Deductive programs with negation over complex objects — the deduction
//! side of *"On the Power of Algebras with Recursion"* (Beeri & Milo,
//! SIGMOD 1993).
//!
//! The crate implements the paper's deductive query language (Section 4):
//! Horn clauses with negated atoms and interpreted functions on the
//! domains, evaluated under every semantics the paper touches —
//! minimal-model (naive and semi-naive), stratified, inflationary,
//! well-founded, the paper's **valid** computation (Section 2.2), its
//! stable-completion extension, and stable models. Safety is checked
//! against Definition 4.1's range formulas, and Proposition 4.2's
//! domain-independence transform is provided.
//!
//! # Quick example
//!
//! The WIN/MOVE game of Section 3.2:
//!
//! ```
//! use algrec_datalog::{evaluate, parser::parse_program, Semantics};
//! use algrec_value::{Budget, Database, Relation, Truth, Value};
//!
//! let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
//! let db = Database::new().with(
//!     "move",
//!     Relation::from_pairs([
//!         (Value::int(1), Value::int(2)),
//!         (Value::int(2), Value::int(3)),
//!     ]),
//! );
//! let out = evaluate(&program, &db, Semantics::Valid, Budget::SMALL).unwrap();
//! assert_eq!(out.model.truth("win", &[Value::int(2)]), Truth::True);
//! assert_eq!(out.model.truth("win", &[Value::int(1)]), Truth::False);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub(crate) mod compiled;
pub mod engine;
pub mod error;
pub mod explain;
pub mod facts;
pub mod fixpoint;
pub mod inflationary;
pub mod interp;
pub mod parser;
pub mod safety;
pub mod semantics;
pub mod stable;
pub mod stratify;
pub mod wellfounded;

pub use ast::{Atom, CmpOp, Expr, Func, Literal, Program, Rule};
pub use error::EvalError;
pub use explain::explain_program;
pub use facts::{load_facts, parse_fact, parse_facts};
pub use interp::{Fact, Interp, ThreeValued};
pub use semantics::{evaluate, evaluate_traced, stable_models_of, EvalOutcome, Semantics};
