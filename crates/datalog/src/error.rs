//! Errors produced by the deduction engine.

use algrec_value::BudgetError;
use std::fmt;

/// Any failure of program analysis or evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A resource budget was exhausted (the finite window into a possibly
    /// infinite model was too small — see `algrec_value::Budget`).
    Budget(BudgetError),
    /// A dynamic type error in an interpreted function or comparison.
    Type(String),
    /// A rule body could not be put into an evaluable order — it violates
    /// the safety restrictions (Definition 4.1). The string names the rule
    /// and the stuck literal.
    Unsafe(String),
    /// The program is not stratified, but a stratified evaluation was
    /// requested (Theorem 4.3's hypothesis fails; use the valid,
    /// well-founded or inflationary semantics instead).
    NotStratified(String),
    /// Stable-model enumeration over the residual program would need to
    /// branch on more undefined atoms than the configured cap.
    TooManyUnknowns {
        /// Undefined atoms found.
        found: usize,
        /// Configured cap.
        cap: usize,
    },
    /// The program has no stable model (e.g. `p :- not p.`).
    NoStableModel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Budget(b) => write!(f, "budget: {b}"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::Unsafe(m) => write!(f, "unsafe rule: {m}"),
            EvalError::NotStratified(m) => write!(f, "program is not stratified: {m}"),
            EvalError::TooManyUnknowns { found, cap } => write!(
                f,
                "stable-model search over {found} undefined atoms exceeds cap {cap}"
            ),
            EvalError::NoStableModel => write!(f, "program has no stable model"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BudgetError> for EvalError {
    fn from(b: BudgetError) -> Self {
        EvalError::Budget(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EvalError::Type("bad".into()).to_string().contains("bad"));
        assert!(EvalError::Unsafe("r".into()).to_string().contains("unsafe"));
        assert!(EvalError::NotStratified("win".into())
            .to_string()
            .contains("stratified"));
        assert!(EvalError::TooManyUnknowns { found: 30, cap: 16 }
            .to_string()
            .contains("30"));
        assert!(EvalError::NoStableModel.to_string().contains("stable"));
        let b: EvalError = BudgetError::Iterations(3).into();
        assert!(b.to_string().contains("budget"));
    }
}
