//! Algebraic simplification.
//!
//! The machine-generated expressions of the Proposition 6.1 translation
//! (and of definition inlining) are deeply nested: seeds like `{[]}`,
//! chained selections, and stacked MAPs. This module applies the classical
//! sound rewrites:
//!
//! | rewrite | soundness note |
//! |---|---|
//! | `e ∪ ∅ → e`, `∅ ∪ e → e`, `e ∪ e → e` | union is idempotent pointwise, also three-valued |
//! | `e − ∅ → e`, `∅ − e → ∅` | |
//! | `∅ × e → ∅`, `e × ∅ → ∅` | |
//! | `σ_true(e) → e`, `σ_false(e) → ∅` | |
//! | `σ_t2(σ_t1(e)) → σ_{t1 ∧ t2}(e)` | one pass over the set |
//! | `MAP_x(e) → e` | identity restructuring |
//! | `MAP_g(MAP_f(e)) → MAP_{g∘f}(e)` | [`FuncExpr::compose`] |
//! | `MAP_f({v…})`, `σ_t({v…})` → constant fold | only when every application succeeds |
//!
//! Deliberately **absent**: `e − e → ∅`. Under the three-valued valid
//! semantics a set with unknown members satisfies `(e − e)` = "unknown on
//! the unknowns" (lower = `lower − upper`, upper = `upper − lower`), so
//! the rewrite is unsound for expressions mentioning recursive constants.
//!
//! The rewrites preserve the three-valued semantics of
//! [`crate::valid_eval`] (checked by property tests in `tests/`).

use crate::expr::{AlgExpr, FuncExpr};
use std::collections::BTreeSet;

impl FuncExpr {
    /// `self ∘ f`: replace the element `x` inside `self` by `f`.
    pub fn compose(&self, f: &FuncExpr) -> FuncExpr {
        match self {
            FuncExpr::Elem => f.clone(),
            FuncExpr::Lit(v) => FuncExpr::Lit(v.clone()),
            FuncExpr::Tuple(items) => FuncExpr::Tuple(items.iter().map(|e| e.compose(f)).collect()),
            FuncExpr::Proj(e, i) => FuncExpr::Proj(Box::new(e.compose(f)), *i),
            FuncExpr::App(op, items) => {
                FuncExpr::App(*op, items.iter().map(|e| e.compose(f)).collect())
            }
            FuncExpr::Cmp(op, l, r) => {
                FuncExpr::Cmp(*op, Box::new(l.compose(f)), Box::new(r.compose(f)))
            }
            FuncExpr::And(l, r) => FuncExpr::And(Box::new(l.compose(f)), Box::new(r.compose(f))),
            FuncExpr::Or(l, r) => FuncExpr::Or(Box::new(l.compose(f)), Box::new(r.compose(f))),
            FuncExpr::Not(e) => FuncExpr::Not(Box::new(e.compose(f))),
        }
    }
}

fn is_empty_lit(e: &AlgExpr) -> bool {
    matches!(e, AlgExpr::Lit(items) if items.is_empty())
}

fn empty() -> AlgExpr {
    AlgExpr::Lit(BTreeSet::new())
}

/// One bottom-up simplification pass.
fn pass(e: &AlgExpr) -> AlgExpr {
    match e {
        AlgExpr::Name(_) | AlgExpr::Lit(_) => e.clone(),
        AlgExpr::Union(a, b) => {
            let (a, b) = (pass(a), pass(b));
            if is_empty_lit(&a) {
                b
            } else if is_empty_lit(&b) || a == b {
                a
            } else if let (AlgExpr::Lit(x), AlgExpr::Lit(y)) = (&a, &b) {
                AlgExpr::Lit(x.union(y).cloned().collect())
            } else {
                AlgExpr::union(a, b)
            }
        }
        AlgExpr::Diff(a, b) => {
            let (a, b) = (pass(a), pass(b));
            if is_empty_lit(&b) {
                a
            } else if is_empty_lit(&a) {
                empty()
            } else if let (AlgExpr::Lit(x), AlgExpr::Lit(y)) = (&a, &b) {
                AlgExpr::Lit(x.difference(y).cloned().collect())
            } else {
                AlgExpr::diff(a, b)
            }
        }
        AlgExpr::Product(a, b) => {
            let (a, b) = (pass(a), pass(b));
            if is_empty_lit(&a) || is_empty_lit(&b) {
                empty()
            } else {
                AlgExpr::product(a, b)
            }
        }
        AlgExpr::Select(a, t) => {
            let a = pass(a);
            match t {
                FuncExpr::Lit(algrec_value::Value::Bool(true)) => a,
                FuncExpr::Lit(algrec_value::Value::Bool(false)) => empty(),
                _ => match a {
                    // constant fold when every test evaluates
                    AlgExpr::Lit(items) => {
                        let folded: Result<BTreeSet<_>, _> = items
                            .iter()
                            .filter_map(|v| match t.test(v) {
                                Ok(true) => Some(Ok(v.clone())),
                                Ok(false) => None,
                                Err(e) => Some(Err(e)),
                            })
                            .collect();
                        match folded {
                            Ok(set) => AlgExpr::Lit(set),
                            Err(_) => AlgExpr::select(AlgExpr::Lit(items), t.clone()),
                        }
                    }
                    // σ_t2(σ_t1(e)) → σ_{t1 ∧ t2}(e)
                    AlgExpr::Select(inner, t1) => {
                        AlgExpr::select(*inner, FuncExpr::And(Box::new(t1), Box::new(t.clone())))
                    }
                    other => AlgExpr::select(other, t.clone()),
                },
            }
        }
        AlgExpr::Map(a, f) => {
            let a = pass(a);
            if *f == FuncExpr::Elem {
                return a;
            }
            match a {
                AlgExpr::Lit(items) => {
                    let folded: Result<BTreeSet<_>, _> = items.iter().map(|v| f.eval(v)).collect();
                    match folded {
                        Ok(set) => AlgExpr::Lit(set),
                        Err(_) => AlgExpr::map(AlgExpr::Lit(items), f.clone()),
                    }
                }
                // MAP_g(MAP_f(e)) → MAP_{g∘f}(e)
                AlgExpr::Map(inner, f1) => AlgExpr::map(*inner, f.compose(&f1)),
                other => AlgExpr::map(other, f.clone()),
            }
        }
        AlgExpr::Ifp { var, body } => AlgExpr::Ifp {
            var: var.clone(),
            body: Box::new(pass(body)),
        },
        AlgExpr::Apply(name, args) => AlgExpr::Apply(name.clone(), args.iter().map(pass).collect()),
    }
}

/// Simplify an expression to a fixpoint of the rewrite rules.
pub fn simplify(e: &AlgExpr) -> AlgExpr {
    let mut cur = e.clone();
    for _ in 0..32 {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

/// Simplify every definition body and the query of a program.
pub fn simplify_program(p: &crate::program::AlgProgram) -> crate::program::AlgProgram {
    crate::program::AlgProgram {
        defs: p
            .defs
            .iter()
            .map(|d| crate::program::OpDef {
                name: d.name.clone(),
                params: d.params.clone(),
                body: simplify(&d.body),
            })
            .collect(),
        query: simplify(&p.query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncOp};
    use algrec_value::Value;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    #[test]
    fn union_identities() {
        let e = AlgExpr::union(AlgExpr::name("r"), empty());
        assert_eq!(simplify(&e), AlgExpr::name("r"));
        let e2 = AlgExpr::union(empty(), AlgExpr::name("r"));
        assert_eq!(simplify(&e2), AlgExpr::name("r"));
        let e3 = AlgExpr::union(AlgExpr::name("r"), AlgExpr::name("r"));
        assert_eq!(simplify(&e3), AlgExpr::name("r"));
        let e4 = AlgExpr::union(AlgExpr::lit([i(1)]), AlgExpr::lit([i(2)]));
        assert_eq!(simplify(&e4), AlgExpr::lit([i(1), i(2)]));
    }

    #[test]
    fn diff_and_product_identities() {
        assert_eq!(
            simplify(&AlgExpr::diff(AlgExpr::name("r"), empty())),
            AlgExpr::name("r")
        );
        assert_eq!(
            simplify(&AlgExpr::diff(empty(), AlgExpr::name("r"))),
            empty()
        );
        assert_eq!(
            simplify(&AlgExpr::product(empty(), AlgExpr::name("r"))),
            empty()
        );
        assert_eq!(
            simplify(&AlgExpr::diff(
                AlgExpr::lit([i(1), i(2)]),
                AlgExpr::lit([i(2)])
            )),
            AlgExpr::lit([i(1)])
        );
        // e − e is NOT rewritten (three-valued soundness)
        let d = AlgExpr::diff(AlgExpr::name("s"), AlgExpr::name("s"));
        assert_eq!(simplify(&d), d);
    }

    #[test]
    fn select_identities_and_fusion() {
        let tt = FuncExpr::Lit(Value::Bool(true));
        let ff = FuncExpr::Lit(Value::Bool(false));
        assert_eq!(
            simplify(&AlgExpr::select(AlgExpr::name("r"), tt)),
            AlgExpr::name("r")
        );
        assert_eq!(simplify(&AlgExpr::select(AlgExpr::name("r"), ff)), empty());
        let t1 = FuncExpr::Cmp(
            CmpOp::Lt,
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(i(5))),
        );
        let t2 = FuncExpr::Cmp(
            CmpOp::Gt,
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(i(1))),
        );
        let fused = simplify(&AlgExpr::select(
            AlgExpr::select(AlgExpr::name("r"), t1.clone()),
            t2.clone(),
        ));
        assert_eq!(
            fused,
            AlgExpr::select(
                AlgExpr::name("r"),
                FuncExpr::And(Box::new(t1), Box::new(t2))
            )
        );
    }

    #[test]
    fn select_constant_folding() {
        let t = FuncExpr::Cmp(
            CmpOp::Lt,
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(i(2))),
        );
        let e = AlgExpr::select(AlgExpr::lit([i(1), i(2), i(3)]), t);
        assert_eq!(simplify(&e), AlgExpr::lit([i(1)]));
        // folding is skipped when the test would error
        let bad = FuncExpr::Cmp(
            CmpOp::Eq,
            Box::new(FuncExpr::proj(0)),
            Box::new(FuncExpr::Lit(i(1))),
        );
        let e2 = AlgExpr::select(AlgExpr::lit([i(1)]), bad.clone());
        assert_eq!(simplify(&e2), AlgExpr::select(AlgExpr::lit([i(1)]), bad));
    }

    #[test]
    fn map_identities_and_composition() {
        assert_eq!(
            simplify(&AlgExpr::map(AlgExpr::name("r"), FuncExpr::Elem)),
            AlgExpr::name("r")
        );
        let plus1 = FuncExpr::App(FuncOp::Succ, vec![FuncExpr::Elem]);
        let folded = simplify(&AlgExpr::map(AlgExpr::lit([i(1), i(2)]), plus1.clone()));
        assert_eq!(folded, AlgExpr::lit([i(2), i(3)]));
        let stacked = simplify(&AlgExpr::map(
            AlgExpr::map(AlgExpr::name("r"), plus1.clone()),
            plus1.clone(),
        ));
        // MAP_{succ∘succ}
        let composed = FuncExpr::App(FuncOp::Succ, vec![plus1]);
        assert_eq!(stacked, AlgExpr::map(AlgExpr::name("r"), composed));
    }

    #[test]
    fn compose_substitutes_elem() {
        let f = FuncExpr::App(FuncOp::Succ, vec![FuncExpr::Elem]);
        let g = FuncExpr::Tuple(vec![FuncExpr::Elem, FuncExpr::Lit(i(0))]);
        let gf = g.compose(&f);
        assert_eq!(gf.eval(&i(4)).unwrap(), Value::pair(i(5), i(0)));
        // compose through booleans
        let test = FuncExpr::Not(Box::new(FuncExpr::Cmp(
            CmpOp::Eq,
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(i(5))),
        )));
        assert!(!test.compose(&f).test(&i(4)).unwrap());
    }

    #[test]
    fn simplify_preserves_semantics_on_samples() {
        use crate::eval::eval_exact;
        use algrec_value::{Budget, Database, Relation};
        let db = Database::new().with("edge", Relation::from_pairs([(i(1), i(2)), (i(2), i(3))]));
        for src in [
            "query map(map(edge, [x.1, x.0]), x.0);",
            "query select(select(edge, x.0 < 3), x.1 > 1) union {};",
            "query (edge - {}) union ({} * edge);",
            "query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));",
        ] {
            let p = crate::parser::parse_program(src).unwrap();
            let before = eval_exact(&p, &db, Budget::SMALL).unwrap();
            let simplified = simplify_program(&p);
            let after = eval_exact(&simplified, &db, Budget::SMALL).unwrap();
            assert_eq!(before, after, "{src}");
        }
    }

    #[test]
    fn simplify_program_touches_defs() {
        let p = crate::parser::parse_program("def s = s union {}; query s;").unwrap();
        let s = simplify_program(&p);
        assert_eq!(s.defs[0].body, AlgExpr::name("s"));
    }

    #[test]
    fn simplify_inside_ifp_and_apply() {
        let p = crate::parser::parse_expr("ifp(t, t union {})").unwrap();
        assert_eq!(simplify(&p), AlgExpr::ifp("t", AlgExpr::name("t")));
        let a = AlgExpr::Apply(
            "f".into(),
            vec![AlgExpr::union(AlgExpr::name("r"), empty())],
        );
        assert_eq!(
            simplify(&a),
            AlgExpr::Apply("f".into(), vec![AlgExpr::name("r")])
        );
    }
}
