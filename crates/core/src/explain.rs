//! Algebra plans: lowering [`AlgExpr`] trees into the hash-consed plan
//! IR and rendering them for `explain`.
//!
//! The lowering is *structural*: two pointer-distinct but structurally
//! equal subexpressions — as produced in bulk by
//! [`AlgProgram::substitute`](crate::program::AlgProgram) when recursive
//! definitions are inlined — intern to the same [`PlanId`]. The
//! evaluator uses those ids as cache keys when
//! [`EvalOptions::plan`](crate::eval::EvalOptions) is on (shared
//! loop-invariant values and join indexes across copies), and `explain`
//! renders the arena with shared nodes cross-referenced, making the
//! common-subexpression structure visible.

use crate::expr::AlgExpr;
use crate::program::AlgProgram;
use algrec_plan::{PlanArena, PlanId};
use algrec_value::Database;
use std::collections::HashMap;

/// Intern `e` (and its whole subtree) into `arena`, memoizing by node
/// address in `keys` so repeated lowering of a shared subtree is O(1).
///
/// Labels are chosen injectively per structural shape (names, rendered
/// selection/map functions, fixpoint variables), so two expressions
/// receive the same [`PlanId`] iff they are structurally equal. When
/// `db` is provided, relation leaves are annotated with their row counts
/// (for rendering only — the evaluator lowers without a database, so
/// cache keys never depend on data).
pub(crate) fn lower_expr(
    e: &AlgExpr,
    arena: &mut PlanArena,
    keys: &mut HashMap<usize, PlanId>,
    db: Option<&Database>,
) -> PlanId {
    let ptr = e as *const AlgExpr as usize;
    if let Some(&id) = keys.get(&ptr) {
        return id;
    }
    let id = match e {
        AlgExpr::Name(n) => match db.and_then(|db| db.get(n)) {
            Some(rel) => arena.leaf("scan", format!("{n} ({} rows)", rel.len())),
            None => arena.leaf("name", n.clone()),
        },
        AlgExpr::Lit(_) => arena.leaf("lit", e.to_string()),
        AlgExpr::Union(a, b) => {
            let ca = lower_expr(a, arena, keys, db);
            let cb = lower_expr(b, arena, keys, db);
            arena.node("union", "", vec![ca, cb])
        }
        AlgExpr::Diff(a, b) => {
            let ca = lower_expr(a, arena, keys, db);
            let cb = lower_expr(b, arena, keys, db);
            arena.node("diff", "", vec![ca, cb])
        }
        AlgExpr::Product(a, b) => {
            let ca = lower_expr(a, arena, keys, db);
            let cb = lower_expr(b, arena, keys, db);
            arena.node("product", "", vec![ca, cb])
        }
        AlgExpr::Select(a, t) => {
            let ca = lower_expr(a, arena, keys, db);
            arena.node("select", t.to_string(), vec![ca])
        }
        AlgExpr::Map(a, f) => {
            let ca = lower_expr(a, arena, keys, db);
            arena.node("map", f.to_string(), vec![ca])
        }
        AlgExpr::Ifp { var, body } => {
            let cb = lower_expr(body, arena, keys, db);
            arena.node("fix", var.clone(), vec![cb])
        }
        AlgExpr::Apply(name, args) => {
            let children = args
                .iter()
                .map(|a| lower_expr(a, arena, keys, db))
                .collect();
            arena.node("apply", name.clone(), children)
        }
    };
    keys.insert(ptr, id);
    id
}

/// Render the plan of every definition and the query of `program`
/// against `db`: relation leaves carry row counts, and subplans shared
/// across definitions (hash-consed) are cross-referenced instead of
/// duplicated.
pub fn explain_program(program: &AlgProgram, db: &Database) -> String {
    let mut arena = PlanArena::new();
    let mut keys = HashMap::new();
    let mut roots = Vec::with_capacity(program.defs.len() + 1);
    for def in &program.defs {
        roots.push((
            format!("def {}", def.name),
            lower_expr(&def.body, &mut arena, &mut keys, Some(db)),
        ));
    }
    roots.push((
        "query".to_string(),
        lower_expr(&program.query, &mut arena, &mut keys, Some(db)),
    ));
    arena.render(&roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use algrec_value::{Relation, Value};

    #[test]
    fn win_plan_shows_fixpoint_and_scans() {
        let program =
            parse_program("def win = map(move - (map(move, x.0) * win), x.0); query win;").unwrap();
        let db = Database::new().with(
            "move",
            Relation::from_pairs([(Value::int(1), Value::int(2))]),
        );
        let text = explain_program(&program, &db);
        assert!(text.contains("scan move (1 rows)"), "{text}");
        assert!(text.contains("map"), "{text}");
        assert!(text.contains("def win"), "{text}");
        assert!(text.contains("query"), "{text}");
    }

    #[test]
    fn structurally_equal_subplans_are_shared() {
        let program = parse_program("def a = map(move, x.0) * map(move, x.0); query a;").unwrap();
        let db = Database::new().with(
            "move",
            Relation::from_pairs([(Value::int(1), Value::int(2))]),
        );
        let text = explain_program(&program, &db);
        // `map(move, x.0)` occurs twice structurally: rendered once, then
        // cross-referenced.
        assert!(text.contains("shared #"), "{text}");
    }

    #[test]
    fn lowering_is_structural_not_positional() {
        let program = parse_program("query (move * move) - (move * move);").unwrap();
        let mut arena = PlanArena::new();
        let mut keys = HashMap::new();
        let AlgExpr::Diff(a, b) = &program.query else {
            panic!("expected diff");
        };
        let ia = lower_expr(a, &mut arena, &mut keys, None);
        let ib = lower_expr(b, &mut arena, &mut keys, None);
        assert_eq!(ia, ib, "pointer-distinct twins share one plan id");
    }
}
