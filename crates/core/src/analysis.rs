//! Program analyses: language classification, monotonicity, and the
//! Proposition 3.4 equivalence check.

use crate::eval::eval_exact;
use crate::expr::AlgExpr;
use crate::program::{AlgProgram, OpDef};
use crate::valid_eval::eval_valid;
use crate::CoreError;
use algrec_value::{Budget, Database};

/// The languages of Section 3, ordered by expressive power (Theorems 3.5,
/// 4.3 and 6.2 relate them to deduction).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LanguageClass {
    /// No IFP, no recursion: the (non-recursive) algebra.
    Algebra,
    /// IFP with only positive fixpoint-variable occurrences; equivalent
    /// to stratified deduction (Theorem 4.3).
    PositiveIfpAlgebra,
    /// Unrestricted IFP; translates to inflationary deduction (Prop 5.1).
    IfpAlgebra,
    /// Recursive definitions, no IFP: equivalent to general deduction
    /// under the valid semantics (Theorem 6.2).
    AlgebraEq,
    /// Recursive definitions and IFP — no more expressive than
    /// `algebra=` (Corollary 3.6).
    IfpAlgebraEq,
}

impl LanguageClass {
    /// Short display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            LanguageClass::Algebra => "algebra",
            LanguageClass::PositiveIfpAlgebra => "positive IFP-algebra",
            LanguageClass::IfpAlgebra => "IFP-algebra",
            LanguageClass::AlgebraEq => "algebra=",
            LanguageClass::IfpAlgebraEq => "IFP-algebra=",
        }
    }
}

/// Classify a program into the smallest language of the family that
/// contains it.
pub fn classify(program: &AlgProgram) -> LanguageClass {
    let recursive = !program.is_nonrecursive();
    let ifp = program.uses_ifp();
    match (recursive, ifp) {
        (true, true) => LanguageClass::IfpAlgebraEq,
        (true, false) => LanguageClass::AlgebraEq,
        (false, true) => {
            let positive = program.defs.iter().all(|d| d.body.is_positive_ifp())
                && program.query.is_positive_ifp();
            if positive {
                LanguageClass::PositiveIfpAlgebra
            } else {
                LanguageClass::IfpAlgebra
            }
        }
        (false, false) => LanguageClass::Algebra,
    }
}

/// Conservative monotonicity (Definition 3.3): an expression is certainly
/// monotone in `name` if `name` never occurs negatively (the Section 4
/// argument for positive expressions). The property itself is semantic
/// and undecidable; this syntactic check is sound but incomplete.
pub fn is_syntactically_monotone(expr: &AlgExpr, name: &str) -> bool {
    !expr.occurs_negatively(name)
}

/// Outcome of the Proposition 3.4 comparison between the recursive
/// equation `S = exp(S)` (valid semantics) and `IFP_exp` (inflationary).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Prop34Outcome {
    /// Was the body syntactically monotone in the fixpoint variable?
    pub monotone: bool,
    /// Did the two semantics produce the same two-valued set?
    pub agree: bool,
    /// Was the recursive version well-defined (two-valued)?
    pub recursive_well_defined: bool,
}

/// Check Proposition 3.4 on a concrete body and database: "if exp is
/// monotone, then MEM(a, S) = T iff MEM(a, IFP_exp) = T (and same for
/// F)". For non-monotone bodies the proposition's conclusion may fail —
/// `{a} − x` is the paper's witness — and this function reports how.
pub fn prop34_check(
    var: &str,
    body: &AlgExpr,
    db: &Database,
    budget: Budget,
) -> Result<Prop34Outcome, CoreError> {
    let monotone = is_syntactically_monotone(body, var);

    // IFP_exp, inflationary.
    let ifp = AlgProgram::query(AlgExpr::Ifp {
        var: var.to_string(),
        body: Box::new(body.clone()),
    });
    let ifp_result = eval_exact(&ifp, db, budget)?;

    // S = exp(S), valid semantics.
    let mut renamer = std::collections::BTreeMap::new();
    renamer.insert(var.to_string(), AlgExpr::name("s$"));
    let rec = AlgProgram::new(
        [OpDef::constant("s$", body.substitute(&renamer))],
        AlgExpr::name("s$"),
    )?;
    let rec_result = eval_valid(&rec, db, budget)?;

    let recursive_well_defined = rec_result.is_well_defined();
    let agree = recursive_well_defined && rec_result.query.to_exact().as_ref() == Some(&ifp_result);
    Ok(Prop34Outcome {
        monotone,
        agree,
        recursive_well_defined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncExpr, FuncOp};
    use algrec_value::{Relation, Value};

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn tc_body() -> AlgExpr {
        AlgExpr::union(
            AlgExpr::name("edge"),
            AlgExpr::map(
                AlgExpr::select(
                    AlgExpr::product(AlgExpr::name("x"), AlgExpr::name("edge")),
                    FuncExpr::Cmp(
                        CmpOp::Eq,
                        Box::new(FuncExpr::proj(1)),
                        Box::new(FuncExpr::proj(2)),
                    ),
                ),
                FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
            ),
        )
    }

    #[test]
    fn classification() {
        let plain = AlgProgram::query(AlgExpr::name("r"));
        assert_eq!(classify(&plain), LanguageClass::Algebra);

        let pos_ifp = AlgProgram::query(AlgExpr::ifp("x", tc_body()));
        assert_eq!(classify(&pos_ifp), LanguageClass::PositiveIfpAlgebra);

        let neg_ifp = AlgProgram::query(AlgExpr::ifp(
            "x",
            AlgExpr::diff(AlgExpr::lit([i(1)]), AlgExpr::name("x")),
        ));
        assert_eq!(classify(&neg_ifp), LanguageClass::IfpAlgebra);

        let rec = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::name("s"))],
            AlgExpr::name("s"),
        )
        .unwrap();
        assert_eq!(classify(&rec), LanguageClass::AlgebraEq);

        let rec_ifp = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::name("s"))],
            AlgExpr::ifp("x", AlgExpr::name("x")),
        )
        .unwrap();
        assert_eq!(classify(&rec_ifp), LanguageClass::IfpAlgebraEq);
        assert_eq!(classify(&rec_ifp).name(), "IFP-algebra=");
        assert!(LanguageClass::Algebra < LanguageClass::AlgebraEq);
    }

    #[test]
    fn monotonicity_syntactic() {
        assert!(is_syntactically_monotone(&tc_body(), "x"));
        let neg = AlgExpr::diff(AlgExpr::lit([i(1)]), AlgExpr::name("x"));
        assert!(!is_syntactically_monotone(&neg, "x"));
        // x - edge is monotone in x (x occurs positively only)
        let pos_diff = AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("edge"));
        assert!(is_syntactically_monotone(&pos_diff, "x"));
    }

    #[test]
    fn prop34_monotone_body_agrees() {
        let db = Database::new().with(
            "edge",
            Relation::from_pairs([(i(1), i(2)), (i(2), i(3)), (i(3), i(1))]),
        );
        let out = prop34_check("x", &tc_body(), &db, Budget::SMALL).unwrap();
        assert!(out.monotone);
        assert!(out.recursive_well_defined);
        assert!(out.agree);
    }

    #[test]
    fn prop34_nonmonotone_body_diverges() {
        // exp = {a} − x: "IFP_{a}−x = {a} while for S = {a} − S the
        // membership status of a is undefined" (Section 3.2).
        let body = AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("x"));
        let out = prop34_check("x", &body, &Database::new(), Budget::SMALL).unwrap();
        assert!(!out.monotone);
        assert!(!out.recursive_well_defined);
        assert!(!out.agree);
    }

    #[test]
    fn prop34_even_set() {
        // Example 3's Sᵉ body is monotone: S = {0} ∪ MAP₊₂(σ_{<8}(S)).
        let body = AlgExpr::union(
            AlgExpr::lit([i(0)]),
            AlgExpr::map(
                AlgExpr::select(
                    AlgExpr::name("x"),
                    FuncExpr::Cmp(
                        CmpOp::Lt,
                        Box::new(FuncExpr::Elem),
                        Box::new(FuncExpr::Lit(i(8))),
                    ),
                ),
                FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
            ),
        );
        let out = prop34_check("x", &body, &Database::new(), Budget::SMALL).unwrap();
        assert!(out.monotone);
        assert!(out.agree);
    }
}
