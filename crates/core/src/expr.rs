//! The algebra expression language.
//!
//! Section 3.1 of the paper fixes the generic operator set
//! `∪ − × σ_test MAP_f IFP_exp` over sets of arbitrary element type, and
//! Section 3.2 adds named operation definitions. [`AlgExpr`] is that
//! language; [`FuncExpr`] is the first-order sublanguage of element-level
//! *restructuring functions* (for `MAP`) and boolean *selection functions*
//! (for `σ`). Functions are fixed operations, not function variables — the
//! paper's framework "is strictly first order" and treats genericity as
//! macro expansion (Section 3.1).

use algrec_value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Interpreted element-level operations (mirrors the data-type functions
/// the paper allows on the domains).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FuncOp {
    /// Integer successor.
    Succ,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Tuple concatenation with 1-tuple lifting of non-tuples (the value
    /// form of the relational product; used by the deduction-to-algebra
    /// translation of Section 6).
    Concat,
}

impl FuncOp {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            FuncOp::Succ => 1,
            FuncOp::Add | FuncOp::Sub | FuncOp::Mul | FuncOp::Concat => 2,
        }
    }

    /// Apply to values; `None` on type error or overflow.
    pub fn apply(self, args: &[Value]) -> Option<Value> {
        match (self, args) {
            (FuncOp::Succ, [Value::Int(a)]) => Some(Value::Int(a.checked_add(1)?)),
            (FuncOp::Add, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_add(*b)?)),
            (FuncOp::Sub, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_sub(*b)?)),
            (FuncOp::Mul, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.checked_mul(*b)?)),
            (FuncOp::Concat, [a, b]) => {
                let mut items: Vec<Value> = match a {
                    Value::Tuple(t) => t.clone(),
                    other => vec![other.clone()],
                };
                match b {
                    Value::Tuple(t) => items.extend(t.iter().cloned()),
                    other => items.push(other.clone()),
                }
                Some(Value::Tuple(items))
            }
            _ => None,
        }
    }

    /// Printable name.
    pub fn name(self) -> &'static str {
        match self {
            FuncOp::Succ => "succ",
            FuncOp::Add => "add",
            FuncOp::Sub => "sub",
            FuncOp::Mul => "mul",
            FuncOp::Concat => "concat",
        }
    }
}

/// Comparison operators for selection tests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate on two values (the total order on [`Value`]).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Printable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// An element-level expression: a function of the current element `x`
/// (written `x` in concrete syntax). Used as the restructuring function of
/// `MAP` and (with boolean result) as the selection test of `σ`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FuncExpr {
    /// The input element.
    Elem,
    /// A constant value.
    Lit(Value),
    /// Tuple construction.
    Tuple(Vec<FuncExpr>),
    /// Projection `e.i` (0-based) from a tuple.
    Proj(Box<FuncExpr>, usize),
    /// Arithmetic.
    App(FuncOp, Vec<FuncExpr>),
    /// Comparison (boolean result).
    Cmp(CmpOp, Box<FuncExpr>, Box<FuncExpr>),
    /// Conjunction (boolean operands).
    And(Box<FuncExpr>, Box<FuncExpr>),
    /// Disjunction.
    Or(Box<FuncExpr>, Box<FuncExpr>),
    /// Negation of a boolean.
    Not(Box<FuncExpr>),
}

/// A dynamic type error in the element sublanguage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

impl FuncExpr {
    /// Projection helper `x.i`.
    pub fn proj(i: usize) -> Self {
        FuncExpr::Proj(Box::new(FuncExpr::Elem), i)
    }

    /// Evaluate on an element.
    pub fn eval(&self, x: &Value) -> Result<Value, TypeError> {
        match self {
            FuncExpr::Elem => Ok(x.clone()),
            FuncExpr::Lit(v) => Ok(v.clone()),
            FuncExpr::Tuple(items) => Ok(Value::Tuple(
                items.iter().map(|e| e.eval(x)).collect::<Result<_, _>>()?,
            )),
            FuncExpr::Proj(e, i) => {
                let v = e.eval(x)?;
                match v {
                    Value::Tuple(items) => items
                        .get(*i)
                        .cloned()
                        .ok_or_else(|| TypeError(format!("projection .{i} out of bounds"))),
                    other => Err(TypeError(format!("projection .{i} from non-tuple {other}"))),
                }
            }
            FuncExpr::App(op, items) => {
                let args: Vec<Value> = items.iter().map(|e| e.eval(x)).collect::<Result<_, _>>()?;
                op.apply(&args)
                    .ok_or_else(|| TypeError(format!("{}({args:?})", op.name())))
            }
            FuncExpr::Cmp(op, l, r) => Ok(Value::Bool(op.eval(&l.eval(x)?, &r.eval(x)?))),
            FuncExpr::And(l, r) => match (l.eval(x)?, r.eval(x)?) {
                (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a && b)),
                _ => Err(TypeError("`and` on non-booleans".into())),
            },
            FuncExpr::Or(l, r) => match (l.eval(x)?, r.eval(x)?) {
                (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a || b)),
                _ => Err(TypeError("`or` on non-booleans".into())),
            },
            FuncExpr::Not(e) => match e.eval(x)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(TypeError("`not` on a non-boolean".into())),
            },
        }
    }

    /// Evaluate as a selection test (must produce a boolean).
    pub fn test(&self, x: &Value) -> Result<bool, TypeError> {
        match self.eval(x)? {
            Value::Bool(b) => Ok(b),
            other => Err(TypeError(format!(
                "selection test produced non-boolean {other}"
            ))),
        }
    }
}

impl fmt::Display for FuncExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncExpr::Elem => write!(f, "x"),
            FuncExpr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            FuncExpr::Lit(v) => write!(f, "{v}"),
            FuncExpr::Tuple(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            FuncExpr::Proj(e, i) => write!(f, "{e}.{i}"),
            FuncExpr::App(op, items) => {
                write!(f, "{}(", op.name())?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            FuncExpr::Cmp(op, l, r) => write!(f, "{l} {} {r}", op.symbol()),
            FuncExpr::And(l, r) => write!(f, "({l} and {r})"),
            FuncExpr::Or(l, r) => write!(f, "({l} or {r})"),
            FuncExpr::Not(e) => write!(f, "not {e}"),
        }
    }
}

/// An algebra expression (Section 3.1's operators plus Section 3.2's named
/// applications).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AlgExpr {
    /// A named set: a database relation, a defined constant, or — inside
    /// an operation definition — a parameter.
    Name(String),
    /// A set literal `{v₁, …, vₙ}`.
    Lit(BTreeSet<Value>),
    /// Union.
    Union(Box<AlgExpr>, Box<AlgExpr>),
    /// Difference — where negation lives (Section 3.2: "the equation
    /// contains subtraction, hence inversion of T and F for membership").
    Diff(Box<AlgExpr>, Box<AlgExpr>),
    /// Cartesian product (tuple-concatenating, as in the relational
    /// algebra generalization of \[5\]).
    Product(Box<AlgExpr>, Box<AlgExpr>),
    /// Selection `σ_test`.
    Select(Box<AlgExpr>, FuncExpr),
    /// Restructuring `MAP_f`.
    Map(Box<AlgExpr>, FuncExpr),
    /// Inflationary fixed point `IFP_{x. body}`: starting from the empty
    /// set, repeatedly apply `body` to the accumulation and accumulate.
    Ifp {
        /// The fixpoint variable.
        var: String,
        /// The body, over `var`.
        body: Box<AlgExpr>,
    },
    /// Application of a defined operation (Section 3.2).
    Apply(String, Vec<AlgExpr>),
}

impl AlgExpr {
    /// Named-set constructor.
    pub fn name(n: impl Into<String>) -> Self {
        AlgExpr::Name(n.into())
    }

    /// Set-literal constructor.
    pub fn lit(items: impl IntoIterator<Item = Value>) -> Self {
        AlgExpr::Lit(items.into_iter().collect())
    }

    /// Union helper.
    pub fn union(a: AlgExpr, b: AlgExpr) -> Self {
        AlgExpr::Union(Box::new(a), Box::new(b))
    }

    /// Difference helper.
    pub fn diff(a: AlgExpr, b: AlgExpr) -> Self {
        AlgExpr::Diff(Box::new(a), Box::new(b))
    }

    /// Product helper.
    pub fn product(a: AlgExpr, b: AlgExpr) -> Self {
        AlgExpr::Product(Box::new(a), Box::new(b))
    }

    /// Selection helper.
    pub fn select(a: AlgExpr, test: FuncExpr) -> Self {
        AlgExpr::Select(Box::new(a), test)
    }

    /// Map helper.
    pub fn map(a: AlgExpr, f: FuncExpr) -> Self {
        AlgExpr::Map(Box::new(a), f)
    }

    /// IFP helper.
    pub fn ifp(var: impl Into<String>, body: AlgExpr) -> Self {
        AlgExpr::Ifp {
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// All names referenced (relations, constants, parameters, applied
    /// operations), free of IFP binders.
    pub fn names(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_names(&mut Vec::new(), &mut out);
        out
    }

    fn collect_names<'a>(&'a self, bound: &mut Vec<&'a str>, out: &mut BTreeSet<&'a str>) {
        match self {
            AlgExpr::Name(n) => {
                if !bound.contains(&n.as_str()) {
                    out.insert(n);
                }
            }
            AlgExpr::Lit(_) => {}
            AlgExpr::Union(a, b) | AlgExpr::Diff(a, b) | AlgExpr::Product(a, b) => {
                a.collect_names(bound, out);
                b.collect_names(bound, out);
            }
            AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => a.collect_names(bound, out),
            AlgExpr::Ifp { var, body } => {
                bound.push(var);
                body.collect_names(bound, out);
                bound.pop();
            }
            AlgExpr::Apply(name, args) => {
                out.insert(name);
                args.iter().for_each(|a| a.collect_names(bound, out));
            }
        }
    }

    /// Does `name` occur *negatively* (under an odd number of
    /// difference-right-sides)? The positive IFP-algebra of Theorem 4.3 is
    /// the fragment where the fixpoint variable never occurs negatively.
    pub fn occurs_negatively(&self, name: &str) -> bool {
        self.polarity_scan(name, false).1
    }

    /// Does `name` occur positively?
    pub fn occurs_positively(&self, name: &str) -> bool {
        self.polarity_scan(name, false).0
    }

    /// Returns (occurs at even diff-nesting, occurs at odd diff-nesting),
    /// starting from `negated` polarity. Crate-visible: the evaluator's
    /// loop-invariant detection needs polarity-aware occurrence checks
    /// from both polarity starts.
    pub(crate) fn polarity_scan(&self, name: &str, negated: bool) -> (bool, bool) {
        match self {
            AlgExpr::Name(n) => {
                if n == name {
                    (!negated, negated)
                } else {
                    (false, false)
                }
            }
            AlgExpr::Lit(_) => (false, false),
            AlgExpr::Union(a, b) | AlgExpr::Product(a, b) => {
                let (p1, n1) = a.polarity_scan(name, negated);
                let (p2, n2) = b.polarity_scan(name, negated);
                (p1 || p2, n1 || n2)
            }
            AlgExpr::Diff(a, b) => {
                let (p1, n1) = a.polarity_scan(name, negated);
                let (p2, n2) = b.polarity_scan(name, !negated);
                (p1 || p2, n1 || n2)
            }
            AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => a.polarity_scan(name, negated),
            AlgExpr::Ifp { var, body } => {
                if var == name {
                    (false, false)
                } else {
                    body.polarity_scan(name, negated)
                }
            }
            AlgExpr::Apply(_, args) => {
                // Conservative: arguments of an applied operation may be
                // used with either polarity inside its body.
                let mut pos = false;
                let mut neg = false;
                for a in args {
                    let (p1, n1) = a.polarity_scan(name, negated);
                    let (p2, n2) = a.polarity_scan(name, !negated);
                    pos |= p1 || p2;
                    neg |= n1 || n2;
                }
                (pos, neg)
            }
        }
    }

    /// Is this expression in the **positive IFP-algebra** (every IFP body
    /// uses its fixpoint variable only positively — such bodies "are
    /// certainly monotone", Section 4)?
    pub fn is_positive_ifp(&self) -> bool {
        match self {
            AlgExpr::Name(_) | AlgExpr::Lit(_) => true,
            AlgExpr::Union(a, b) | AlgExpr::Diff(a, b) | AlgExpr::Product(a, b) => {
                a.is_positive_ifp() && b.is_positive_ifp()
            }
            AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => a.is_positive_ifp(),
            AlgExpr::Ifp { var, body } => !body.occurs_negatively(var) && body.is_positive_ifp(),
            AlgExpr::Apply(_, args) => args.iter().all(AlgExpr::is_positive_ifp),
        }
    }

    /// Does the expression contain an IFP operator?
    pub fn uses_ifp(&self) -> bool {
        match self {
            AlgExpr::Name(_) | AlgExpr::Lit(_) => false,
            AlgExpr::Union(a, b) | AlgExpr::Diff(a, b) | AlgExpr::Product(a, b) => {
                a.uses_ifp() || b.uses_ifp()
            }
            AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => a.uses_ifp(),
            AlgExpr::Ifp { .. } => true,
            AlgExpr::Apply(_, args) => args.iter().any(AlgExpr::uses_ifp),
        }
    }

    /// Substitute expressions for names (used by definition inlining;
    /// capture is impossible because IFP variables shadow).
    pub fn substitute(&self, map: &std::collections::BTreeMap<String, AlgExpr>) -> AlgExpr {
        match self {
            AlgExpr::Name(n) => map.get(n).cloned().unwrap_or_else(|| self.clone()),
            AlgExpr::Lit(_) => self.clone(),
            AlgExpr::Union(a, b) => AlgExpr::union(a.substitute(map), b.substitute(map)),
            AlgExpr::Diff(a, b) => AlgExpr::diff(a.substitute(map), b.substitute(map)),
            AlgExpr::Product(a, b) => AlgExpr::product(a.substitute(map), b.substitute(map)),
            AlgExpr::Select(a, t) => AlgExpr::select(a.substitute(map), t.clone()),
            AlgExpr::Map(a, f) => AlgExpr::map(a.substitute(map), f.clone()),
            AlgExpr::Ifp { var, body } => {
                let mut inner = map.clone();
                inner.remove(var); // shadowed
                AlgExpr::Ifp {
                    var: var.clone(),
                    body: Box::new(body.substitute(&inner)),
                }
            }
            AlgExpr::Apply(name, args) => AlgExpr::Apply(
                name.clone(),
                args.iter().map(|a| a.substitute(map)).collect(),
            ),
        }
    }
}

impl fmt::Display for AlgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgExpr::Name(n) => write!(f, "{n}"),
            AlgExpr::Lit(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            AlgExpr::Union(a, b) => write!(f, "({a} union {b})"),
            AlgExpr::Diff(a, b) => write!(f, "({a} - {b})"),
            AlgExpr::Product(a, b) => write!(f, "({a} * {b})"),
            AlgExpr::Select(a, t) => write!(f, "select({a}, {t})"),
            AlgExpr::Map(a, g) => write!(f, "map({a}, {g})"),
            AlgExpr::Ifp { var, body } => write!(f, "ifp({var}, {body})"),
            AlgExpr::Apply(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    #[test]
    fn funcexpr_eval() {
        let x = Value::pair(i(3), i(4));
        assert_eq!(FuncExpr::Elem.eval(&x).unwrap(), x);
        assert_eq!(FuncExpr::proj(0).eval(&x).unwrap(), i(3));
        assert_eq!(FuncExpr::proj(1).eval(&x).unwrap(), i(4));
        assert!(FuncExpr::proj(2).eval(&x).is_err());
        assert!(FuncExpr::proj(0).eval(&i(1)).is_err());
        let plus2 = FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]);
        assert_eq!(plus2.eval(&i(5)).unwrap(), i(7));
        assert!(plus2.eval(&Value::str("a")).is_err());
    }

    #[test]
    fn funcexpr_tests() {
        let lt5 = FuncExpr::Cmp(
            CmpOp::Lt,
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(i(5))),
        );
        assert!(lt5.test(&i(3)).unwrap());
        assert!(!lt5.test(&i(7)).unwrap());
        let both = FuncExpr::And(
            Box::new(lt5.clone()),
            Box::new(FuncExpr::Cmp(
                CmpOp::Gt,
                Box::new(FuncExpr::Elem),
                Box::new(FuncExpr::Lit(i(0))),
            )),
        );
        assert!(both.test(&i(3)).unwrap());
        assert!(!both.test(&i(-1)).unwrap());
        let neither = FuncExpr::Not(Box::new(both.clone()));
        assert!(neither.test(&i(-1)).unwrap());
        let either = FuncExpr::Or(Box::new(lt5), Box::new(neither.clone()));
        assert!(either.test(&i(3)).unwrap());
        // non-boolean test is an error
        assert!(FuncExpr::Elem.test(&i(3)).is_err());
        assert!(FuncExpr::And(
            Box::new(FuncExpr::Elem),
            Box::new(FuncExpr::Lit(Value::Bool(true)))
        )
        .test(&i(1))
        .is_err());
    }

    #[test]
    fn names_and_binding() {
        // ifp(x, edge union map(x, x)) references edge only.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(AlgExpr::name("edge"), AlgExpr::name("x")),
        );
        assert_eq!(e.names().into_iter().collect::<Vec<_>>(), vec!["edge"]);
        let open = AlgExpr::diff(AlgExpr::name("a"), AlgExpr::name("b"));
        assert_eq!(open.names().len(), 2);
    }

    #[test]
    fn polarity() {
        // {a} - x : x occurs negatively.
        let e = AlgExpr::diff(AlgExpr::lit([i(1)]), AlgExpr::name("x"));
        assert!(e.occurs_negatively("x"));
        assert!(!e.occurs_positively("x"));
        // x - y: x positive, y negative.
        let e2 = AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("y"));
        assert!(e2.occurs_positively("x"));
        assert!(!e2.occurs_negatively("x"));
        assert!(e2.occurs_negatively("y"));
        // double negation: x - (y - z): z positive.
        let e3 = AlgExpr::diff(
            AlgExpr::name("x"),
            AlgExpr::diff(AlgExpr::name("y"), AlgExpr::name("z")),
        );
        assert!(e3.occurs_positively("z"));
        assert!(!e3.occurs_negatively("z"));
        assert!(e3.occurs_negatively("y"));
    }

    #[test]
    fn positive_ifp_detection() {
        // IFP_{x. edge ∪ π13(x ⋈ edge)} is positive.
        let tc = AlgExpr::ifp(
            "x",
            AlgExpr::union(AlgExpr::name("edge"), AlgExpr::name("x")),
        );
        assert!(tc.is_positive_ifp());
        assert!(tc.uses_ifp());
        // IFP_{x. {a} − x} is not (the Section 4 Example 4 expression).
        let bad = AlgExpr::ifp("x", AlgExpr::diff(AlgExpr::lit([i(1)]), AlgExpr::name("x")));
        assert!(!bad.is_positive_ifp());
        assert!(!AlgExpr::name("r").uses_ifp());
    }

    #[test]
    fn substitution_respects_shadowing() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("x".to_string(), AlgExpr::name("replaced"));
        let open = AlgExpr::union(AlgExpr::name("x"), AlgExpr::name("y"));
        let sub = open.substitute(&map);
        assert_eq!(
            sub,
            AlgExpr::union(AlgExpr::name("replaced"), AlgExpr::name("y"))
        );
        // under ifp(x, …) the binder shadows
        let shadowed = AlgExpr::ifp("x", AlgExpr::name("x"));
        assert_eq!(shadowed.substitute(&map), shadowed);
    }

    #[test]
    fn display() {
        let e = AlgExpr::map(
            AlgExpr::diff(AlgExpr::name("move"), AlgExpr::name("win")),
            FuncExpr::proj(0),
        );
        assert_eq!(e.to_string(), "map((move - win), x.0)");
        let l = AlgExpr::lit([i(2), i(1)]);
        assert_eq!(l.to_string(), "{1, 2}");
        let s = AlgExpr::select(
            AlgExpr::name("r"),
            FuncExpr::Cmp(
                CmpOp::Eq,
                Box::new(FuncExpr::Elem),
                Box::new(FuncExpr::Lit(i(1))),
            ),
        );
        assert_eq!(s.to_string(), "select(r, x = 1)");
    }

    #[test]
    fn funcop_basics() {
        assert_eq!(FuncOp::Succ.arity(), 1);
        assert_eq!(FuncOp::Add.arity(), 2);
        assert_eq!(FuncOp::Mul.apply(&[i(3), i(4)]), Some(i(12)));
        assert_eq!(FuncOp::Sub.apply(&[i(3), i(4)]), Some(i(-1)));
        assert_eq!(FuncOp::Succ.apply(&[i(i64::MAX)]), None);
        assert_eq!(FuncOp::Add.name(), "add");
        assert_eq!(
            FuncOp::Concat.apply(&[Value::pair(i(1), i(2)), i(3)]),
            Some(Value::tuple([i(1), i(2), i(3)]))
        );
        assert_eq!(FuncOp::Concat.arity(), 2);
        assert_eq!(FuncOp::Concat.name(), "concat");
    }
}
