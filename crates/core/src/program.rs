//! Algebra programs: operation definitions plus a query expression.
//!
//! Section 3.2: "we restrict the language by allowing only operations with
//! input and output parameters of set type to be defined, where for each
//! new operation name fᵢ we have only one equation
//! `fᵢ(x₁, …, xₙ) = exp(x₁, …, xₙ)`, and where exp is an algebraic
//! expression that contains no variables other than x₁, …, xₙ. We do allow
//! recursion." [`AlgProgram`] enforces exactly these restrictions.
//!
//! Non-recursive definitions are "just syntactic sugar" (Section 3.2) and
//! are eliminated by [`AlgProgram::inline`]; recursive definitions are the
//! genuine extension (`algebra=` / `IFP-algebra=`). After inlining, the
//! recursive residue is required to be a system of *set constants*
//! (`S = exp(S, …)`) — the form every construction in the paper produces
//! (WIN, Sᵉ, the `Pᵢᵃ` of Proposition 6.1). A recursive operation with
//! parameters is rejected with a clear error; the paper's own reading of
//! genericity is macro expansion (Section 3.1), so callers instantiate.

use crate::expr::AlgExpr;
use crate::CoreError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One operation definition `name(params…) = body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpDef {
    /// Operation name.
    pub name: String,
    /// Parameter names (set-typed by construction — every variable in
    /// this language denotes a set).
    pub params: Vec<String>,
    /// The defining expression.
    pub body: AlgExpr,
}

impl OpDef {
    /// Construct a definition.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = impl Into<String>>,
        body: AlgExpr,
    ) -> Self {
        OpDef {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            body,
        }
    }

    /// A set-constant definition `name = body`.
    pub fn constant(name: impl Into<String>, body: AlgExpr) -> Self {
        OpDef {
            name: name.into(),
            params: Vec::new(),
            body,
        }
    }
}

impl fmt::Display for OpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.params.is_empty() {
            write!(f, "def {} = {};", self.name, self.body)
        } else {
            write!(
                f,
                "def {}({}) = {};",
                self.name,
                self.params.join(", "),
                self.body
            )
        }
    }
}

/// An algebra program: definitions plus a query expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AlgProgram {
    /// Operation definitions, one equation per name.
    pub defs: Vec<OpDef>,
    /// The query expression.
    pub query: AlgExpr,
}

impl AlgProgram {
    /// A bare query with no definitions.
    pub fn query(query: AlgExpr) -> Self {
        AlgProgram {
            defs: Vec::new(),
            query,
        }
    }

    /// Build and validate (Section 3.2's restrictions): one equation per
    /// name, and each body's free names must be parameters, defined
    /// operations, or external (database) relations.
    pub fn new(defs: impl IntoIterator<Item = OpDef>, query: AlgExpr) -> Result<Self, CoreError> {
        let defs: Vec<OpDef> = defs.into_iter().collect();
        let mut seen = BTreeSet::new();
        for d in &defs {
            if !seen.insert(d.name.clone()) {
                return Err(CoreError::Invalid(format!(
                    "operation `{}` has more than one defining equation",
                    d.name
                )));
            }
            let mut dup = BTreeSet::new();
            for p in &d.params {
                if !dup.insert(p) {
                    return Err(CoreError::Invalid(format!(
                        "operation `{}` repeats parameter `{p}`",
                        d.name
                    )));
                }
            }
        }
        Ok(AlgProgram { defs, query })
    }

    /// Look up a definition.
    pub fn def(&self, name: &str) -> Option<&OpDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// The names of the defined operations.
    pub fn def_names(&self) -> BTreeSet<&str> {
        self.defs.iter().map(|d| d.name.as_str()).collect()
    }

    /// The external (database) relation names: referenced but not defined
    /// and not bound as parameters.
    pub fn external_names(&self) -> BTreeSet<String> {
        let defined = self.def_names();
        let mut out = BTreeSet::new();
        let mut scan = |expr: &AlgExpr, params: &[String]| {
            for n in expr.names() {
                if !defined.contains(n) && !params.iter().any(|p| p == n) {
                    out.insert(n.to_string());
                }
            }
        };
        for d in &self.defs {
            scan(&d.body, &d.params);
        }
        scan(&self.query, &[]);
        out
    }

    /// The set of definitions that are (mutually) recursive: on a cycle in
    /// the call graph.
    pub fn recursive_defs(&self) -> BTreeSet<&str> {
        let names = self.def_names();
        // reachable(d) = defs reachable from d's body
        let direct: BTreeMap<&str, BTreeSet<&str>> = self
            .defs
            .iter()
            .map(|d| {
                let calls: BTreeSet<&str> = d
                    .body
                    .names()
                    .into_iter()
                    .filter(|n| names.contains(n) && !d.params.iter().any(|p| p == n))
                    .collect();
                (d.name.as_str(), calls)
            })
            .collect();
        let mut recursive = BTreeSet::new();
        for d in &self.defs {
            // BFS from d's callees; recursive iff d reachable.
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut frontier: Vec<&str> = direct[d.name.as_str()].iter().copied().collect();
            while let Some(n) = frontier.pop() {
                if n == d.name {
                    recursive.insert(d.name.as_str());
                    break;
                }
                if seen.insert(n) {
                    if let Some(next) = direct.get(n) {
                        frontier.extend(next.iter().copied());
                    }
                }
            }
        }
        recursive
    }

    /// Is this a plain-`algebra`/`IFP-algebra` program (no recursion)?
    pub fn is_nonrecursive(&self) -> bool {
        self.recursive_defs().is_empty()
    }

    /// Does the program (after inlining) use the IFP operator? Programs
    /// without IFP and without recursion are in the plain `algebra`;
    /// adding IFP gives `IFP-algebra`; adding recursion gives `algebra=` /
    /// `IFP-algebra=` (Section 3).
    pub fn uses_ifp(&self) -> bool {
        self.defs.iter().any(|d| d.body.uses_ifp()) || self.query.uses_ifp()
    }

    /// Inline every *non-recursive* definition (pure macro expansion —
    /// "the extension is then just a convenience for modular programming",
    /// Section 3.2). The result contains only recursive definitions, all
    /// of which must be set constants; a recursive definition with
    /// parameters is reported as unsupported.
    pub fn inline(&self) -> Result<AlgProgram, CoreError> {
        let recursive = self.recursive_defs();
        for d in &self.defs {
            if recursive.contains(d.name.as_str()) && !d.params.is_empty() {
                return Err(CoreError::Unsupported(format!(
                    "recursive operation `{}` has parameters; instantiate it per call site \
                     (the paper's genericity-as-macro-expansion, Section 3.1) or rewrite it \
                     as a system of set constants",
                    d.name
                )));
            }
        }
        // Repeatedly expand applications of non-recursive defs until none
        // remain. Termination: the call graph restricted to non-recursive
        // defs is acyclic.
        let nonrec: BTreeMap<&str, &OpDef> = self
            .defs
            .iter()
            .filter(|d| !recursive.contains(d.name.as_str()))
            .map(|d| (d.name.as_str(), d))
            .collect();

        fn expand(
            expr: &AlgExpr,
            nonrec: &BTreeMap<&str, &OpDef>,
            depth: usize,
        ) -> Result<AlgExpr, CoreError> {
            if depth > 64 {
                return Err(CoreError::Invalid(
                    "definition expansion exceeded depth 64 (cyclic non-recursive defs?)".into(),
                ));
            }
            Ok(match expr {
                AlgExpr::Name(n) => match nonrec.get(n.as_str()) {
                    Some(d) if d.params.is_empty() => expand(&d.body, nonrec, depth + 1)?,
                    Some(d) => {
                        return Err(CoreError::Invalid(format!(
                            "operation `{}` expects {} arguments, used as a constant",
                            d.name,
                            d.params.len()
                        )))
                    }
                    None => expr.clone(),
                },
                AlgExpr::Lit(_) => expr.clone(),
                AlgExpr::Union(a, b) => {
                    AlgExpr::union(expand(a, nonrec, depth)?, expand(b, nonrec, depth)?)
                }
                AlgExpr::Diff(a, b) => {
                    AlgExpr::diff(expand(a, nonrec, depth)?, expand(b, nonrec, depth)?)
                }
                AlgExpr::Product(a, b) => {
                    AlgExpr::product(expand(a, nonrec, depth)?, expand(b, nonrec, depth)?)
                }
                AlgExpr::Select(a, t) => AlgExpr::select(expand(a, nonrec, depth)?, t.clone()),
                AlgExpr::Map(a, f) => AlgExpr::map(expand(a, nonrec, depth)?, f.clone()),
                AlgExpr::Ifp { var, body } => AlgExpr::Ifp {
                    var: var.clone(),
                    body: Box::new(expand(body, nonrec, depth)?),
                },
                AlgExpr::Apply(name, args) => {
                    let args: Vec<AlgExpr> = args
                        .iter()
                        .map(|a| expand(a, nonrec, depth))
                        .collect::<Result<_, _>>()?;
                    match nonrec.get(name.as_str()) {
                        Some(d) => {
                            if d.params.len() != args.len() {
                                return Err(CoreError::Invalid(format!(
                                    "operation `{}` expects {} arguments, got {}",
                                    d.name,
                                    d.params.len(),
                                    args.len()
                                )));
                            }
                            let map: BTreeMap<String, AlgExpr> =
                                d.params.iter().cloned().zip(args).collect();
                            expand(&d.body.substitute(&map), nonrec, depth + 1)?
                        }
                        None if args.is_empty() => AlgExpr::Name(name.clone()),
                        None => {
                            return Err(CoreError::Invalid(format!(
                                "application of `{name}`, which is recursive-with-parameters \
                                 or undefined"
                            )))
                        }
                    }
                }
            })
        }

        let defs = self
            .defs
            .iter()
            .filter(|d| recursive.contains(d.name.as_str()))
            .map(|d| {
                Ok(OpDef::constant(
                    d.name.clone(),
                    expand(&d.body, &nonrec, 0)?,
                ))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        let query = expand(&self.query, &nonrec, 0)?;
        Ok(AlgProgram { defs, query })
    }
}

impl fmt::Display for AlgProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.defs {
            writeln!(f, "{d}")?;
        }
        write!(f, "query {};", self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::FuncExpr;
    use algrec_value::Value;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    /// Example 3's intersection: x ∩ y = x − (x − y).
    fn inter_def() -> OpDef {
        OpDef::new(
            "inter",
            ["x", "y"],
            AlgExpr::diff(
                AlgExpr::name("x"),
                AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("y")),
            ),
        )
    }

    /// The WIN equation of Example 3.
    fn win_def() -> OpDef {
        OpDef::constant(
            "win",
            AlgExpr::map(
                AlgExpr::diff(
                    AlgExpr::name("move"),
                    AlgExpr::product(
                        AlgExpr::map(AlgExpr::name("move"), FuncExpr::proj(0)),
                        AlgExpr::name("win"),
                    ),
                ),
                FuncExpr::proj(0),
            ),
        )
    }

    #[test]
    fn validation_rejects_double_definition() {
        let err = AlgProgram::new([win_def(), win_def()], AlgExpr::name("win")).unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)));
    }

    #[test]
    fn validation_rejects_duplicate_params() {
        let bad = OpDef::new("f", ["x", "x"], AlgExpr::name("x"));
        assert!(AlgProgram::new([bad], AlgExpr::name("f")).is_err());
    }

    #[test]
    fn recursion_detection() {
        let p = AlgProgram::new(
            [inter_def(), win_def()],
            AlgExpr::Apply(
                "inter".into(),
                vec![AlgExpr::name("win"), AlgExpr::name("nodes")],
            ),
        )
        .unwrap();
        let rec = p.recursive_defs();
        assert!(rec.contains("win"));
        assert!(!rec.contains("inter"));
        assert!(!p.is_nonrecursive());
    }

    #[test]
    fn mutual_recursion_detected() {
        let p = AlgProgram::new(
            [
                OpDef::constant("a", AlgExpr::name("b")),
                OpDef::constant("b", AlgExpr::name("a")),
            ],
            AlgExpr::name("a"),
        )
        .unwrap();
        let rec = p.recursive_defs();
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn inline_expands_nonrecursive() {
        let p = AlgProgram::new(
            [inter_def()],
            AlgExpr::Apply("inter".into(), vec![AlgExpr::name("r"), AlgExpr::name("s")]),
        )
        .unwrap();
        let inlined = p.inline().unwrap();
        assert!(inlined.defs.is_empty());
        assert_eq!(
            inlined.query,
            AlgExpr::diff(
                AlgExpr::name("r"),
                AlgExpr::diff(AlgExpr::name("r"), AlgExpr::name("s")),
            )
        );
    }

    #[test]
    fn inline_keeps_recursive_constants() {
        let p = AlgProgram::new([win_def()], AlgExpr::name("win")).unwrap();
        let inlined = p.inline().unwrap();
        assert_eq!(inlined.defs.len(), 1);
        assert_eq!(inlined.defs[0].name, "win");
    }

    #[test]
    fn recursive_with_params_rejected() {
        // f(x) = x - f(x): recursive with a parameter.
        let f = OpDef::new(
            "f",
            ["x"],
            AlgExpr::diff(
                AlgExpr::name("x"),
                AlgExpr::Apply("f".into(), vec![AlgExpr::name("x")]),
            ),
        );
        let p = AlgProgram::new([f], AlgExpr::Apply("f".into(), vec![AlgExpr::name("r")])).unwrap();
        assert!(matches!(p.inline(), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn nested_nonrecursive_defs_expand() {
        // xor(x, y) = (x - y) union (y - x); quad = xor(a, xor(b, c)).
        let xor = OpDef::new(
            "xor",
            ["x", "y"],
            AlgExpr::union(
                AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("y")),
                AlgExpr::diff(AlgExpr::name("y"), AlgExpr::name("x")),
            ),
        );
        let p = AlgProgram::new(
            [xor],
            AlgExpr::Apply(
                "xor".into(),
                vec![
                    AlgExpr::name("a"),
                    AlgExpr::Apply("xor".into(), vec![AlgExpr::name("b"), AlgExpr::name("c")]),
                ],
            ),
        )
        .unwrap();
        let inlined = p.inline().unwrap();
        assert!(inlined.defs.is_empty());
        assert!(inlined.query.names().len() == 3);
    }

    #[test]
    fn external_names() {
        let p = AlgProgram::new([win_def()], AlgExpr::name("win")).unwrap();
        assert_eq!(
            p.external_names().into_iter().collect::<Vec<_>>(),
            vec!["move".to_string()]
        );
    }

    #[test]
    fn arity_errors() {
        let p = AlgProgram::new(
            [inter_def()],
            AlgExpr::Apply("inter".into(), vec![AlgExpr::name("r")]),
        )
        .unwrap();
        assert!(matches!(p.inline(), Err(CoreError::Invalid(_))));
        // zero-arity misuse
        let p2 = AlgProgram::new([inter_def()], AlgExpr::name("inter")).unwrap();
        assert!(matches!(p2.inline(), Err(CoreError::Invalid(_))));
    }

    #[test]
    fn display_program() {
        let p = AlgProgram::new([win_def()], AlgExpr::name("win")).unwrap();
        let s = p.to_string();
        assert!(s.starts_with("def win = "));
        assert!(s.ends_with("query win;"));
        let lit = AlgExpr::lit([i(1)]);
        assert_eq!(AlgProgram::query(lit).to_string(), "query {1};");
    }
}
