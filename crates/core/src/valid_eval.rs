//! Valid-semantics evaluation of `algebra=` / `IFP-algebra=` programs.
//!
//! A recursive program is a system of set-constant equations
//! `Sᵢ = expᵢ(S₁, …, Sₙ)` (Section 3.2). Its semantics is the valid model
//! of the corresponding specification; operationally (Section 2.2) this is
//! an alternating fixpoint:
//!
//! * **possible pass** — the least fixpoint of the system where sets being
//!   *subtracted* are read from the current certain bound (`only facts not
//!   in T are allowed to be used negatively`): an overestimate;
//! * **certain pass** — the least fixpoint where subtracted sets are read
//!   from the possible bound (`we use negatively only facts from F`): an
//!   underestimate;
//!
//! alternating until the certain bound stabilizes. Membership that ends
//! between the bounds is `Unknown` — the program is then *not
//! well-defined* (it has no initial valid model), which Proposition 3.2
//! shows is undecidable to rule out syntactically, and which this
//! evaluator therefore detects at runtime: `S = {a} − S` reports
//! `MEM(a, S) = Unknown`, never a made-up answer.

use crate::eval::{eval_polar, SetEnv};
use crate::expr::AlgExpr;
use crate::program::AlgProgram;
use crate::CoreError;
use algrec_value::budget::Meter;
use algrec_value::{Budget, Database, Truth, TvSet, Value};
use std::collections::BTreeMap;

/// The result of valid evaluation: three-valued sets for every recursive
/// constant and for the query.
#[derive(Clone, Debug)]
pub struct ValidAlgebraResult {
    /// Three-valued value of each recursive constant.
    pub constants: BTreeMap<String, TvSet>,
    /// Three-valued value of the query expression.
    pub query: TvSet,
    /// Outer alternation rounds.
    pub outer_rounds: usize,
}

impl ValidAlgebraResult {
    /// Membership of `v` in the query result — the paper's `MEM`, three
    /// valued.
    pub fn member(&self, v: &Value) -> Truth {
        self.query.member(v)
    }

    /// Is the whole program well-defined (two-valued everywhere — an
    /// initial valid model exists for the observables)?
    pub fn is_well_defined(&self) -> bool {
        self.query.is_exact() && self.constants.values().all(TvSet::is_exact)
    }
}

/// Reject IFP operators whose body refers to a recursive constant: the
/// inflationary operator is not monotone in its free names, which would
/// break the alternating fixpoint. Corollary 3.6 (IFP-algebra= =
/// algebra=) says such programs lose no expressiveness by rewriting — and
/// `algrec-translate` automates exactly that rewriting.
fn check_no_ifp_over_recursion(expr: &AlgExpr, rec: &[String]) -> Result<(), CoreError> {
    match expr {
        AlgExpr::Name(_) | AlgExpr::Lit(_) => Ok(()),
        AlgExpr::Union(a, b) | AlgExpr::Diff(a, b) | AlgExpr::Product(a, b) => {
            check_no_ifp_over_recursion(a, rec)?;
            check_no_ifp_over_recursion(b, rec)
        }
        AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => check_no_ifp_over_recursion(a, rec),
        AlgExpr::Ifp { body, .. } => {
            let names = body.names();
            if let Some(bad) = rec.iter().find(|r| names.contains(r.as_str())) {
                return Err(CoreError::Unsupported(format!(
                    "IFP body references the recursive constant `{bad}`; rewrite the IFP as \
                     a recursive constant itself (Corollary 3.6: IFP is redundant in algebra=, \
                     and algrec-translate::ifp_to_recursion does this mechanically)"
                )));
            }
            check_no_ifp_over_recursion(body, rec)
        }
        AlgExpr::Apply(_, args) => args
            .iter()
            .try_for_each(|a| check_no_ifp_over_recursion(a, rec)),
    }
}

/// Evaluate a (possibly recursive) algebra program under the valid
/// semantics.
pub fn eval_valid(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
) -> Result<ValidAlgebraResult, CoreError> {
    let inlined = program.inline()?;
    let rec_names: Vec<String> = inlined.defs.iter().map(|d| d.name.clone()).collect();
    for d in &inlined.defs {
        check_no_ifp_over_recursion(&d.body, &rec_names)?;
    }
    check_no_ifp_over_recursion(&inlined.query, &rec_names)?;

    let mut meter = budget.meter();

    // Non-recursive program: exact evaluation, trivially two-valued.
    if inlined.defs.is_empty() {
        let empty = SetEnv::new();
        let q = eval_polar(
            &inlined.query,
            &empty,
            &empty,
            &mut Vec::new(),
            db,
            &mut meter,
            true,
        )?;
        return Ok(ValidAlgebraResult {
            constants: BTreeMap::new(),
            query: TvSet::exact(q),
            outer_rounds: 0,
        });
    }

    // Inner least fixpoint of the system with the "subtracted side" fixed.
    let lfp = |fixed_neg: &SetEnv, meter: &mut Meter| -> Result<SetEnv, CoreError> {
        let mut env: SetEnv = rec_names
            .iter()
            .map(|n| (n.clone(), Default::default()))
            .collect();
        loop {
            meter.tick_iteration()?;
            let mut next = SetEnv::new();
            for d in &inlined.defs {
                let v = eval_polar(
                    &d.body,
                    &env,
                    fixed_neg,
                    &mut Vec::new(),
                    db,
                    meter,
                    true,
                )?;
                next.insert(d.name.clone(), v);
            }
            if next == env {
                return Ok(env);
            }
            env = next;
        }
    };

    // Alternating fixpoint.
    let mut certain: SetEnv = rec_names
        .iter()
        .map(|n| (n.clone(), Default::default()))
        .collect();
    let mut outer_rounds = 0usize;
    let possible = loop {
        outer_rounds += 1;
        meter.tick_iteration()?;
        // Possible pass: subtracted sets read the certain bound.
        let possible = lfp(&certain, &mut meter)?;
        // Certain pass: subtracted sets read the possible bound.
        let next_certain = lfp(&possible, &mut meter)?;
        if next_certain == certain {
            break possible;
        }
        certain = next_certain;
    };

    let mut constants = BTreeMap::new();
    for name in &rec_names {
        let lower = certain[name].clone();
        let mut upper = possible[name].clone();
        // The bounds are nested at convergence; keep the invariant robust
        // against budget-truncated runs.
        upper.extend(lower.iter().cloned());
        constants.insert(
            name.clone(),
            TvSet::from_bounds(lower, upper).expect("lower ⊆ upper by construction"),
        );
    }

    // Query: lower bound reads (certain positively, possible negatively),
    // upper bound the reverse.
    let q_lower = eval_polar(
        &inlined.query,
        &certain,
        &possible,
        &mut Vec::new(),
        db,
        &mut meter,
        true,
    )?;
    let mut q_upper = eval_polar(
        &inlined.query,
        &possible,
        &certain,
        &mut Vec::new(),
        db,
        &mut meter,
        true,
    )?;
    q_upper.extend(q_lower.iter().cloned());
    Ok(ValidAlgebraResult {
        constants,
        query: TvSet::from_bounds(q_lower, q_upper).expect("lower ⊆ upper by construction"),
        outer_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncExpr, FuncOp};
    use crate::program::OpDef;
    use algrec_value::Relation;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn move_db(pairs: &[(i64, i64)]) -> Database {
        Database::new().with(
            "move",
            Relation::from_pairs(pairs.iter().map(|(a, b)| (i(*a), i(*b)))),
        )
    }

    /// WIN = π₁(MOVE − (π₁(MOVE) × WIN))   (Example 3).
    fn win_program() -> AlgProgram {
        AlgProgram::new(
            [OpDef::constant(
                "win",
                AlgExpr::map(
                    AlgExpr::diff(
                        AlgExpr::name("move"),
                        AlgExpr::product(
                            AlgExpr::map(AlgExpr::name("move"), FuncExpr::proj(0)),
                            AlgExpr::name("win"),
                        ),
                    ),
                    FuncExpr::proj(0),
                ),
            )],
            AlgExpr::name("win"),
        )
        .unwrap()
    }

    #[test]
    fn self_subtraction_is_undefined() {
        // S = {a} − S: "the membership status of a in S is undefined, and
        // there is no initial valid model" (Section 3.2).
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        let out = eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert!(!out.is_well_defined());
    }

    #[test]
    fn win_acyclic_well_defined() {
        // 1 → 2 → 3: win(2) only.
        let out = eval_valid(&win_program(), &move_db(&[(1, 2), (2, 3)]), Budget::SMALL).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(2)), Truth::True);
        assert_eq!(out.member(&i(1)), Truth::False);
        assert_eq!(out.member(&i(3)), Truth::False);
    }

    #[test]
    fn win_self_loop_undefined() {
        // "If the MOVE relation contains the tuple [a, a], then the
        // membership status of a in WIN will be undefined" (Section 3.2).
        let out = eval_valid(&win_program(), &move_db(&[(7, 7)]), Budget::SMALL).unwrap();
        assert_eq!(out.member(&i(7)), Truth::Unknown);
        assert!(!out.is_well_defined());
    }

    #[test]
    fn win_cycle_with_escape_defined() {
        let out = eval_valid(
            &win_program(),
            &move_db(&[(1, 2), (2, 1), (2, 3)]),
            Budget::SMALL,
        )
        .unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(2)), Truth::True);
        assert_eq!(out.member(&i(1)), Truth::False);
    }

    #[test]
    fn even_set_example3() {
        // Sᵉ = {0} ∪ MAP₊₂(σ_{<10}(Sᵉ)) — Example 3's recursive even set,
        // windowed by a selection so the fixpoint is finite.
        let p = AlgProgram::new(
            [OpDef::constant(
                "se",
                AlgExpr::union(
                    AlgExpr::lit([i(0)]),
                    AlgExpr::map(
                        AlgExpr::select(
                            AlgExpr::name("se"),
                            FuncExpr::Cmp(
                                CmpOp::Lt,
                                Box::new(FuncExpr::Elem),
                                Box::new(FuncExpr::Lit(i(10))),
                            ),
                        ),
                        FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                    ),
                ),
            )],
            AlgExpr::name("se"),
        )
        .unwrap();
        let out = eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(0)), Truth::True);
        assert_eq!(out.member(&i(4)), Truth::True);
        assert_eq!(out.member(&i(3)), Truth::False);
        assert_eq!(out.member(&i(10)), Truth::True);
        assert_eq!(out.member(&i(12)), Truth::False); // windowed out
    }

    #[test]
    fn positive_self_reference_is_false_not_unknown() {
        // S = S: under the valid semantics S is empty (no derivation at
        // all), NOT unknown — this is where the alternating fixpoint is
        // strictly stronger than a naive interval (Fitting) iteration.
        let p = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::name("s"))],
            AlgExpr::name("s"),
        )
        .unwrap();
        let out = eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.query.upper_len(), 0);
    }

    #[test]
    fn positive_recursion_reaches_closure() {
        // TC as a recursive constant: tc = edge ∪ π₀₃(σ₁₌₂(tc × edge)).
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("tc"), AlgExpr::name("edge")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let p = AlgProgram::new(
            [OpDef::constant(
                "tc",
                AlgExpr::union(AlgExpr::name("edge"), join),
            )],
            AlgExpr::name("tc"),
        )
        .unwrap();
        let db = Database::new().with(
            "edge",
            Relation::from_pairs([(i(1), i(2)), (i(2), i(3))]),
        );
        let out = eval_valid(&p, &db, Budget::SMALL).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.member(&Value::pair(i(1), i(3))), Truth::True);
        assert_eq!(out.query.lower_len(), 3);
    }

    #[test]
    fn mutual_recursion_choice_is_undefined() {
        // p = d − q; q = d − p: the two-scenario choice; both unknown.
        let p = AlgProgram::new(
            [
                OpDef::constant("p", AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("q"))),
                OpDef::constant("q", AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("p"))),
            ],
            AlgExpr::name("p"),
        )
        .unwrap();
        let db = Database::new().with("d", Relation::from_values([Value::str("a")]));
        let out = eval_valid(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert_eq!(out.constants["q"].member(&Value::str("a")), Truth::Unknown);
    }

    #[test]
    fn query_over_undefined_constants() {
        // query (d − s) where s = {a} − s: subtracting an unknown
        // membership yields unknown; subtracting a certain non-member
        // yields certain.
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("s")),
        )
        .unwrap();
        let db = Database::new()
            .with("d", Relation::from_values([Value::str("a"), Value::str("b")]));
        let out = eval_valid(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert_eq!(out.member(&Value::str("b")), Truth::True);
    }

    #[test]
    fn ifp_over_recursive_constant_rejected() {
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("x"), AlgExpr::name("s"))),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        assert!(matches!(
            eval_valid(&p, &Database::new(), Budget::SMALL),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn ifp_over_database_is_fine_inside_recursion() {
        // s = (IFP over edge only) − s: IFP evaluates to a fixed set.
        let tc = AlgExpr::ifp(
            "x",
            AlgExpr::union(AlgExpr::name("edge"), AlgExpr::name("x")),
        );
        let p = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::diff(tc, AlgExpr::name("s")))],
            AlgExpr::name("s"),
        )
        .unwrap();
        let db = Database::new().with("edge", Relation::from_values([i(1)]));
        let out = eval_valid(&p, &db, Budget::SMALL).unwrap();
        // s = {1} − s: membership of 1 undefined.
        assert_eq!(out.member(&i(1)), Truth::Unknown);
    }

    #[test]
    fn nonrecursive_program_is_exact() {
        let p = AlgProgram::query(AlgExpr::lit([i(1), i(2)]));
        let out = eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
        assert!(out.is_well_defined());
        assert_eq!(out.query.lower_len(), 2);
        assert_eq!(out.outer_rounds, 0);
    }
}
