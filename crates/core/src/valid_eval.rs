//! Valid-semantics evaluation of `algebra=` / `IFP-algebra=` programs.
//!
//! A recursive program is a system of set-constant equations
//! `Sᵢ = expᵢ(S₁, …, Sₙ)` (Section 3.2). Its semantics is the valid model
//! of the corresponding specification; operationally (Section 2.2) this is
//! an alternating fixpoint:
//!
//! * **possible pass** — the least fixpoint of the system where sets being
//!   *subtracted* are read from the current certain bound (`only facts not
//!   in T are allowed to be used negatively`): an overestimate;
//! * **certain pass** — the least fixpoint where subtracted sets are read
//!   from the possible bound (`we use negatively only facts from F`): an
//!   underestimate;
//!
//! alternating until the certain bound stabilizes. Membership that ends
//! between the bounds is `Unknown` — the program is then *not
//! well-defined* (it has no initial valid model), which Proposition 3.2
//! shows is undecidable to rule out syntactically, and which this
//! evaluator therefore detects at runtime: `S = {a} − S` reports
//! `MEM(a, S) = Unknown`, never a made-up answer.
//!
//! # Evaluation strategy
//!
//! Within one inner least fixpoint the subtracted side is *fixed*: every
//! equation reads the varying environment only at positive polarity, so
//! the iteration operator is monotone and its iterates increase from the
//! empty environment. Under [`EvalOptions::delta`] each equation whose
//! body admits delta rules (no positive-polarity read of a recursive
//! constant inside a difference right-side) is therefore advanced
//! semi-naively — iteration k evaluates the body's *delta* against the
//! facts iteration k−1 added, Jacobi-style (all equations read the
//! start-of-iteration environment, additions are applied after the
//! sweep). Equations outside the fragment fall back to full
//! re-evaluation. Join indexes and the values of subexpressions that do
//! not mention any recursive constant are cached across iterations (and,
//! for fully invariant expressions, across alternation rounds). All of it
//! is observation-equivalent to the naive evaluation.

use crate::eval::{EvalOptions, Evaluator, SetEnv, SetRef};
use crate::expr::AlgExpr;
use crate::program::AlgProgram;
use crate::CoreError;
use algrec_value::budget::Meter;
use algrec_value::{Budget, Database, Symbol, Trace, Truth, TvSet, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The result of valid evaluation: three-valued sets for every recursive
/// constant and for the query.
#[derive(Clone, Debug)]
pub struct ValidAlgebraResult {
    /// Three-valued value of each recursive constant.
    pub constants: BTreeMap<String, TvSet>,
    /// Three-valued value of the query expression.
    pub query: TvSet,
    /// Outer alternation rounds.
    pub outer_rounds: usize,
}

impl ValidAlgebraResult {
    /// Membership of `v` in the query result — the paper's `MEM`, three
    /// valued.
    pub fn member(&self, v: &Value) -> Truth {
        self.query.member(v)
    }

    /// Is the whole program well-defined (two-valued everywhere — an
    /// initial valid model exists for the observables)?
    pub fn is_well_defined(&self) -> bool {
        self.query.is_exact() && self.constants.values().all(TvSet::is_exact)
    }
}

/// Reject IFP operators whose body refers to a recursive constant: the
/// inflationary operator is not monotone in its free names, which would
/// break the alternating fixpoint. Corollary 3.6 (IFP-algebra= =
/// algebra=) says such programs lose no expressiveness by rewriting — and
/// `algrec-translate` automates exactly that rewriting.
fn check_no_ifp_over_recursion(expr: &AlgExpr, rec: &[String]) -> Result<(), CoreError> {
    match expr {
        AlgExpr::Name(_) | AlgExpr::Lit(_) => Ok(()),
        AlgExpr::Union(a, b) | AlgExpr::Diff(a, b) | AlgExpr::Product(a, b) => {
            check_no_ifp_over_recursion(a, rec)?;
            check_no_ifp_over_recursion(b, rec)
        }
        AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => check_no_ifp_over_recursion(a, rec),
        AlgExpr::Ifp { body, .. } => {
            let names = body.names();
            if let Some(bad) = rec.iter().find(|r| names.contains(r.as_str())) {
                return Err(CoreError::Unsupported(format!(
                    "IFP body references the recursive constant `{bad}`; rewrite the IFP as \
                     a recursive constant itself (Corollary 3.6: IFP is redundant in algebra=, \
                     and algrec-translate::ifp_to_recursion does this mechanically)"
                )));
            }
            check_no_ifp_over_recursion(body, rec)
        }
        AlgExpr::Apply(_, args) => args
            .iter()
            .try_for_each(|a| check_no_ifp_over_recursion(a, rec)),
    }
}

/// The inner least fixpoint of the equation system with the subtracted
/// side fixed to `fixed_neg`. Runs inside its own fixpoint context so
/// caches live exactly as long as their invariants hold.
fn lfp(
    ev: &mut Evaluator<'_>,
    defs: &[(Symbol, &AlgExpr)],
    fixed_neg: &SetEnv,
    meter: &mut Meter,
) -> Result<SetEnv, CoreError> {
    let rec_syms: Vec<Symbol> = defs.iter().map(|(s, _)| *s).collect();
    // Positive-only: within this fixpoint, negative occurrences of the
    // recursive constants read `fixed_neg`, so only positive occurrences
    // see varying state.
    ev.push_ctx(rec_syms, true);
    let result = lfp_loop(ev, defs, fixed_neg, meter);
    ev.pop_ctx();
    result
}

fn lfp_loop(
    ev: &mut Evaluator<'_>,
    defs: &[(Symbol, &AlgExpr)],
    fixed_neg: &SetEnv,
    meter: &mut Meter,
) -> Result<SetEnv, CoreError> {
    let eligible: Vec<bool> = defs
        .iter()
        .map(|(_, body)| ev.opts.delta && ev.delta_ok(body, true))
        .collect();
    let mut env: SetEnv = defs.iter().map(|(s, _)| (*s, SetRef::default())).collect();
    let mut deltas: BTreeMap<Symbol, BTreeSet<Value>> = BTreeMap::new();
    let mut first = true;
    loop {
        meter.tick_iteration()?;
        let mut new_deltas: BTreeMap<Symbol, BTreeSet<Value>> = BTreeMap::new();
        let mut changed = false;
        for (k, (sym, body)) in defs.iter().enumerate() {
            let current = &env[sym];
            let add: BTreeSet<Value> = if first || !eligible[k] {
                let full = ev.eval(body, &env, fixed_neg, true, meter)?;
                full.difference(current).cloned().collect()
            } else {
                let d = ev.eval_delta(body, &env, fixed_neg, &deltas, true, meter)?;
                d.into_iter().filter(|v| !current.contains(v)).collect()
            };
            changed |= !add.is_empty();
            new_deltas.insert(*sym, add);
        }
        let added: usize = new_deltas.values().map(BTreeSet::len).sum();
        meter.record_delta(added);
        if !changed {
            return Ok(env);
        }
        // Jacobi update: every equation above read the start-of-iteration
        // environment; merge the additions only now.
        for (sym, add) in &new_deltas {
            if !add.is_empty() {
                meter.add_facts(add.len())?;
                Arc::make_mut(env.get_mut(sym).expect("env has all defs"))
                    .extend(add.iter().cloned());
            }
        }
        deltas = new_deltas;
        first = false;
    }
}

/// Evaluate a (possibly recursive) algebra program under the valid
/// semantics with the default (fully optimized) strategy.
pub fn eval_valid(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
) -> Result<ValidAlgebraResult, CoreError> {
    eval_valid_with(program, db, budget, EvalOptions::default())
}

/// [`eval_valid`] with explicit strategy options (ablation and agreement
/// testing).
pub fn eval_valid_with(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
    opts: EvalOptions,
) -> Result<ValidAlgebraResult, CoreError> {
    eval_valid_traced(program, db, budget, opts, Trace::Null)
}

/// [`eval_valid_with`] with evaluation telemetry: alternation rounds, the
/// possible/certain passes, per-sweep delta sizes and index traffic flow
/// to `trace` (see [`algrec_value::stats`]). With [`Trace::Null`] this is
/// exactly [`eval_valid_with`]. On success the size of the query's upper
/// bound is reported as `facts_materialized`; on a budget error the
/// events collected so far show consumption at the point of failure.
pub fn eval_valid_traced(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
    opts: EvalOptions,
    trace: Trace,
) -> Result<ValidAlgebraResult, CoreError> {
    let inlined = program.inline()?;
    let rec_names: Vec<String> = inlined.defs.iter().map(|d| d.name.clone()).collect();
    for d in &inlined.defs {
        check_no_ifp_over_recursion(&d.body, &rec_names)?;
    }
    check_no_ifp_over_recursion(&inlined.query, &rec_names)?;

    let mut meter = budget.meter_traced(trace);
    let mut ev = Evaluator::new(db, opts);

    // Non-recursive program: exact evaluation, trivially two-valued.
    if inlined.defs.is_empty() {
        let empty = SetEnv::new();
        let q = ev.eval(&inlined.query, &empty, &empty, true, &mut meter)?;
        meter.record_materialized(q.len());
        return Ok(ValidAlgebraResult {
            constants: BTreeMap::new(),
            query: TvSet::exact((*q).clone()),
            outer_rounds: 0,
        });
    }

    let defs: Vec<(Symbol, &AlgExpr)> = inlined
        .defs
        .iter()
        .map(|d| (Symbol::of(&d.name), &d.body))
        .collect();
    let rec_syms: Vec<Symbol> = defs.iter().map(|(s, _)| *s).collect();
    // Whole-run context: expressions not mentioning any recursive
    // constant at all are cached across inner fixpoints, alternation
    // rounds and the final query passes.
    ev.push_ctx(rec_syms.clone(), false);

    // Alternating fixpoint.
    let mut certain: SetEnv = rec_syms.iter().map(|s| (*s, SetRef::default())).collect();
    let mut outer_rounds = 0usize;
    meter.phase_start("alternation");
    let possible = loop {
        outer_rounds += 1;
        meter.tick_iteration()?;
        // Possible pass: subtracted sets read the certain bound.
        meter.phase_start("possible");
        let possible = lfp(&mut ev, &defs, &certain, &mut meter);
        meter.phase_end();
        let possible = possible?;
        // Certain pass: subtracted sets read the possible bound.
        meter.phase_start("certain");
        let next_certain = lfp(&mut ev, &defs, &possible, &mut meter);
        meter.phase_end();
        let next_certain = next_certain?;
        if next_certain == certain {
            break possible;
        }
        certain = next_certain;
    };
    meter.phase_end();

    let mut constants = BTreeMap::new();
    for name in &rec_names {
        let sym = Symbol::of(name);
        let lower = (*certain[&sym]).clone();
        let mut upper = (*possible[&sym]).clone();
        // The bounds are nested at convergence; keep the invariant robust
        // against budget-truncated runs.
        upper.extend(lower.iter().cloned());
        constants.insert(
            name.clone(),
            TvSet::from_bounds(lower, upper).expect("lower ⊆ upper by construction"),
        );
    }

    // Query: lower bound reads (certain positively, possible negatively),
    // upper bound the reverse.
    let q_lower = (*ev.eval(&inlined.query, &certain, &possible, true, &mut meter)?).clone();
    let mut q_upper = (*ev.eval(&inlined.query, &possible, &certain, true, &mut meter)?).clone();
    q_upper.extend(q_lower.iter().cloned());
    meter.record_materialized(q_upper.len());
    Ok(ValidAlgebraResult {
        constants,
        query: TvSet::from_bounds(q_lower, q_upper).expect("lower ⊆ upper by construction"),
        outer_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncExpr, FuncOp};
    use crate::program::OpDef;
    use algrec_value::Relation;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn move_db(pairs: &[(i64, i64)]) -> Database {
        Database::new().with(
            "move",
            Relation::from_pairs(pairs.iter().map(|(a, b)| (i(*a), i(*b)))),
        )
    }

    /// Run optimized and baseline, assert full agreement (bounds and
    /// rounds), and return the optimized result.
    fn eval_both(p: &AlgProgram, db: &Database) -> ValidAlgebraResult {
        let opt = eval_valid_with(p, db, Budget::SMALL, EvalOptions::OPTIMIZED).unwrap();
        let base = eval_valid_with(p, db, Budget::SMALL, EvalOptions::BASELINE).unwrap();
        assert_eq!(opt.query, base.query, "query bounds disagree");
        assert_eq!(opt.constants, base.constants, "constant bounds disagree");
        assert_eq!(opt.outer_rounds, base.outer_rounds, "alternation disagrees");
        opt
    }

    /// WIN = π₁(MOVE − (π₁(MOVE) × WIN))   (Example 3).
    fn win_program() -> AlgProgram {
        AlgProgram::new(
            [OpDef::constant(
                "win",
                AlgExpr::map(
                    AlgExpr::diff(
                        AlgExpr::name("move"),
                        AlgExpr::product(
                            AlgExpr::map(AlgExpr::name("move"), FuncExpr::proj(0)),
                            AlgExpr::name("win"),
                        ),
                    ),
                    FuncExpr::proj(0),
                ),
            )],
            AlgExpr::name("win"),
        )
        .unwrap()
    }

    #[test]
    fn self_subtraction_is_undefined() {
        // S = {a} − S: "the membership status of a in S is undefined, and
        // there is no initial valid model" (Section 3.2).
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        let out = eval_both(&p, &Database::new());
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert!(!out.is_well_defined());
    }

    #[test]
    fn win_acyclic_well_defined() {
        // 1 → 2 → 3: win(2) only.
        let out = eval_both(&win_program(), &move_db(&[(1, 2), (2, 3)]));
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(2)), Truth::True);
        assert_eq!(out.member(&i(1)), Truth::False);
        assert_eq!(out.member(&i(3)), Truth::False);
    }

    #[test]
    fn win_self_loop_undefined() {
        // "If the MOVE relation contains the tuple [a, a], then the
        // membership status of a in WIN will be undefined" (Section 3.2).
        let out = eval_both(&win_program(), &move_db(&[(7, 7)]));
        assert_eq!(out.member(&i(7)), Truth::Unknown);
        assert!(!out.is_well_defined());
    }

    #[test]
    fn win_cycle_with_escape_defined() {
        let out = eval_both(&win_program(), &move_db(&[(1, 2), (2, 1), (2, 3)]));
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(2)), Truth::True);
        assert_eq!(out.member(&i(1)), Truth::False);
    }

    #[test]
    fn even_set_example3() {
        // Sᵉ = {0} ∪ MAP₊₂(σ_{<10}(Sᵉ)) — Example 3's recursive even set,
        // windowed by a selection so the fixpoint is finite.
        let p = AlgProgram::new(
            [OpDef::constant(
                "se",
                AlgExpr::union(
                    AlgExpr::lit([i(0)]),
                    AlgExpr::map(
                        AlgExpr::select(
                            AlgExpr::name("se"),
                            FuncExpr::Cmp(
                                CmpOp::Lt,
                                Box::new(FuncExpr::Elem),
                                Box::new(FuncExpr::Lit(i(10))),
                            ),
                        ),
                        FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                    ),
                ),
            )],
            AlgExpr::name("se"),
        )
        .unwrap();
        let out = eval_both(&p, &Database::new());
        assert!(out.is_well_defined());
        assert_eq!(out.member(&i(0)), Truth::True);
        assert_eq!(out.member(&i(4)), Truth::True);
        assert_eq!(out.member(&i(3)), Truth::False);
        assert_eq!(out.member(&i(10)), Truth::True);
        assert_eq!(out.member(&i(12)), Truth::False); // windowed out
    }

    #[test]
    fn positive_self_reference_is_false_not_unknown() {
        // S = S: under the valid semantics S is empty (no derivation at
        // all), NOT unknown — this is where the alternating fixpoint is
        // strictly stronger than a naive interval (Fitting) iteration.
        let p = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::name("s"))],
            AlgExpr::name("s"),
        )
        .unwrap();
        let out = eval_both(&p, &Database::new());
        assert!(out.is_well_defined());
        assert_eq!(out.query.upper_len(), 0);
    }

    #[test]
    fn positive_recursion_reaches_closure() {
        // TC as a recursive constant: tc = edge ∪ π₀₃(σ₁₌₂(tc × edge)).
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("tc"), AlgExpr::name("edge")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let p = AlgProgram::new(
            [OpDef::constant(
                "tc",
                AlgExpr::union(AlgExpr::name("edge"), join),
            )],
            AlgExpr::name("tc"),
        )
        .unwrap();
        let db = Database::new().with("edge", Relation::from_pairs([(i(1), i(2)), (i(2), i(3))]));
        let out = eval_both(&p, &db);
        assert!(out.is_well_defined());
        assert_eq!(out.member(&Value::pair(i(1), i(3))), Truth::True);
        assert_eq!(out.query.lower_len(), 3);
    }

    #[test]
    fn delta_lfp_tc_long_chain_agrees() {
        // Larger positive recursion: the semi-naive inner fixpoint must
        // produce exactly the naive closure.
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("tc"), AlgExpr::name("edge")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let p = AlgProgram::new(
            [OpDef::constant(
                "tc",
                AlgExpr::union(AlgExpr::name("edge"), join),
            )],
            AlgExpr::name("tc"),
        )
        .unwrap();
        let edges: Vec<(i64, i64)> = (1..16).map(|k| (k, k + 1)).collect();
        let db = Database::new().with(
            "edge",
            Relation::from_pairs(edges.iter().map(|(a, b)| (i(*a), i(*b)))),
        );
        let out = eval_both(&p, &db);
        assert!(out.is_well_defined());
        assert_eq!(out.query.lower_len(), 15 * 16 / 2);
        assert_eq!(out.member(&Value::pair(i(1), i(16))), Truth::True);
    }

    #[test]
    fn mutual_recursion_choice_is_undefined() {
        // p = d − q; q = d − p: the two-scenario choice; both unknown.
        let p = AlgProgram::new(
            [
                OpDef::constant("p", AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("q"))),
                OpDef::constant("q", AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("p"))),
            ],
            AlgExpr::name("p"),
        )
        .unwrap();
        let db = Database::new().with("d", Relation::from_values([Value::str("a")]));
        let out = eval_both(&p, &db);
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert_eq!(out.constants["q"].member(&Value::str("a")), Truth::Unknown);
    }

    #[test]
    fn query_over_undefined_constants() {
        // query (d − s) where s = {a} − s: subtracting an unknown
        // membership yields unknown; subtracting a certain non-member
        // yields certain.
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("s")),
        )
        .unwrap();
        let db = Database::new().with(
            "d",
            Relation::from_values([Value::str("a"), Value::str("b")]),
        );
        let out = eval_both(&p, &db);
        assert_eq!(out.member(&Value::str("a")), Truth::Unknown);
        assert_eq!(out.member(&Value::str("b")), Truth::True);
    }

    #[test]
    fn ifp_over_recursive_constant_rejected() {
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("x"), AlgExpr::name("s"))),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        assert!(matches!(
            eval_valid(&p, &Database::new(), Budget::SMALL),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn ifp_over_database_is_fine_inside_recursion() {
        // s = (IFP over edge only) − s: IFP evaluates to a fixed set.
        let tc = AlgExpr::ifp(
            "x",
            AlgExpr::union(AlgExpr::name("edge"), AlgExpr::name("x")),
        );
        let p = AlgProgram::new(
            [OpDef::constant("s", AlgExpr::diff(tc, AlgExpr::name("s")))],
            AlgExpr::name("s"),
        )
        .unwrap();
        let db = Database::new().with("edge", Relation::from_values([i(1)]));
        let out = eval_both(&p, &db);
        // s = {1} − s: membership of 1 undefined.
        assert_eq!(out.member(&i(1)), Truth::Unknown);
    }

    #[test]
    fn nonrecursive_program_is_exact() {
        let p = AlgProgram::query(AlgExpr::lit([i(1), i(2)]));
        let out = eval_both(&p, &Database::new());
        assert!(out.is_well_defined());
        assert_eq!(out.query.lower_len(), 2);
        assert_eq!(out.outer_rounds, 0);
    }

    #[test]
    fn double_negation_def_is_delta_ineligible_but_agrees() {
        // s = d − (d − s): s occurs positively but inside a difference
        // right-side, so the equation is outside the delta fragment and
        // must fall back to full re-evaluation — with identical results.
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(
                    AlgExpr::name("d"),
                    AlgExpr::diff(AlgExpr::name("d"), AlgExpr::name("s")),
                ),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        let db = Database::new().with("d", Relation::from_values([Value::str("a")]));
        let out = eval_both(&p, &db);
        // s = d ∩ s has least fixpoint ∅ in the certain pass; the
        // possible pass (reading certain negatively) also derives
        // nothing: d − (d − ∅) = ∅. Well-defined and empty.
        assert!(out.is_well_defined());
        assert_eq!(out.query.upper_len(), 0);
    }
}
