//! A concrete syntax for algebra programs.
//!
//! ```text
//! program := def* "query" expr ";"
//! def     := "def" name [ "(" name ("," name)* ")" ] "=" expr ";"
//! expr    := term ("union" term)*
//! term    := prod ("-" prod)*                 -- difference, left assoc
//! prod    := atom ("*" atom)*                 -- product, binds tighter
//! atom    := name [ "(" expr ("," expr)* ")" ]
//!          | "{" [value ("," value)*] "}"     -- set literal
//!          | "select" "(" expr "," fexpr ")"
//!          | "map" "(" expr "," fexpr ")"
//!          | "ifp" "(" name "," expr ")"
//!          | "(" expr ")"
//! fexpr   := fand ("or" fand)*
//! fand    := fnot ("and" fnot)*
//! fnot    := "not" fnot | fcmp
//! fcmp    := fatom [ ("="|"!="|"<"|"<="|">"|">=") fatom ]
//! fatom   := ("x" | literal | "[" fexpr,* "]" | fname "(" fexpr,* ")"
//!            | "(" fexpr ")") (".":INT)*      -- postfix projection
//! value   := INT | "'" chars "'" | "true" | "false"
//!          | "[" value,* "]" | "{" value,* "}" | bare-ident (string)
//! ```
//!
//! Example — the WIN equation of Section 3.2:
//!
//! ```
//! use algrec_core::parser::parse_program;
//! let p = parse_program(
//!     "def win = map(move - (map(move, x.0) * win), x.0); query win;"
//! ).unwrap();
//! assert_eq!(p.defs.len(), 1);
//! ```

use crate::expr::{AlgExpr, CmpOp, FuncExpr, FuncOp};
use crate::program::{AlgProgram, OpDef};
use crate::CoreError;
use algrec_value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A parse failure with byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Minus,
    Star,
    Dot,
    Cmp(CmpOp),
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < b.len() {
        let start = pos;
        match b[pos] {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
                continue;
            }
            b'%' => {
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
                continue;
            }
            b'(' => {
                out.push((start, Tok::LParen));
                pos += 1;
            }
            b')' => {
                out.push((start, Tok::RParen));
                pos += 1;
            }
            b'{' => {
                out.push((start, Tok::LBrace));
                pos += 1;
            }
            b'}' => {
                out.push((start, Tok::RBrace));
                pos += 1;
            }
            b'[' => {
                out.push((start, Tok::LBracket));
                pos += 1;
            }
            b']' => {
                out.push((start, Tok::RBracket));
                pos += 1;
            }
            b',' => {
                out.push((start, Tok::Comma));
                pos += 1;
            }
            b';' => {
                out.push((start, Tok::Semi));
                pos += 1;
            }
            b'*' => {
                out.push((start, Tok::Star));
                pos += 1;
            }
            b'.' => {
                out.push((start, Tok::Dot));
                pos += 1;
            }
            b'=' => {
                out.push((start, Tok::Assign));
                pos += 1;
            }
            b'!' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push((start, Tok::Cmp(CmpOp::Ne)));
                    pos += 2;
                } else {
                    return Err(ParseError {
                        offset: pos,
                        message: "expected `!=`".into(),
                    });
                }
            }
            b'<' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push((start, Tok::Cmp(CmpOp::Le)));
                    pos += 2;
                } else {
                    out.push((start, Tok::Cmp(CmpOp::Lt)));
                    pos += 1;
                }
            }
            b'>' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push((start, Tok::Cmp(CmpOp::Ge)));
                    pos += 2;
                } else {
                    out.push((start, Tok::Cmp(CmpOp::Gt)));
                    pos += 1;
                }
            }
            b'\'' => {
                pos += 1;
                let s = pos;
                while pos < b.len() && b[pos] != b'\'' {
                    pos += 1;
                }
                if pos >= b.len() {
                    return Err(ParseError {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push((
                    start,
                    Tok::Str(String::from_utf8_lossy(&b[s..pos]).into_owned()),
                ));
                pos += 1;
            }
            b'-' => {
                // negative integer literal if directly followed by digits
                if b.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let s = pos;
                    pos += 1;
                    while pos < b.len() && b[pos].is_ascii_digit() {
                        pos += 1;
                    }
                    let text = &src[s..pos];
                    out.push((
                        start,
                        Tok::Int(text.parse().map_err(|_| ParseError {
                            offset: s,
                            message: format!("bad integer `{text}`"),
                        })?),
                    ));
                } else {
                    out.push((start, Tok::Minus));
                    pos += 1;
                }
            }
            b'0'..=b'9' => {
                let s = pos;
                while pos < b.len() && b[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = &src[s..pos];
                out.push((
                    start,
                    Tok::Int(text.parse().map_err(|_| ParseError {
                        offset: s,
                        message: format!("bad integer `{text}`"),
                    })?),
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = pos;
                while pos < b.len()
                    && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_' || b[pos] == b'$')
                {
                    pos += 1;
                }
                out.push((start, Tok::Ident(src[s..pos].to_string())));
            }
            other => {
                return Err(ParseError {
                    offset: pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.toks.get(self.idx).map_or(usize::MAX, |(o, _)| *o),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.idx += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    // ---- values (set-literal members) ----

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Value::Int(n)),
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Ident(id)) if id == "true" => Ok(Value::Bool(true)),
            Some(Tok::Ident(id)) if id == "false" => Ok(Value::Bool(false)),
            Some(Tok::Ident(id)) => Ok(Value::str(id)),
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if self.peek() == Some(&Tok::RBracket) {
                    self.idx += 1;
                    return Ok(Value::Tuple(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break,
                        _ => return Err(self.err("expected `,` or `]` in tuple value")),
                    }
                }
                Ok(Value::Tuple(items))
            }
            Some(Tok::LBrace) => {
                let mut items = BTreeSet::new();
                if self.peek() == Some(&Tok::RBrace) {
                    self.idx += 1;
                    return Ok(Value::Set(items));
                }
                loop {
                    items.insert(self.parse_value()?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        _ => return Err(self.err("expected `,` or `}` in set value")),
                    }
                }
                Ok(Value::Set(items))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    // ---- element-level expressions ----

    fn parse_fexpr(&mut self) -> Result<FuncExpr, ParseError> {
        let mut lhs = self.parse_fand()?;
        while self.peek() == Some(&Tok::Ident("or".into())) {
            self.idx += 1;
            let rhs = self.parse_fand()?;
            lhs = FuncExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_fand(&mut self) -> Result<FuncExpr, ParseError> {
        let mut lhs = self.parse_fnot()?;
        while self.peek() == Some(&Tok::Ident("and".into())) {
            self.idx += 1;
            let rhs = self.parse_fnot()?;
            lhs = FuncExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_fnot(&mut self) -> Result<FuncExpr, ParseError> {
        if self.peek() == Some(&Tok::Ident("not".into())) {
            self.idx += 1;
            return Ok(FuncExpr::Not(Box::new(self.parse_fnot()?)));
        }
        self.parse_fcmp()
    }

    fn parse_fcmp(&mut self) -> Result<FuncExpr, ParseError> {
        let lhs = self.parse_fatom()?;
        let op = match self.peek() {
            Some(Tok::Cmp(op)) => Some(*op),
            Some(Tok::Assign) => Some(CmpOp::Eq),
            _ => None,
        };
        if let Some(op) = op {
            self.idx += 1;
            let rhs = self.parse_fatom()?;
            return Ok(FuncExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn func_by_name(name: &str) -> Option<FuncOp> {
        match name {
            "succ" => Some(FuncOp::Succ),
            "add" => Some(FuncOp::Add),
            "sub" => Some(FuncOp::Sub),
            "mul" => Some(FuncOp::Mul),
            "concat" => Some(FuncOp::Concat),
            _ => None,
        }
    }

    fn parse_fatom(&mut self) -> Result<FuncExpr, ParseError> {
        let mut base = match self.bump() {
            Some(Tok::Ident(id)) if id == "x" => FuncExpr::Elem,
            Some(Tok::Ident(id)) if id == "true" => FuncExpr::Lit(Value::Bool(true)),
            Some(Tok::Ident(id)) if id == "false" => FuncExpr::Lit(Value::Bool(false)),
            Some(Tok::Ident(id)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let op = Self::func_by_name(&id)
                        .ok_or_else(|| self.err(format!("unknown element function `{id}`")))?;
                    self.idx += 1;
                    let mut args = Vec::new();
                    loop {
                        args.push(self.parse_fexpr()?);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            _ => return Err(self.err("expected `,` or `)`")),
                        }
                    }
                    if args.len() != op.arity() {
                        return Err(self.err(format!(
                            "`{id}` expects {} arguments, got {}",
                            op.arity(),
                            args.len()
                        )));
                    }
                    FuncExpr::App(op, args)
                } else {
                    FuncExpr::Lit(Value::str(id))
                }
            }
            Some(Tok::Int(n)) => FuncExpr::Lit(Value::Int(n)),
            Some(Tok::Str(s)) => FuncExpr::Lit(Value::str(s)),
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if self.peek() == Some(&Tok::RBracket) {
                    self.idx += 1;
                    FuncExpr::Tuple(items)
                } else {
                    loop {
                        items.push(self.parse_fexpr()?);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RBracket) => break,
                            _ => return Err(self.err("expected `,` or `]`")),
                        }
                    }
                    FuncExpr::Tuple(items)
                }
            }
            Some(Tok::LParen) => {
                let e = self.parse_fexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                e
            }
            _ => return Err(self.err("expected an element expression")),
        };
        // postfix projections `.k`
        while self.peek() == Some(&Tok::Dot) {
            self.idx += 1;
            match self.bump() {
                Some(Tok::Int(k)) if k >= 0 => {
                    base = FuncExpr::Proj(Box::new(base), k as usize);
                }
                _ => return Err(self.err("expected a projection index after `.`")),
            }
        }
        Ok(base)
    }

    // ---- set-level expressions ----

    fn parse_expr(&mut self) -> Result<AlgExpr, ParseError> {
        let mut lhs = self.parse_term()?;
        while self.peek() == Some(&Tok::Ident("union".into())) {
            self.idx += 1;
            let rhs = self.parse_term()?;
            lhs = AlgExpr::union(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<AlgExpr, ParseError> {
        let mut lhs = self.parse_prod()?;
        while self.peek() == Some(&Tok::Minus) {
            self.idx += 1;
            let rhs = self.parse_prod()?;
            lhs = AlgExpr::diff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_prod(&mut self) -> Result<AlgExpr, ParseError> {
        let mut lhs = self.parse_atom()?;
        while self.peek() == Some(&Tok::Star) {
            self.idx += 1;
            let rhs = self.parse_atom()?;
            lhs = AlgExpr::product(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_atom(&mut self) -> Result<AlgExpr, ParseError> {
        match self.peek() {
            Some(Tok::Ident(id)) if id == "select" || id == "map" => {
                let kind = id.clone();
                self.idx += 1;
                self.expect(&Tok::LParen, "`(`")?;
                let e = self.parse_expr()?;
                self.expect(&Tok::Comma, "`,`")?;
                let f = self.parse_fexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(if kind == "select" {
                    AlgExpr::select(e, f)
                } else {
                    AlgExpr::map(e, f)
                })
            }
            Some(Tok::Ident(id)) if id == "ifp" => {
                self.idx += 1;
                self.expect(&Tok::LParen, "`(`")?;
                let var = self.ident("a fixpoint variable")?;
                self.expect(&Tok::Comma, "`,`")?;
                let body = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(AlgExpr::ifp(var, body))
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident("a name")?;
                if self.peek() == Some(&Tok::LParen) {
                    self.idx += 1;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Tok::RParen) {
                        self.idx += 1;
                    } else {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                _ => return Err(self.err("expected `,` or `)`")),
                            }
                        }
                    }
                    Ok(AlgExpr::Apply(name, args))
                } else {
                    Ok(AlgExpr::Name(name))
                }
            }
            Some(Tok::LBrace) => {
                self.idx += 1;
                let mut items = BTreeSet::new();
                if self.peek() == Some(&Tok::RBrace) {
                    self.idx += 1;
                    return Ok(AlgExpr::Lit(items));
                }
                loop {
                    items.insert(self.parse_value()?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        _ => return Err(self.err("expected `,` or `}` in set literal")),
                    }
                }
                Ok(AlgExpr::Lit(items))
            }
            Some(Tok::LParen) => {
                self.idx += 1;
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.err("expected an algebra expression")),
        }
    }

    fn parse_program(&mut self) -> Result<AlgProgram, ParseError> {
        let mut defs = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(id)) if id == "def" => {
                    self.idx += 1;
                    let name = self.ident("an operation name")?;
                    let mut params = Vec::new();
                    if self.peek() == Some(&Tok::LParen) {
                        self.idx += 1;
                        loop {
                            params.push(self.ident("a parameter name")?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                _ => return Err(self.err("expected `,` or `)`")),
                            }
                        }
                    }
                    self.expect(&Tok::Assign, "`=`")?;
                    let body = self.parse_expr()?;
                    self.expect(&Tok::Semi, "`;` after definition")?;
                    defs.push(OpDef::new(name, params, body));
                }
                Some(Tok::Ident(id)) if id == "query" => {
                    self.idx += 1;
                    let query = self.parse_expr()?;
                    self.expect(&Tok::Semi, "`;` after query")?;
                    if self.peek().is_some() {
                        return Err(self.err("trailing input after query"));
                    }
                    return AlgProgram::new(defs, query).map_err(|e| ParseError {
                        offset: 0,
                        message: e.to_string(),
                    });
                }
                _ => return Err(self.err("expected `def` or `query`")),
            }
        }
    }
}

/// Parse an algebra program (definitions + query).
pub fn parse_program(src: &str) -> Result<AlgProgram, ParseError> {
    Parser {
        toks: lex(src)?,
        idx: 0,
    }
    .parse_program()
}

/// Parse a single algebra expression.
pub fn parse_expr(src: &str) -> Result<AlgExpr, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        idx: 0,
    };
    let e = p.parse_expr()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valid_eval::eval_valid;
    use algrec_value::{Budget, Database, Relation, Truth};

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    #[test]
    fn parses_win_program() {
        let p = parse_program(
            "% the WIN/MOVE game of Section 3.2\n\
             def win = map(move - (map(move, x.0) * win), x.0);\n\
             query win;",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 1);
        assert!(!p.is_nonrecursive());
        let db = Database::new().with("move", Relation::from_pairs([(i(1), i(2))]));
        let out = eval_valid(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out.member(&i(1)), Truth::True);
    }

    #[test]
    fn parses_even_set() {
        let p = parse_program(
            "def se = {0} union map(select(se, x < 10), add(x, 2));\n\
             query se;",
        )
        .unwrap();
        let out = eval_valid(&p, &Database::new(), Budget::SMALL).unwrap();
        assert_eq!(out.member(&i(6)), Truth::True);
        assert_eq!(out.member(&i(7)), Truth::False);
    }

    #[test]
    fn precedence_product_diff_union() {
        // a union b - c * d  ≡  a union (b - (c * d))
        let e = parse_expr("a union b - c * d").unwrap();
        assert_eq!(
            e,
            AlgExpr::union(
                AlgExpr::name("a"),
                AlgExpr::diff(
                    AlgExpr::name("b"),
                    AlgExpr::product(AlgExpr::name("c"), AlgExpr::name("d")),
                ),
            )
        );
    }

    #[test]
    fn parses_defs_with_params() {
        let p = parse_program(
            "def inter(a, b) = a - (a - b);\n\
             query inter(r, s);",
        )
        .unwrap();
        assert_eq!(p.defs[0].params, vec!["a", "b"]);
        assert!(p.is_nonrecursive());
    }

    #[test]
    fn parses_set_literals() {
        let e = parse_expr("{1, 'two', [3, 4], {5}} union {}").unwrap();
        match e {
            AlgExpr::Union(l, r) => {
                match *l {
                    AlgExpr::Lit(items) => {
                        assert_eq!(items.len(), 4);
                        assert!(items.contains(&Value::pair(i(3), i(4))));
                        assert!(items.contains(&Value::set([i(5)])));
                        assert!(items.contains(&Value::str("two")));
                    }
                    other => panic!("expected literal, got {other}"),
                }
                assert_eq!(*r, AlgExpr::Lit(Default::default()));
            }
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn parses_fexprs() {
        let e = parse_expr("select(r, x.0 = x.1 and not (x.0 < 3) or succ(x.0) = 4)").unwrap();
        let AlgExpr::Select(_, test) = e else {
            panic!("expected select");
        };
        assert!(matches!(test, FuncExpr::Or(..)));
        // and the test actually evaluates
        assert!(test.test(&Value::pair(i(3), i(3))).unwrap());
        assert!(test.test(&Value::pair(i(3), i(9))).unwrap()); // succ(3)=4
        assert!(!test.test(&Value::pair(i(1), i(9))).unwrap());
    }

    #[test]
    fn nested_projection() {
        let e = parse_expr("map(r, x.0.1)").unwrap();
        let AlgExpr::Map(_, f) = e else { panic!() };
        assert_eq!(
            f.eval(&Value::pair(Value::pair(i(1), i(2)), i(3))).unwrap(),
            i(2)
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("query ;").is_err());
        assert!(parse_program("def = x; query x;").is_err());
        assert!(parse_program("query a union ;").is_err());
        assert!(parse_program("query {1").is_err());
        assert!(parse_program("query select(r x = 1);").is_err());
        assert!(parse_program("query frob(r, x);").is_ok()); // Apply; fails later at inline
        assert!(parse_program("query a; extra").is_err());
        assert!(parse_expr("map(r, frob(x))").is_err()); // unknown element function
        assert!(parse_program("query 'oops").is_err());
        // double definition caught by validation
        assert!(parse_program("def a = {1}; def a = {2}; query a;").is_err());
    }

    #[test]
    fn round_trip_display() {
        let src = "def win = map((move - (map(move, x.0) * win)), x.0); query win;";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn ifp_syntax() {
        let e = parse_expr("ifp(acc, edge union acc)").unwrap();
        assert!(matches!(e, AlgExpr::Ifp { .. }));
        assert!(parse_expr("ifp(, edge)").is_err());
    }
}
