//! The polarity-aware evaluator.
//!
//! One evaluator serves every language in the family. It computes the
//! exact (two-valued) value of an expression given *two* environments for
//! the recursively-defined constants: `pos`, read at positive occurrences,
//! and `neg`, read at negative occurrences (inside an odd number of
//! difference right-sides). The uses:
//!
//! * **plain algebra / IFP-algebra** (no recursion): `pos = neg` (empty) —
//!   polarity is irrelevant and the evaluator is simply the textbook one,
//!   with `IFP` evaluated inflationarily;
//! * **algebra= / IFP-algebra= under the valid semantics**: the
//!   alternating fixpoint of [`crate::valid_eval`] calls the evaluator
//!   with `(pos, neg)` set to the current (certain, possible) bounds —
//!   "only facts not in T are allowed to be used negatively"
//!   (Section 2.2) becomes *negative occurrences read the other bound*.
//!
//! # Evaluation strategy
//!
//! The paper's semantics fixes *what* is computed; this module also fixes
//! *how*, behind [`EvalOptions`] toggles so the strategies can be ablated:
//!
//! * **interning** — join indexes key on [`Vid`]s (hash-consed values)
//!   instead of full values, and database relations expose a shared
//!   interned first-column index;
//! * **index** — equi-join indexes are cached across fixpoint iterations
//!   for loop-invariant join sides (off: rebuilt per join call);
//! * **delta** — `IFP` bodies that are syntactically monotone in the
//!   fixpoint variable are advanced semi-naively: each iteration
//!   evaluates a *delta* of the body against the facts added last round,
//!   instead of the full body against the whole accumulation. Bodies
//!   where the variable occurs inside any difference right-side fall back
//!   to the naive loop. Loop-invariant subexpressions are also cached per
//!   fixpoint run under this toggle.
//!
//! Every strategy is observation-equivalent to the naive evaluator: same
//! sets, same canonical (`BTreeSet`) ordering, same dynamic errors.

use crate::expr::{AlgExpr, CmpOp, FuncExpr};
use crate::program::AlgProgram;
use crate::CoreError;
use algrec_value::budget::Meter;
use algrec_value::{Budget, ColumnIndex, Database, Symbol, Trace, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A shared, immutable set of values. Environments and evaluation results
/// are reference-counted so that resolving a name is O(1) instead of a
/// deep clone of the whole set.
pub type SetRef = Arc<BTreeSet<Value>>;

/// An assignment of sets to names. Keys are interned [`Symbol`]s, values
/// are shared [`SetRef`]s.
pub type SetEnv = BTreeMap<Symbol, SetRef>;

/// Evaluation-strategy toggles (see the module docs). The semantics is
/// identical under every combination; only the work done differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvalOptions {
    /// Key join indexes by interned value ids ([`Vid`]) and reuse the
    /// shared first-column index of database relations.
    pub interning: bool,
    /// Cache join indexes across fixpoint iterations for loop-invariant
    /// join sides.
    pub index: bool,
    /// Advance monotone fixpoints semi-naively (delta-driven) and cache
    /// loop-invariant subexpression values per fixpoint run.
    pub delta: bool,
    /// Key the per-fixpoint value and index caches by *structural* plan
    /// ids (hash-consed in an [`algrec_plan::PlanArena`]) instead of node
    /// addresses, so structurally equal subexpressions — e.g. the
    /// pointer-distinct copies [`AlgProgram::substitute`] produces —
    /// share one cache entry (cross-rule common-subexpression sharing).
    pub plan: bool,
}

impl EvalOptions {
    /// Every optimization on (the default).
    pub const OPTIMIZED: EvalOptions = EvalOptions {
        interning: true,
        index: true,
        delta: true,
        plan: true,
    };

    /// Every optimization off — the seed evaluator's behavior, kept as
    /// the ablation baseline and the oracle for agreement tests.
    pub const BASELINE: EvalOptions = EvalOptions {
        interning: false,
        index: false,
        delta: false,
        plan: false,
    };
}

impl Default for EvalOptions {
    /// [`EvalOptions::OPTIMIZED`], unless the `ALGREC_EVAL_BASELINE`
    /// environment variable is set to a non-empty value, which forces
    /// [`EvalOptions::BASELINE`]. The CI matrix uses this to run the whole
    /// test suite down the unoptimized path without code changes. The
    /// narrower `ALGREC_PLAN_BASELINE` toggle (read through
    /// [`algrec_plan::enabled`]) switches off only the plan-keyed caches,
    /// leaving the other optimizations on.
    fn default() -> Self {
        match std::env::var_os("ALGREC_EVAL_BASELINE") {
            Some(v) if !v.is_empty() => EvalOptions::BASELINE,
            _ => EvalOptions {
                plan: algrec_plan::enabled(),
                ..EvalOptions::OPTIMIZED
            },
        }
    }
}

/// Concatenate two values as tuples (the relational product convention:
/// non-tuples act as 1-tuples).
pub fn tuple_concat(a: &Value, b: &Value) -> Value {
    let mut items: Vec<Value> = match a {
        Value::Tuple(t) => t.clone(),
        other => vec![other.clone()],
    };
    match b {
        Value::Tuple(t) => items.extend(t.iter().cloned()),
        other => items.push(other.clone()),
    }
    Value::Tuple(items)
}

/// Width of a value under the product convention (tuples spread,
/// non-tuples are 1-wide).
fn concat_width(v: &Value) -> usize {
    match v {
        Value::Tuple(t) => t.len(),
        _ => 1,
    }
}

/// Column `i` of a value under the product convention.
fn concat_col(v: &Value, i: usize) -> Option<&Value> {
    match v {
        Value::Tuple(t) => t.get(i),
        other if i == 0 => Some(other),
        _ => None,
    }
}

/// A recognized equi-join: a chain of selections directly over a product,
/// all of whose tests decompose into *analyzable* conjuncts — boolean
/// combinations of comparisons over literals and projections of the
/// element. Analyzable conjuncts are total except for projection range,
/// so a single width check against the joined sets decides up front
/// whether the unoptimized evaluation would raise a type error.
struct ChainJoin<'e> {
    left: &'e AlgExpr,
    right: &'e AlgExpr,
    /// Equality conjuncts `x.i = x.j` with `i < j` — the join keys.
    eqs: Vec<(usize, usize)>,
    /// Remaining analyzable conjuncts, checked on each joined tuple.
    residual: Vec<&'e FuncExpr>,
    /// Concatenated width needed for every projection to be in range.
    required_width: usize,
    /// The original tests, innermost selection first — the staged
    /// fallback when projections may go out of range (a later stage's
    /// test must then only see earlier stages' survivors).
    staged_tests: Vec<&'e FuncExpr>,
}

impl ChainJoin<'_> {
    /// Is this a single selection (conjunction semantics — every conjunct
    /// is evaluated on every pair, so an out-of-range projection anywhere
    /// is an error) rather than a chain of selections?
    fn single(&self) -> bool {
        self.staged_tests.len() == 1
    }
}

/// Width a pair must have for `t` to evaluate without error, or `None`
/// if `t` is not analyzable (contains arithmetic, nested projections, or
/// non-boolean shapes whose errors cannot be decided by widths alone).
fn conjunct_required_width(t: &FuncExpr) -> Option<usize> {
    fn arg_width(a: &FuncExpr) -> Option<usize> {
        match a {
            FuncExpr::Elem | FuncExpr::Lit(_) => Some(0),
            FuncExpr::Proj(e, k) if **e == FuncExpr::Elem => Some(k + 1),
            FuncExpr::Tuple(items) => items
                .iter()
                .map(arg_width)
                .try_fold(0usize, |m, w| Some(m.max(w?))),
            _ => None,
        }
    }
    match t {
        FuncExpr::Cmp(_, a, b) => Some(arg_width(a)?.max(arg_width(b)?)),
        FuncExpr::And(a, b) | FuncExpr::Or(a, b) => {
            Some(conjunct_required_width(a)?.max(conjunct_required_width(b)?))
        }
        FuncExpr::Not(a) => conjunct_required_width(a),
        _ => None,
    }
}

fn flatten_conjuncts<'e>(t: &'e FuncExpr, out: &mut Vec<&'e FuncExpr>) {
    if let FuncExpr::And(a, b) = t {
        flatten_conjuncts(a, out);
        flatten_conjuncts(b, out);
    } else {
        out.push(t);
    }
}

/// Recognize `expr` (a `Select` node) as an indexable join. Shapes
/// covered, superseding the seed's single `σ_{x.i=x.j}(A × B)`:
/// conjunctive tests (`And`-chains with residual comparisons), chains of
/// selections over one product, and products whose operands are
/// themselves products (the equality then straddles the outer boundary).
fn chain_join(expr: &AlgExpr) -> Option<ChainJoin<'_>> {
    let mut staged_rev: Vec<&FuncExpr> = Vec::new();
    let mut node = expr;
    while let AlgExpr::Select(a, t) = node {
        staged_rev.push(t);
        node = a;
    }
    let AlgExpr::Product(l, r) = node else {
        return None;
    };
    let staged_tests: Vec<&FuncExpr> = staged_rev.into_iter().rev().collect();
    let mut eqs = Vec::new();
    let mut residual = Vec::new();
    let mut required_width = 0usize;
    for t in &staged_tests {
        let mut conjuncts = Vec::new();
        flatten_conjuncts(t, &mut conjuncts);
        for c in conjuncts {
            required_width = required_width.max(conjunct_required_width(c)?);
            if let FuncExpr::Cmp(CmpOp::Eq, a, b) = c {
                if let (FuncExpr::Proj(ea, i), FuncExpr::Proj(eb, j)) = (&**a, &**b) {
                    if **ea == FuncExpr::Elem && **eb == FuncExpr::Elem && i != j {
                        eqs.push((*i.min(j), *i.max(j)));
                        continue;
                    }
                }
            }
            residual.push(c);
        }
    }
    if eqs.is_empty() {
        return None;
    }
    Some(ChainJoin {
        left: l,
        right: r,
        eqs,
        residual,
        required_width,
        staged_tests,
    })
}

/// One fixpoint loop's context: which names vary, plus caches for
/// loop-invariant subexpression values and join indexes, valid for the
/// context's lifetime. Keys are expression node addresses (stable for
/// the duration of an evaluation) plus polarity.
struct FixCtx {
    vars: Vec<Symbol>,
    /// `true` for the valid-semantics inner fixpoint, where the varying
    /// names are read from the varying environment only at *positive*
    /// polarity (negative occurrences read the fixed bound); `false` for
    /// IFP variables, which vary at both polarities.
    positive_only: bool,
    invariant_memo: HashMap<(usize, bool), bool>,
    values: HashMap<(usize, bool), SetRef>,
    indexes: HashMap<(usize, bool, usize), Arc<ColumnIndex<Value>>>,
}

impl FixCtx {
    fn new(vars: Vec<Symbol>, positive_only: bool) -> Self {
        FixCtx {
            vars,
            positive_only,
            invariant_memo: HashMap::new(),
            values: HashMap::new(),
            indexes: HashMap::new(),
        }
    }
}

fn key_of(e: &AlgExpr, positive: bool) -> (usize, bool) {
    (e as *const AlgExpr as usize, positive)
}

/// The evaluator: database bindings, strategy options, the IFP local
/// stack and the stack of active fixpoint contexts.
pub(crate) struct Evaluator<'a> {
    db: &'a Database,
    db_env: HashMap<Symbol, SetRef>,
    pub(crate) opts: EvalOptions,
    locals: Vec<(Symbol, SetRef)>,
    ctxs: Vec<FixCtx>,
    /// Hash-consed plan ids for cache keying (the `plan` option).
    plan_arena: algrec_plan::PlanArena,
    plan_keys: HashMap<usize, algrec_plan::PlanId>,
}

impl<'a> Evaluator<'a> {
    pub(crate) fn new(db: &'a Database, opts: EvalOptions) -> Self {
        let db_env = db
            .iter()
            .map(|(name, rel)| (Symbol::of(name), Arc::new(rel.as_set().clone())))
            .collect();
        Evaluator {
            db,
            db_env,
            opts,
            locals: Vec::new(),
            ctxs: Vec::new(),
            plan_arena: algrec_plan::PlanArena::new(),
            plan_keys: HashMap::new(),
        }
    }

    /// The cache key for `e`: its hash-consed structural plan id when
    /// the `plan` option is on — so the pointer-distinct structural
    /// twins produced by definition inlining share one cache entry —
    /// and its node address otherwise. Sharing is sound because
    /// structural twins have identical free names and therefore
    /// identical invariance classification; the invariance gates in
    /// [`Evaluator::eval`] and [`Evaluator::right_index`] already refuse
    /// any entry whose value could differ between occurrences.
    fn memo_key(&mut self, e: &AlgExpr) -> usize {
        if !self.opts.plan {
            return e as *const AlgExpr as usize;
        }
        crate::explain::lower_expr(e, &mut self.plan_arena, &mut self.plan_keys, None).index()
    }

    pub(crate) fn push_ctx(&mut self, vars: Vec<Symbol>, positive_only: bool) {
        self.ctxs.push(FixCtx::new(vars, positive_only));
    }

    pub(crate) fn pop_ctx(&mut self) {
        self.ctxs.pop();
    }

    /// Is `e` invariant with respect to context `ci` at polarity
    /// `positive` — i.e. none of the context's varying names is read from
    /// varying state anywhere inside `e`?
    fn ctx_invariant(&mut self, ci: usize, e: &AlgExpr, positive: bool) -> bool {
        let key = key_of(e, positive);
        if let Some(&v) = self.ctxs[ci].invariant_memo.get(&key) {
            return v;
        }
        let (vars, positive_only) = {
            let c = &self.ctxs[ci];
            (c.vars.clone(), c.positive_only)
        };
        let inv = vars.iter().all(|v| {
            let name = v.as_str();
            let (at_pos, at_neg) = e.polarity_scan(name, !positive);
            if positive_only {
                // Only reads at overall-positive polarity see varying
                // state; negative reads see the fixed bound.
                !at_pos
            } else {
                !at_pos && !at_neg
            }
        });
        self.ctxs[ci].invariant_memo.insert(key, inv);
        inv
    }

    /// The outermost context index `k` such that `e` is invariant with
    /// respect to *every* context from `k` inward — the context whose
    /// cache may hold `e`'s value. `None` if `e` varies in the innermost
    /// context (or caching is off / no context is active).
    fn cache_suffix(&mut self, e: &AlgExpr, positive: bool) -> Option<usize> {
        if !self.opts.delta || self.ctxs.is_empty() {
            return None;
        }
        let mut k = None;
        for ci in (0..self.ctxs.len()).rev() {
            if self.ctx_invariant(ci, e, positive) {
                k = Some(ci);
            } else {
                break;
            }
        }
        k
    }

    /// Does `e` vary in the innermost context at polarity `positive`?
    fn varies_innermost(&mut self, e: &AlgExpr, positive: bool) -> bool {
        let ci = self.ctxs.len() - 1;
        !self.ctx_invariant(ci, e, positive)
    }

    /// Evaluate `e` with positive occurrences of constants read from
    /// `pos` and negative occurrences from `neg`. IFP variables (bound
    /// locally) and database relations are polarity-independent.
    pub(crate) fn eval(
        &mut self,
        e: &AlgExpr,
        pos: &SetEnv,
        neg: &SetEnv,
        positive: bool,
        meter: &mut Meter,
    ) -> Result<SetRef, CoreError> {
        let suffix = self.cache_suffix(e, positive);
        if suffix.is_some() {
            let key = (self.memo_key(e), positive);
            for c in self.ctxs.iter().rev() {
                if let Some(v) = c.values.get(&key) {
                    return Ok(v.clone());
                }
            }
        }
        let out = self.eval_uncached(e, pos, neg, positive, meter)?;
        if let Some(k) = suffix {
            let key = (self.memo_key(e), positive);
            self.ctxs[k].values.insert(key, out.clone());
        }
        Ok(out)
    }

    fn eval_uncached(
        &mut self,
        e: &AlgExpr,
        pos: &SetEnv,
        neg: &SetEnv,
        positive: bool,
        meter: &mut Meter,
    ) -> Result<SetRef, CoreError> {
        match e {
            AlgExpr::Name(n) => {
                // Resolution order: IFP-bound locals, then the constant
                // environments, then database relations.
                let sym = Symbol::of(n);
                if let Some((_, set)) = self.locals.iter().rev().find(|(s, _)| *s == sym) {
                    return Ok(set.clone());
                }
                let env = if positive { pos } else { neg };
                if let Some(set) = env.get(&sym) {
                    return Ok(set.clone());
                }
                if let Some(set) = self.db_env.get(&sym) {
                    return Ok(set.clone());
                }
                Err(CoreError::UnknownName(n.clone()))
            }
            AlgExpr::Lit(items) => Ok(Arc::new(items.clone())),
            AlgExpr::Union(a, b) => {
                let mut l = self.eval(a, pos, neg, positive, meter)?;
                let r = self.eval(b, pos, neg, positive, meter)?;
                if l.is_empty() {
                    return Ok(r);
                }
                if !r.is_empty() {
                    Arc::make_mut(&mut l).extend(r.iter().cloned());
                }
                Ok(l)
            }
            AlgExpr::Diff(a, b) => {
                let l = self.eval(a, pos, neg, positive, meter)?;
                // Polarity flips on the subtrahend.
                let r = self.eval(b, pos, neg, !positive, meter)?;
                if r.is_empty() {
                    return Ok(l);
                }
                Ok(Arc::new(l.difference(&r).cloned().collect()))
            }
            AlgExpr::Product(a, b) => {
                let l = self.eval(a, pos, neg, positive, meter)?;
                let r = self.eval(b, pos, neg, positive, meter)?;
                let mut out = BTreeSet::new();
                for x in l.iter() {
                    for y in r.iter() {
                        let v = tuple_concat(x, y);
                        meter.check_value_size(v.size())?;
                        if out.insert(v) {
                            meter.add_facts(1)?;
                        }
                    }
                }
                Ok(Arc::new(out))
            }
            AlgExpr::Select(a, test) => {
                // Join recognition — pure evaluation strategy; the
                // semantics (including dynamic type errors) is unchanged.
                if let Some(cj) = chain_join(e) {
                    let l = self.eval(cj.left, pos, neg, positive, meter)?;
                    let r = self.eval(cj.right, pos, neg, positive, meter)?;
                    if l.is_empty() || r.is_empty() {
                        // No pairs: the unoptimized path evaluates no
                        // test, raises no error, returns ∅.
                        return Ok(Arc::new(BTreeSet::new()));
                    }
                    if join_widths_ok(&cj, &l, &r) {
                        let out = self.join(&l, &r, &cj, positive, true, meter)?;
                        return Ok(Arc::new(out));
                    }
                    if cj.single() {
                        // A conjunction evaluates every conjunct on every
                        // pair; some projection is out of range for some
                        // pair, so the unoptimized path errors. Match it.
                        return Err(CoreError::Type(format!(
                            "projection out of bounds in selection over product (needs \
                             width {})",
                            cj.required_width
                        )));
                    }
                    // A σ-chain filters in stages; a projection that is
                    // out of range on a pair an earlier stage drops is NOT
                    // an error. Replay the stages exactly.
                    return self.staged_select(&l, &r, &cj.staged_tests, meter);
                }
                let l = self.eval(a, pos, neg, positive, meter)?;
                let mut out = BTreeSet::new();
                for x in l.iter() {
                    if test.test(x)? {
                        out.insert(x.clone());
                    }
                }
                Ok(Arc::new(out))
            }
            AlgExpr::Map(a, f) => {
                let l = self.eval(a, pos, neg, positive, meter)?;
                let mut out = BTreeSet::new();
                for x in l.iter() {
                    let v = f.eval(x)?;
                    meter.check_value_size(v.size())?;
                    if out.insert(v) {
                        meter.add_facts(1)?;
                    }
                }
                Ok(Arc::new(out))
            }
            AlgExpr::Ifp { var, body } => self.eval_ifp(var, body, pos, neg, positive, meter),
            AlgExpr::Apply(name, _) => Err(CoreError::Invalid(format!(
                "application of `{name}` survived inlining; evaluate via AlgProgram APIs"
            ))),
        }
    }

    /// Inflationary fixed point: "starting with the empty set, at each
    /// step exp is applied on the result obtained in the previous step,
    /// and the result is accumulated" (Section 3.1). The fixpoint
    /// variable reads the accumulation in *both* polarities — that is
    /// precisely the inflationary reading of subtraction ("was not
    /// derived so far", Section 5).
    ///
    /// When the body is syntactically monotone in the variable (no
    /// occurrence inside any difference right-side) the loop is advanced
    /// semi-naively: iteration k evaluates a delta of the body against
    /// the facts iteration k−1 added. Every fact a full evaluation would
    /// add is still added (one-side-new pairs cover products), and every
    /// element-level error still surfaces in the iteration where the
    /// offending element first appears.
    fn eval_ifp(
        &mut self,
        var: &str,
        body: &AlgExpr,
        pos: &SetEnv,
        neg: &SetEnv,
        positive: bool,
        meter: &mut Meter,
    ) -> Result<SetRef, CoreError> {
        let vsym = Symbol::of(var);
        self.push_ctx(vec![vsym], false);
        let result = self.ifp_loop(vsym, body, pos, neg, positive, meter);
        self.pop_ctx();
        result
    }

    fn ifp_loop(
        &mut self,
        vsym: Symbol,
        body: &AlgExpr,
        pos: &SetEnv,
        neg: &SetEnv,
        positive: bool,
        meter: &mut Meter,
    ) -> Result<SetRef, CoreError> {
        let use_delta = self.opts.delta && self.delta_ok(body, positive);
        let mut acc: SetRef = Arc::new(BTreeSet::new());
        let mut delta: BTreeSet<Value> = BTreeSet::new();
        let mut first = true;
        meter.phase_start("ifp");
        loop {
            meter.tick_iteration()?;
            self.locals.push((vsym, acc.clone()));
            let step = if first || !use_delta {
                self.eval(body, pos, neg, positive, meter).map(|s| {
                    if use_delta {
                        s.difference(&acc).cloned().collect()
                    } else {
                        (*s).clone()
                    }
                })
            } else {
                let mut deltas = BTreeMap::new();
                deltas.insert(vsym, std::mem::take(&mut delta));
                self.eval_delta(body, pos, neg, &deltas, positive, meter)
            };
            self.locals.pop();
            let step = step?;
            let before = acc.len();
            let accm = Arc::make_mut(&mut acc);
            if use_delta {
                delta = step
                    .into_iter()
                    .filter(|v| accm.insert(v.clone()))
                    .collect();
            } else {
                accm.extend(step);
            }
            meter.add_facts(acc.len() - before)?;
            meter.record_delta(acc.len() - before);
            if acc.len() == before {
                meter.phase_end();
                return Ok(acc);
            }
            first = false;
        }
    }

    /// Is `body` advanceable by deltas in the innermost context? True
    /// when, within the varying region, every difference right-side is
    /// invariant and no nested IFP varies — then every varying operator
    /// is monotone in the varying names and the delta rules are sound
    /// and complete for the (increasing) fixpoint iterates.
    pub(crate) fn delta_ok(&mut self, body: &AlgExpr, positive: bool) -> bool {
        if !self.varies_innermost(body, positive) {
            return true;
        }
        match body {
            AlgExpr::Name(_) | AlgExpr::Lit(_) => true,
            AlgExpr::Union(a, b) | AlgExpr::Product(a, b) => {
                self.delta_ok(a, positive) && self.delta_ok(b, positive)
            }
            AlgExpr::Select(a, _) | AlgExpr::Map(a, _) => self.delta_ok(a, positive),
            AlgExpr::Diff(a, b) => {
                !self.varies_innermost(b, !positive) && self.delta_ok(a, positive)
            }
            AlgExpr::Ifp { .. } => false, // varying nested fixpoint
            AlgExpr::Apply(..) => false,
        }
    }

    /// The delta of `e` given `deltas` — the facts each varying name
    /// gained last iteration. Sound (every returned fact is in the full
    /// value of `e` under the current environments) and complete (every
    /// fact the full value gained since last iteration is returned);
    /// both by induction using that the fixpoint iterates increase.
    pub(crate) fn eval_delta(
        &mut self,
        e: &AlgExpr,
        pos: &SetEnv,
        neg: &SetEnv,
        deltas: &BTreeMap<Symbol, BTreeSet<Value>>,
        positive: bool,
        meter: &mut Meter,
    ) -> Result<BTreeSet<Value>, CoreError> {
        if !self.varies_innermost(e, positive) {
            return Ok(BTreeSet::new());
        }
        match e {
            AlgExpr::Name(n) => Ok(deltas.get(&Symbol::of(n)).cloned().unwrap_or_default()),
            AlgExpr::Lit(_) => Ok(BTreeSet::new()),
            AlgExpr::Union(a, b) => {
                let mut l = self.eval_delta(a, pos, neg, deltas, positive, meter)?;
                let r = self.eval_delta(b, pos, neg, deltas, positive, meter)?;
                l.extend(r);
                Ok(l)
            }
            AlgExpr::Diff(a, b) => {
                // `b` is invariant in this fixpoint (checked by
                // `delta_ok`), so new facts come only from `a`.
                let l = self.eval_delta(a, pos, neg, deltas, positive, meter)?;
                let r = self.eval(b, pos, neg, !positive, meter)?;
                Ok(l.difference(&r).cloned().collect())
            }
            AlgExpr::Product(a, b) => {
                let da = self.eval_delta(a, pos, neg, deltas, positive, meter)?;
                let db_ = self.eval_delta(b, pos, neg, deltas, positive, meter)?;
                let cur_a = self.eval(a, pos, neg, positive, meter)?;
                let cur_b = self.eval(b, pos, neg, positive, meter)?;
                let mut out = BTreeSet::new();
                // Every new pair has a new coordinate: δa × cur(b) ∪
                // cur(a) × δb (cur values already include the deltas).
                for (xs, ys) in [(&da, &*cur_b), (&*cur_a, &db_)] {
                    for x in xs.iter() {
                        for y in ys.iter() {
                            let v = tuple_concat(x, y);
                            meter.check_value_size(v.size())?;
                            if out.insert(v) {
                                meter.add_facts(1)?;
                            }
                        }
                    }
                }
                Ok(out)
            }
            AlgExpr::Select(a, test) => {
                if let Some(cj) = chain_join(e) {
                    let cur_l = self.eval(cj.left, pos, neg, positive, meter)?;
                    let cur_r = self.eval(cj.right, pos, neg, positive, meter)?;
                    if cur_l.is_empty() || cur_r.is_empty() {
                        return Ok(BTreeSet::new());
                    }
                    if join_widths_ok(&cj, &cur_l, &cur_r) {
                        let dl = self.eval_delta(cj.left, pos, neg, deltas, positive, meter)?;
                        let dr = self.eval_delta(cj.right, pos, neg, deltas, positive, meter)?;
                        // δl joins the *full* right side (its cached index
                        // is valid); full left joins δr, whose ad-hoc
                        // index must never enter the caches.
                        let mut out = self.join(&dl, &cur_r, &cj, positive, true, meter)?;
                        if !dr.is_empty() {
                            let dr = Arc::new(dr);
                            out.extend(self.join(&cur_l, &dr, &cj, positive, false, meter)?);
                        }
                        return Ok(out);
                    }
                    if cj.single() {
                        // The full evaluation would error on this
                        // iteration's pairs; report the same error.
                        return Err(CoreError::Type(format!(
                            "projection out of bounds in selection over product (needs \
                             width {})",
                            cj.required_width
                        )));
                    }
                    // σ-chain with possible range errors: fall through to
                    // the stage-exact filter of the argument's delta.
                }
                let l = self.eval_delta(a, pos, neg, deltas, positive, meter)?;
                let mut out = BTreeSet::new();
                for x in l {
                    if test.test(&x)? {
                        out.insert(x);
                    }
                }
                Ok(out)
            }
            AlgExpr::Map(a, f) => {
                let l = self.eval_delta(a, pos, neg, deltas, positive, meter)?;
                let mut out = BTreeSet::new();
                for x in l.iter() {
                    let v = f.eval(x)?;
                    meter.check_value_size(v.size())?;
                    if out.insert(v) {
                        meter.add_facts(1)?;
                    }
                }
                Ok(out)
            }
            // `delta_ok` bans varying nested fixpoints and applications.
            AlgExpr::Ifp { .. } | AlgExpr::Apply(..) => Err(CoreError::Invalid(
                "delta evaluation reached a non-delta-able operator".into(),
            )),
        }
    }

    /// Replay a chain of selections stage by stage over the materialized
    /// product — exact fallback semantics, including which elements each
    /// stage's test is evaluated on.
    fn staged_select(
        &mut self,
        l: &SetRef,
        r: &SetRef,
        staged_tests: &[&FuncExpr],
        meter: &mut Meter,
    ) -> Result<SetRef, CoreError> {
        let mut cur = BTreeSet::new();
        for x in l.iter() {
            for y in r.iter() {
                let v = tuple_concat(x, y);
                meter.check_value_size(v.size())?;
                if cur.insert(v) {
                    meter.add_facts(1)?;
                }
            }
        }
        for t in staged_tests {
            let mut next = BTreeSet::new();
            for x in cur {
                if t.test(&x)? {
                    next.insert(x);
                }
            }
            cur = next;
        }
        Ok(Arc::new(cur))
    }

    /// Execute a recognized join of `l` and `r`. Callers must have
    /// checked `join_widths_ok`, after which no projection can go out of
    /// range and no residual test can error.
    fn join(
        &mut self,
        l: &BTreeSet<Value>,
        r: &SetRef,
        cj: &ChainJoin<'_>,
        positive: bool,
        right_is_full: bool,
        meter: &mut Meter,
    ) -> Result<BTreeSet<Value>, CoreError> {
        let mut out = BTreeSet::new();
        if l.is_empty() || r.is_empty() {
            return Ok(out);
        }
        let mut local_indexes: HashMap<usize, Arc<ColumnIndex<Value>>> = HashMap::new();
        for x in l.iter() {
            let w = concat_width(x);
            // Classify the equalities for this left element's width.
            let mut ok = true;
            let mut straddle: Vec<(usize, usize)> = Vec::new(); // (left col, right col)
            let mut right_conds: Vec<(usize, usize)> = Vec::new();
            for &(i, j) in &cj.eqs {
                if j < w {
                    if concat_col(x, i) != concat_col(x, j) {
                        ok = false;
                        break;
                    }
                } else if i >= w {
                    right_conds.push((i - w, j - w));
                } else {
                    straddle.push((i, j - w));
                }
            }
            if !ok {
                continue;
            }
            let emit = |this: &mut Self,
                        y: &Value,
                        out: &mut BTreeSet<Value>,
                        meter: &mut Meter|
             -> Result<(), CoreError> {
                let _ = this;
                let v = tuple_concat(x, y);
                for t in &cj.residual {
                    if !t.test(&v)? {
                        return Ok(());
                    }
                }
                meter.check_value_size(v.size())?;
                if out.insert(v) {
                    meter.add_facts(1)?;
                }
                Ok(())
            };
            let matches_rest = |y: &Value| -> bool {
                straddle
                    .iter()
                    .skip(1)
                    .all(|&(i, o)| concat_col(x, i) == concat_col(y, o))
                    && right_conds
                        .iter()
                        .all(|&(oi, oj)| concat_col(y, oi) == concat_col(y, oj))
            };
            if let Some(&(ki, off)) = straddle.first() {
                let key = concat_col(x, ki).expect("ki < w");
                let idx = match local_indexes.get(&off) {
                    Some(idx) => idx.clone(),
                    None => {
                        let idx =
                            self.right_index(r, cj.right, positive, off, right_is_full, meter)?;
                        local_indexes.insert(off, idx.clone());
                        idx
                    }
                };
                let candidates: Vec<Value> = idx.probe(key).cloned().collect();
                meter.record_index_probe(!candidates.is_empty());
                for y in &candidates {
                    if matches_rest(y) {
                        emit(self, y, &mut out, meter)?;
                    }
                }
            } else {
                for y in r.iter() {
                    if matches_rest(y) {
                        emit(self, y, &mut out, meter)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// The index of `r` on column `off`, with three sources in order of
    /// preference: the shared first-column index of a database relation,
    /// a context cache entry for a loop-invariant join side, or a fresh
    /// build for this call.
    fn right_index(
        &mut self,
        r: &SetRef,
        right_expr: &AlgExpr,
        positive: bool,
        off: usize,
        right_is_full: bool,
        meter: &mut Meter,
    ) -> Result<Arc<ColumnIndex<Value>>, CoreError> {
        if right_is_full && off == 0 && self.opts.index && self.opts.interning {
            if let AlgExpr::Name(n) = right_expr {
                if let Some(db_set) = self.db_env.get(&Symbol::of(n)) {
                    if Arc::ptr_eq(r, db_set) {
                        if let Some(rel) = self.db.get(n) {
                            return Ok(rel.first_index());
                        }
                    }
                }
            }
        }
        let cache_at = if self.opts.index && right_is_full {
            self.cache_suffix(right_expr, positive)
        } else {
            None
        };
        let key = (self.memo_key(right_expr), positive, off);
        if cache_at.is_some() {
            for c in self.ctxs.iter().rev() {
                if let Some(idx) = c.indexes.get(&key) {
                    // A cached index is only valid for the set it was
                    // built from; invariance guarantees that.
                    return Ok(idx.clone());
                }
            }
        }
        let built = ColumnIndex::build(
            r.iter().cloned(),
            |v| concat_col(v, off),
            self.opts.interning,
        )
        .map_err(|bad| {
            CoreError::Type(format!(
                "projection out of bounds in join over {bad} (column {off})"
            ))
        })?;
        let built = Arc::new(built);
        meter.record_index_build(built.key_count());
        if let Some(k) = cache_at {
            self.ctxs[k].indexes.insert(key, built.clone());
        }
        Ok(built)
    }
}

/// Can every projection mentioned by the recognized join stay in range on
/// every pair? (Widths are checked against the *minimum* element widths:
/// `required ≤ min_w(l) + min_w(r)` ⇔ no pair can be too narrow.)
fn join_widths_ok(cj: &ChainJoin<'_>, l: &BTreeSet<Value>, r: &BTreeSet<Value>) -> bool {
    let min_l = l.iter().map(concat_width).min().unwrap_or(0);
    let min_r = r.iter().map(concat_width).min().unwrap_or(0);
    let need = cj
        .required_width
        .max(cj.eqs.iter().map(|&(_, j)| j + 1).max().unwrap_or(0));
    need <= min_l + min_r
}

/// Evaluate a non-recursive program (plain `algebra` or `IFP-algebra`)
/// exactly, with the default (fully optimized) strategy. Recursion is
/// rejected — use [`crate::valid_eval::eval_valid`], which computes the
/// valid semantics that recursion requires (Section 3.2: recursive
/// equations may have no initial valid model, so their evaluation must be
/// three-valued).
pub fn eval_exact(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
) -> Result<BTreeSet<Value>, CoreError> {
    eval_exact_with(program, db, budget, EvalOptions::default())
}

/// [`eval_exact`] with explicit strategy options (ablation and agreement
/// testing).
pub fn eval_exact_with(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
    opts: EvalOptions,
) -> Result<BTreeSet<Value>, CoreError> {
    eval_exact_traced(program, db, budget, opts, Trace::Null)
}

/// [`eval_exact_with`] with evaluation telemetry: fixpoint phases,
/// per-round delta sizes and index traffic flow to `trace` (see
/// [`algrec_value::stats`]). With [`Trace::Null`] this is exactly
/// [`eval_exact_with`]. On success the result size is reported as
/// `facts_materialized`; on a budget error the events already emitted
/// show consumption at the point of failure.
pub fn eval_exact_traced(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
    opts: EvalOptions,
    trace: Trace,
) -> Result<BTreeSet<Value>, CoreError> {
    let inlined = program.inline()?;
    if !inlined.defs.is_empty() {
        return Err(CoreError::Unsupported(format!(
            "program defines recursive constants ({}); exact evaluation is only for the \
             non-recursive algebra / IFP-algebra — use eval_valid for algebra=",
            inlined
                .defs
                .iter()
                .map(|d| d.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    let empty = SetEnv::new();
    let mut meter = budget.meter_traced(trace);
    let mut ev = Evaluator::new(db, opts);
    let out = ev.eval(&inlined.query, &empty, &empty, true, &mut meter)?;
    meter.record_materialized(out.len());
    Ok(Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncExpr, FuncOp};
    use crate::program::OpDef;
    use algrec_value::Relation;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn db_edges(pairs: &[(i64, i64)]) -> Database {
        Database::new().with(
            "edge",
            Relation::from_pairs(pairs.iter().map(|(a, b)| (i(*a), i(*b)))),
        )
    }

    fn eval(e: AlgExpr, db: &Database) -> BTreeSet<Value> {
        let opt = eval_exact_with(
            &AlgProgram::query(e.clone()),
            db,
            Budget::SMALL,
            EvalOptions::OPTIMIZED,
        )
        .unwrap();
        let base = eval_exact_with(
            &AlgProgram::query(e),
            db,
            Budget::SMALL,
            EvalOptions::BASELINE,
        )
        .unwrap();
        assert_eq!(opt, base, "optimized and baseline evaluation disagree");
        opt
    }

    #[test]
    fn set_operations() {
        let db = Database::new()
            .with("r", Relation::from_values([i(1), i(2)]))
            .with("s", Relation::from_values([i(2), i(3)]));
        let union = eval(AlgExpr::union(AlgExpr::name("r"), AlgExpr::name("s")), &db);
        assert_eq!(union.len(), 3);
        let diff = eval(AlgExpr::diff(AlgExpr::name("r"), AlgExpr::name("s")), &db);
        assert_eq!(diff, [i(1)].into_iter().collect());
        let prod = eval(
            AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
            &db,
        );
        assert_eq!(prod.len(), 4);
        assert!(prod.contains(&Value::pair(i(1), i(2))));
    }

    #[test]
    fn select_and_map() {
        let db = Database::new().with("n", Relation::from_values((0..6).map(i)));
        let evens = eval(
            AlgExpr::select(
                AlgExpr::name("n"),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::App(
                        FuncOp::Mul,
                        vec![FuncExpr::Lit(i(0)), FuncExpr::Elem],
                    )),
                    Box::new(FuncExpr::Lit(i(0))),
                ),
            ),
            &db,
        );
        assert_eq!(evens.len(), 6); // 0*x = 0 always — selects everything
        let doubled = eval(
            AlgExpr::map(
                AlgExpr::name("n"),
                FuncExpr::App(FuncOp::Mul, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
            ),
            &db,
        );
        assert_eq!(doubled, (0..6).map(|k| i(2 * k)).collect());
    }

    #[test]
    fn ifp_transitive_closure() {
        // TC = IFP_{x. edge ∪ π₀₃(σ₁₌₂(x × edge))}
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("x"), AlgExpr::name("edge")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let tc = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("edge"), join));
        let out = eval(tc, &db_edges(&[(1, 2), (2, 3), (3, 4)]));
        assert_eq!(out.len(), 6);
        assert!(out.contains(&Value::pair(i(1), i(4))));
    }

    #[test]
    fn ifp_non_positive_is_inflationary() {
        // IFP_{x. {a} − x}: the Section 4 Example 4 expression. Result {a}.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("x")),
        );
        let out = eval(e, &Database::new());
        assert_eq!(out, [Value::str("a")].into_iter().collect());
    }

    #[test]
    fn nonrecursive_defs_inline_and_evaluate() {
        let inter = OpDef::new(
            "inter",
            ["x", "y"],
            AlgExpr::diff(
                AlgExpr::name("x"),
                AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("y")),
            ),
        );
        let p = AlgProgram::new(
            [inter],
            AlgExpr::Apply("inter".into(), vec![AlgExpr::name("r"), AlgExpr::name("s")]),
        )
        .unwrap();
        let db = Database::new()
            .with("r", Relation::from_values([i(1), i(2), i(3)]))
            .with("s", Relation::from_values([i(2), i(3), i(4)]));
        let out = eval_exact(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out, [i(2), i(3)].into_iter().collect());
    }

    #[test]
    fn recursion_rejected_by_exact_eval() {
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        assert!(matches!(
            eval_exact(&p, &Database::new(), Budget::SMALL),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_name_reported() {
        let err = eval_exact(
            &AlgProgram::query(AlgExpr::name("nope")),
            &Database::new(),
            Budget::SMALL,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::UnknownName("nope".into()));
    }

    #[test]
    fn runaway_ifp_hits_budget() {
        // IFP_{x. {0} ∪ MAP₊₂(x)} generates the even numbers — infinite;
        // the budget must stop it (Section 3.1).
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(
                AlgExpr::lit([i(0)]),
                AlgExpr::map(
                    AlgExpr::name("x"),
                    FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                ),
            ),
        );
        for opts in [EvalOptions::OPTIMIZED, EvalOptions::BASELINE] {
            let err = eval_exact_with(
                &AlgProgram::query(e.clone()),
                &Database::new(),
                Budget::new(50, 1_000_000, 64),
                opts,
            );
            assert!(matches!(err, Err(CoreError::Budget(_))));
        }
    }

    #[test]
    fn bounded_even_window_succeeds() {
        // The same even-number generator, windowed by a selection.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(
                AlgExpr::lit([i(0)]),
                AlgExpr::map(
                    AlgExpr::select(
                        AlgExpr::name("x"),
                        FuncExpr::Cmp(
                            CmpOp::Lt,
                            Box::new(FuncExpr::Elem),
                            Box::new(FuncExpr::Lit(i(10))),
                        ),
                    ),
                    FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                ),
            ),
        );
        let out = eval(e, &Database::new());
        assert_eq!(out, (0..=5).map(|k| i(2 * k)).collect());
    }

    #[test]
    fn join_recognition_matches_fallback() {
        // σ_{x.1 = x.2}(r × s) via the join path equals element-wise
        // filtering of the materialized product.
        let db = Database::new()
            .with(
                "r",
                Relation::from_pairs([(i(1), i(2)), (i(3), i(4)), (i(5), i(2))]),
            )
            .with(
                "s",
                Relation::from_pairs([(i(2), i(9)), (i(4), i(8)), (i(7), i(7))]),
            );
        let joined = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            &db,
        );
        // manual expectation
        let mut expect = BTreeSet::new();
        for rv in db.get("r").unwrap().iter() {
            for sv in db.get("s").unwrap().iter() {
                let c = tuple_concat(rv, sv);
                let t = c.as_tuple().unwrap();
                if t[1] == t[2] {
                    expect.insert(c);
                }
            }
        }
        assert_eq!(joined, expect);
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn join_recognition_left_only_and_right_only_columns() {
        let db = Database::new()
            .with("r", Relation::from_pairs([(i(1), i(1)), (i(1), i(2))]))
            .with("s", Relation::from_pairs([(i(5), i(5)), (i(5), i(6))]));
        // both columns on the left: σ_{x.0 = x.1}
        let left = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(0)),
                    Box::new(FuncExpr::proj(1)),
                ),
            ),
            &db,
        );
        assert_eq!(left.len(), 2); // (1,1) × both s rows
                                   // both columns on the right: σ_{x.2 = x.3}
        let right = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(2)),
                    Box::new(FuncExpr::proj(3)),
                ),
            ),
            &db,
        );
        assert_eq!(right.len(), 2); // both r rows × (5,5)
    }

    #[test]
    fn join_out_of_range_is_a_type_error_like_fallback() {
        let db = Database::new()
            .with("r", Relation::from_values([i(1)]))
            .with("s", Relation::from_values([i(2)]));
        let q = AlgProgram::query(AlgExpr::select(
            AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
            FuncExpr::Cmp(
                CmpOp::Eq,
                Box::new(FuncExpr::proj(1)),
                Box::new(FuncExpr::proj(5)),
            ),
        ));
        for opts in [EvalOptions::OPTIMIZED, EvalOptions::BASELINE] {
            assert!(matches!(
                eval_exact_with(&q, &db, Budget::SMALL, opts),
                Err(CoreError::Type(_))
            ));
        }
    }

    #[test]
    fn tuple_concat_flattens() {
        assert_eq!(
            tuple_concat(&Value::pair(i(1), i(2)), &i(3)),
            Value::tuple([i(1), i(2), i(3)])
        );
        assert_eq!(
            tuple_concat(&i(1), &Value::pair(i(2), i(3))),
            Value::tuple([i(1), i(2), i(3)])
        );
    }

    #[test]
    fn shadowing_ifp_vars() {
        // ifp(x, {1} ∪ ifp(x, x ∪ {2})) — inner binder shadows outer.
        let inner = AlgExpr::ifp(
            "x",
            AlgExpr::union(AlgExpr::name("x"), AlgExpr::lit([i(2)])),
        );
        let outer = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::lit([i(1)]), inner));
        let out = eval(outer, &Database::new());
        assert_eq!(out, [i(1), i(2)].into_iter().collect());
    }

    // ---- widened join recognition, one test per recognized shape ----

    fn pairs_db() -> Database {
        Database::new()
            .with(
                "r",
                Relation::from_pairs([(i(1), i(2)), (i(2), i(2)), (i(3), i(4))]),
            )
            .with(
                "s",
                Relation::from_pairs([(i(2), i(7)), (i(4), i(7)), (i(4), i(8))]),
            )
    }

    /// Oracle: materialize the product and filter with the given tests in
    /// stages (the unoptimized evaluation order).
    fn staged_oracle(db: &Database, l: &str, r: &str, tests: &[FuncExpr]) -> BTreeSet<Value> {
        let mut cur = BTreeSet::new();
        for x in db.get(l).unwrap().iter() {
            for y in db.get(r).unwrap().iter() {
                cur.insert(tuple_concat(x, y));
            }
        }
        for t in tests {
            cur.retain(|v| t.test(v).unwrap());
        }
        cur
    }

    fn eq(ci: usize, cj: usize) -> FuncExpr {
        FuncExpr::Cmp(
            CmpOp::Eq,
            Box::new(FuncExpr::proj(ci)),
            Box::new(FuncExpr::proj(cj)),
        )
    }

    #[test]
    fn widened_join_conjunctive_test() {
        // σ_{x.1=x.2 ∧ x.1=x.0}(r × s): two equalities in one And.
        let db = pairs_db();
        let test = FuncExpr::And(Box::new(eq(1, 2)), Box::new(eq(1, 0)));
        let got = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                test.clone(),
            ),
            &db,
        );
        assert_eq!(got, staged_oracle(&db, "r", "s", &[test]));
        assert!(got.contains(&Value::tuple([i(2), i(2), i(2), i(7)])));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn widened_join_equality_plus_residual() {
        // σ_{x.1=x.2 ∧ x.3 < x.1·…}: equality drives the index, the
        // comparison residual filters joined tuples.
        let db = pairs_db();
        let residual = FuncExpr::Cmp(
            CmpOp::Lt,
            Box::new(FuncExpr::proj(0)),
            Box::new(FuncExpr::proj(3)),
        );
        let test = FuncExpr::And(Box::new(eq(1, 2)), Box::new(residual));
        let got = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                test.clone(),
            ),
            &db,
        );
        assert_eq!(got, staged_oracle(&db, "r", "s", &[test]));
    }

    #[test]
    fn widened_join_select_chain() {
        // σ_{x.0 < x.3}(σ_{x.1=x.2}(r × s)): the chain's stages merge
        // into one indexed join.
        let db = pairs_db();
        let outer = FuncExpr::Cmp(
            CmpOp::Lt,
            Box::new(FuncExpr::proj(0)),
            Box::new(FuncExpr::proj(3)),
        );
        let got = eval(
            AlgExpr::select(
                AlgExpr::select(
                    AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                    eq(1, 2),
                ),
                outer.clone(),
            ),
            &db,
        );
        assert_eq!(got, staged_oracle(&db, "r", "s", &[eq(1, 2), outer]));
    }

    #[test]
    fn widened_join_nested_product() {
        // σ_{x.3=x.4}((r × r) × s): the left operand is itself a product;
        // the equality straddles the outer boundary and is indexed.
        let db = pairs_db();
        let got = eval(
            AlgExpr::select(
                AlgExpr::product(
                    AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("r")),
                    AlgExpr::name("s"),
                ),
                eq(3, 4),
            ),
            &db,
        );
        // oracle over the 3-way product
        let mut expect = BTreeSet::new();
        for a in db.get("r").unwrap().iter() {
            for b in db.get("r").unwrap().iter() {
                for c in db.get("s").unwrap().iter() {
                    let v = tuple_concat(&tuple_concat(a, b), c);
                    if eq(3, 4).test(&v).unwrap() {
                        expect.insert(v);
                    }
                }
            }
        }
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn select_chain_out_of_range_only_errors_like_staged_fallback() {
        // σ_{x.5=x.0}(σ_{x.0=x.1}(r × s)): x.5 is out of range for every
        // pair, but the *staged* fallback only evaluates the outer test
        // on inner survivors. With no survivors there is no error — the
        // widened path must not introduce one.
        let db = Database::new()
            .with("r", Relation::from_pairs([(i(1), i(2))]))
            .with("s", Relation::from_pairs([(i(3), i(4))]));
        let chain = AlgExpr::select(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                eq(0, 1), // (1,2,…) never satisfies x.0=x.1 → no survivors
            ),
            eq(5, 0),
        );
        let out = eval(chain, &db);
        assert!(out.is_empty());
        // Same projections in a single conjunction DO error (every
        // conjunct is evaluated on every pair).
        let single = AlgExpr::select(
            AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
            FuncExpr::And(Box::new(eq(0, 1)), Box::new(eq(5, 0))),
        );
        for opts in [EvalOptions::OPTIMIZED, EvalOptions::BASELINE] {
            assert!(matches!(
                eval_exact_with(&AlgProgram::query(single.clone()), &db, Budget::SMALL, opts),
                Err(CoreError::Type(_))
            ));
        }
    }

    #[test]
    fn delta_ifp_agrees_with_naive_on_non_monotone_body() {
        // IFP body with the variable inside a double subtraction —
        // delta-ineligible, must fall back and agree with baseline.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(
                AlgExpr::lit([i(1)]),
                AlgExpr::diff(
                    AlgExpr::lit([i(2), i(3)]),
                    AlgExpr::diff(AlgExpr::lit([i(3)]), AlgExpr::name("x")),
                ),
            ),
        );
        let out = eval(e, &Database::new());
        assert!(out.contains(&i(1)));
        assert!(out.contains(&i(2)));
    }

    #[test]
    fn delta_ifp_tc_agrees_with_baseline_on_longer_chain() {
        // A 12-node chain: the semi-naive loop must produce exactly the
        // same closure as the naive loop (checked inside `eval`).
        let edges: Vec<(i64, i64)> = (1..12).map(|k| (k, k + 1)).collect();
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("x"), AlgExpr::name("edge")),
                eq(1, 2),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let tc = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("edge"), join));
        let out = eval(tc, &db_edges(&edges));
        assert_eq!(out.len(), 11 * 12 / 2);
        assert!(out.contains(&Value::pair(i(1), i(12))));
    }
}
