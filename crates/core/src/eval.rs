//! The polarity-aware evaluator.
//!
//! One evaluator serves every language in the family. It computes the
//! exact (two-valued) value of an expression given *two* environments for
//! the recursively-defined constants: `pos`, read at positive occurrences,
//! and `neg`, read at negative occurrences (inside an odd number of
//! difference right-sides). The uses:
//!
//! * **plain algebra / IFP-algebra** (no recursion): `pos = neg` (empty) —
//!   polarity is irrelevant and the evaluator is simply the textbook one,
//!   with `IFP` evaluated inflationarily;
//! * **algebra= / IFP-algebra= under the valid semantics**: the
//!   alternating fixpoint of [`crate::valid_eval`] calls the evaluator
//!   with `(pos, neg)` set to the current (certain, possible) bounds —
//!   "only facts not in T are allowed to be used negatively"
//!   (Section 2.2) becomes *negative occurrences read the other bound*.

use crate::expr::{AlgExpr, FuncExpr};
use crate::program::AlgProgram;
use crate::CoreError;
use algrec_value::budget::Meter;
use algrec_value::{Budget, Database, Value};
use std::collections::{BTreeMap, BTreeSet};

/// An assignment of sets to names.
pub type SetEnv = BTreeMap<String, BTreeSet<Value>>;

/// Concatenate two values as tuples (the relational product convention:
/// non-tuples act as 1-tuples).
pub fn tuple_concat(a: &Value, b: &Value) -> Value {
    let mut items: Vec<Value> = match a {
        Value::Tuple(t) => t.clone(),
        other => vec![other.clone()],
    };
    match b {
        Value::Tuple(t) => items.extend(t.iter().cloned()),
        other => items.push(other.clone()),
    }
    Value::Tuple(items)
}

/// Evaluate `expr` with positive occurrences of constants read from `pos`
/// and negative occurrences from `neg`. IFP variables (bound locally) and
/// database relations are polarity-independent. `positive` is the current
/// polarity (`true` at the root).
#[allow(clippy::too_many_arguments)]
pub fn eval_polar(
    expr: &AlgExpr,
    pos: &SetEnv,
    neg: &SetEnv,
    locals: &mut Vec<(String, BTreeSet<Value>)>,
    db: &Database,
    meter: &mut Meter,
    positive: bool,
) -> Result<BTreeSet<Value>, CoreError> {
    match expr {
        AlgExpr::Name(n) => {
            // Resolution order: IFP-bound locals, then the constant
            // environments, then database relations.
            if let Some((_, set)) = locals.iter().rev().find(|(name, _)| name == n) {
                return Ok(set.clone());
            }
            let env = if positive { pos } else { neg };
            if let Some(set) = env.get(n) {
                return Ok(set.clone());
            }
            if let Some(rel) = db.get(n) {
                return Ok(rel.as_set().clone());
            }
            Err(CoreError::UnknownName(n.clone()))
        }
        AlgExpr::Lit(items) => Ok(items.clone()),
        AlgExpr::Union(a, b) => {
            let mut l = eval_polar(a, pos, neg, locals, db, meter, positive)?;
            let r = eval_polar(b, pos, neg, locals, db, meter, positive)?;
            l.extend(r);
            Ok(l)
        }
        AlgExpr::Diff(a, b) => {
            let l = eval_polar(a, pos, neg, locals, db, meter, positive)?;
            // Polarity flips on the subtrahend.
            let r = eval_polar(b, pos, neg, locals, db, meter, !positive)?;
            Ok(l.difference(&r).cloned().collect())
        }
        AlgExpr::Product(a, b) => {
            let l = eval_polar(a, pos, neg, locals, db, meter, positive)?;
            let r = eval_polar(b, pos, neg, locals, db, meter, positive)?;
            let mut out = BTreeSet::new();
            for x in &l {
                for y in &r {
                    let v = tuple_concat(x, y);
                    meter.check_value_size(v.size())?;
                    if out.insert(v) {
                        meter.add_facts(1)?;
                    }
                }
            }
            Ok(out)
        }
        AlgExpr::Select(a, test) => {
            // Join recognition: σ_{x.i = x.j}(A × B) is evaluated as an
            // indexed equi-join instead of materializing the product.
            // This is pure evaluation strategy — the semantics is
            // unchanged — but it is the difference between the algebra
            // being a usable query language and a formal device (the
            // paper's operators are exactly ∪ − × σ MAP, so every join is
            // spelled this way).
            if let (AlgExpr::Product(pa, pb), FuncExpr::Cmp(crate::expr::CmpOp::Eq, cl, cr)) =
                (&**a, test)
            {
                if let (FuncExpr::Proj(el, i), FuncExpr::Proj(er, j)) = (&**cl, &**cr) {
                    if **el == FuncExpr::Elem && **er == FuncExpr::Elem {
                        let l = eval_polar(pa, pos, neg, locals, db, meter, positive)?;
                        let r = eval_polar(pb, pos, neg, locals, db, meter, positive)?;
                        return equi_join(&l, &r, *i.min(j), *i.max(j), meter);
                    }
                }
            }
            let l = eval_polar(a, pos, neg, locals, db, meter, positive)?;
            let mut out = BTreeSet::new();
            for x in l {
                if test.test(&x)? {
                    out.insert(x);
                }
            }
            Ok(out)
        }
        AlgExpr::Map(a, f) => {
            let l = eval_polar(a, pos, neg, locals, db, meter, positive)?;
            let mut out = BTreeSet::new();
            for x in &l {
                let v = f.eval(x)?;
                meter.check_value_size(v.size())?;
                if out.insert(v) {
                    meter.add_facts(1)?;
                }
            }
            Ok(out)
        }
        AlgExpr::Ifp { var, body } => {
            // Inflationary fixed point: "starting with the empty set, at
            // each step exp is applied on the result obtained in the
            // previous step, and the result is accumulated" (Section 3.1).
            // The fixpoint variable reads the accumulation in *both*
            // polarities — that is precisely the inflationary reading of
            // subtraction ("was not derived so far", Section 5).
            let mut acc: BTreeSet<Value> = BTreeSet::new();
            loop {
                meter.tick_iteration()?;
                locals.push((var.clone(), acc.clone()));
                let step = eval_polar(body, pos, neg, locals, db, meter, positive);
                locals.pop();
                let step = step?;
                let before = acc.len();
                acc.extend(step);
                meter.add_facts(acc.len() - before)?;
                if acc.len() == before {
                    return Ok(acc);
                }
            }
        }
        AlgExpr::Apply(name, _) => Err(CoreError::Invalid(format!(
            "application of `{name}` survived inlining; evaluate via AlgProgram APIs"
        ))),
    }
}

/// Width of a value under the product convention (tuples spread,
/// non-tuples are 1-wide).
fn concat_width(v: &Value) -> usize {
    match v {
        Value::Tuple(t) => t.len(),
        _ => 1,
    }
}

/// Column `i` of a value under the product convention.
fn concat_col(v: &Value, i: usize) -> Option<&Value> {
    match v {
        Value::Tuple(t) => t.get(i),
        other if i == 0 => Some(other),
        _ => None,
    }
}

/// `σ_{x.i = x.j}(L × R)` with `i < j`, as an indexed equi-join. The
/// columns of a concatenated tuple split between the left element (its
/// width `w`) and the right element; widths may vary per element, so the
/// right side is indexed lazily per offset.
fn equi_join(
    l: &BTreeSet<Value>,
    r: &BTreeSet<Value>,
    i: usize,
    j: usize,
    meter: &mut Meter,
) -> Result<BTreeSet<Value>, CoreError> {
    use std::collections::BTreeMap;
    let mut out = BTreeSet::new();
    // Lazily built indexes of R by column `off`.
    let mut indexes: BTreeMap<usize, BTreeMap<&Value, Vec<&Value>>> = BTreeMap::new();
    for x in l {
        let w = concat_width(x);
        if j < w {
            // Both columns inside the left element: a plain filter.
            if concat_col(x, i) == concat_col(x, j) {
                for y in r {
                    let v = tuple_concat(x, y);
                    meter.check_value_size(v.size())?;
                    if out.insert(v) {
                        meter.add_facts(1)?;
                    }
                }
            }
            continue;
        }
        if i >= w {
            // Both columns inside the right element: filter R per x.
            for y in r {
                let (a, b) = (concat_col(y, i - w), concat_col(y, j - w));
                if a.is_none() || b.is_none() {
                    // The σ test would project out of range — the same
                    // dynamic type error the unoptimized path raises.
                    return Err(CoreError::Type(format!(
                        "projection .{i}/.{j} out of bounds in join over {y}"
                    )));
                }
                if a == b {
                    let v = tuple_concat(x, y);
                    meter.check_value_size(v.size())?;
                    if out.insert(v) {
                        meter.add_facts(1)?;
                    }
                }
            }
            continue;
        }
        // The straddling case — the actual join.
        let key = concat_col(x, i).expect("i < w");
        let off = j - w;
        // `entry().or_insert_with` cannot propagate the ragged-width error
        // from inside the closure, hence the two-step check.
        #[allow(clippy::map_entry)]
        if !indexes.contains_key(&off) {
            let mut idx: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
            for y in r {
                match concat_col(y, off) {
                    Some(k) => idx.entry(k).or_default().push(y),
                    None => {
                        return Err(CoreError::Type(format!(
                            "projection .{j} out of bounds in join over {y}"
                        )))
                    }
                }
            }
            indexes.insert(off, idx);
        }
        let index = indexes.get(&off).expect("just inserted");
        if let Some(matches) = index.get(key) {
            for y in matches {
                let v = tuple_concat(x, y);
                meter.check_value_size(v.size())?;
                if out.insert(v) {
                    meter.add_facts(1)?;
                }
            }
        }
    }
    Ok(out)
}

/// Evaluate a non-recursive program (plain `algebra` or `IFP-algebra`)
/// exactly. Recursion is rejected — use [`crate::valid_eval::eval_valid`],
/// which computes the valid semantics that recursion requires
/// (Section 3.2: recursive equations may have no initial valid model, so
/// their evaluation must be three-valued).
pub fn eval_exact(
    program: &AlgProgram,
    db: &Database,
    budget: Budget,
) -> Result<BTreeSet<Value>, CoreError> {
    let inlined = program.inline()?;
    if !inlined.defs.is_empty() {
        return Err(CoreError::Unsupported(format!(
            "program defines recursive constants ({}); exact evaluation is only for the \
             non-recursive algebra / IFP-algebra — use eval_valid for algebra=",
            inlined
                .defs
                .iter()
                .map(|d| d.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    let empty = SetEnv::new();
    let mut meter = budget.meter();
    eval_polar(
        &inlined.query,
        &empty,
        &empty,
        &mut Vec::new(),
        db,
        &mut meter,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, FuncExpr, FuncOp};
    use crate::program::OpDef;
    use algrec_value::Relation;

    fn i(n: i64) -> Value {
        Value::int(n)
    }

    fn db_edges(pairs: &[(i64, i64)]) -> Database {
        Database::new().with(
            "edge",
            Relation::from_pairs(pairs.iter().map(|(a, b)| (i(*a), i(*b)))),
        )
    }

    fn eval(e: AlgExpr, db: &Database) -> BTreeSet<Value> {
        eval_exact(&AlgProgram::query(e), db, Budget::SMALL).unwrap()
    }

    #[test]
    fn set_operations() {
        let db = Database::new()
            .with("r", Relation::from_values([i(1), i(2)]))
            .with("s", Relation::from_values([i(2), i(3)]));
        let union = eval(AlgExpr::union(AlgExpr::name("r"), AlgExpr::name("s")), &db);
        assert_eq!(union.len(), 3);
        let diff = eval(AlgExpr::diff(AlgExpr::name("r"), AlgExpr::name("s")), &db);
        assert_eq!(diff, [i(1)].into_iter().collect());
        let prod = eval(AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")), &db);
        assert_eq!(prod.len(), 4);
        assert!(prod.contains(&Value::pair(i(1), i(2))));
    }

    #[test]
    fn select_and_map() {
        let db = Database::new().with("n", Relation::from_values((0..6).map(i)));
        let evens = eval(
            AlgExpr::select(
                AlgExpr::name("n"),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::App(
                        FuncOp::Mul,
                        vec![FuncExpr::Lit(i(0)), FuncExpr::Elem],
                    )),
                    Box::new(FuncExpr::Lit(i(0))),
                ),
            ),
            &db,
        );
        assert_eq!(evens.len(), 6); // 0*x = 0 always — selects everything
        let doubled = eval(
            AlgExpr::map(
                AlgExpr::name("n"),
                FuncExpr::App(FuncOp::Mul, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
            ),
            &db,
        );
        assert_eq!(doubled, (0..6).map(|k| i(2 * k)).collect());
    }

    #[test]
    fn ifp_transitive_closure() {
        // TC = IFP_{x. edge ∪ π₀₃(σ₁₌₂(x × edge))}
        let join = AlgExpr::map(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("x"), AlgExpr::name("edge")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            FuncExpr::Tuple(vec![FuncExpr::proj(0), FuncExpr::proj(3)]),
        );
        let tc = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("edge"), join));
        let out = eval(tc, &db_edges(&[(1, 2), (2, 3), (3, 4)]));
        assert_eq!(out.len(), 6);
        assert!(out.contains(&Value::pair(i(1), i(4))));
    }

    #[test]
    fn ifp_non_positive_is_inflationary() {
        // IFP_{x. {a} − x}: the Section 4 Example 4 expression. Result {a}.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("x")),
        );
        let out = eval(e, &Database::new());
        assert_eq!(out, [Value::str("a")].into_iter().collect());
    }

    #[test]
    fn nonrecursive_defs_inline_and_evaluate() {
        let inter = OpDef::new(
            "inter",
            ["x", "y"],
            AlgExpr::diff(
                AlgExpr::name("x"),
                AlgExpr::diff(AlgExpr::name("x"), AlgExpr::name("y")),
            ),
        );
        let p = AlgProgram::new(
            [inter],
            AlgExpr::Apply(
                "inter".into(),
                vec![AlgExpr::name("r"), AlgExpr::name("s")],
            ),
        )
        .unwrap();
        let db = Database::new()
            .with("r", Relation::from_values([i(1), i(2), i(3)]))
            .with("s", Relation::from_values([i(2), i(3), i(4)]));
        let out = eval_exact(&p, &db, Budget::SMALL).unwrap();
        assert_eq!(out, [i(2), i(3)].into_iter().collect());
    }

    #[test]
    fn recursion_rejected_by_exact_eval() {
        let p = AlgProgram::new(
            [OpDef::constant(
                "s",
                AlgExpr::diff(AlgExpr::lit([Value::str("a")]), AlgExpr::name("s")),
            )],
            AlgExpr::name("s"),
        )
        .unwrap();
        assert!(matches!(
            eval_exact(&p, &Database::new(), Budget::SMALL),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_name_reported() {
        let err = eval_exact(
            &AlgProgram::query(AlgExpr::name("nope")),
            &Database::new(),
            Budget::SMALL,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::UnknownName("nope".into()));
    }

    #[test]
    fn runaway_ifp_hits_budget() {
        // IFP_{x. {0} ∪ MAP₊₂(x)} generates the even numbers — infinite;
        // the budget must stop it (Section 3.1).
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(
                AlgExpr::lit([i(0)]),
                AlgExpr::map(
                    AlgExpr::name("x"),
                    FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                ),
            ),
        );
        let err = eval_exact(
            &AlgProgram::query(e),
            &Database::new(),
            Budget::new(50, 1_000_000, 64),
        );
        assert!(matches!(err, Err(CoreError::Budget(_))));
    }

    #[test]
    fn bounded_even_window_succeeds() {
        // The same even-number generator, windowed by a selection.
        let e = AlgExpr::ifp(
            "x",
            AlgExpr::union(
                AlgExpr::lit([i(0)]),
                AlgExpr::map(
                    AlgExpr::select(
                        AlgExpr::name("x"),
                        FuncExpr::Cmp(
                            CmpOp::Lt,
                            Box::new(FuncExpr::Elem),
                            Box::new(FuncExpr::Lit(i(10))),
                        ),
                    ),
                    FuncExpr::App(FuncOp::Add, vec![FuncExpr::Elem, FuncExpr::Lit(i(2))]),
                ),
            ),
        );
        let out = eval(e, &Database::new());
        assert_eq!(out, (0..=5).map(|k| i(2 * k)).collect());
    }

    #[test]
    fn join_recognition_matches_fallback() {
        // σ_{x.1 = x.2}(r × s) via the join path equals element-wise
        // filtering of the materialized product.
        let db = Database::new()
            .with(
                "r",
                Relation::from_pairs([(i(1), i(2)), (i(3), i(4)), (i(5), i(2))]),
            )
            .with(
                "s",
                Relation::from_pairs([(i(2), i(9)), (i(4), i(8)), (i(7), i(7))]),
            );
        let joined = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(1)),
                    Box::new(FuncExpr::proj(2)),
                ),
            ),
            &db,
        );
        // manual expectation
        let mut expect = BTreeSet::new();
        for rv in db.get("r").unwrap().iter() {
            for sv in db.get("s").unwrap().iter() {
                let c = tuple_concat(rv, sv);
                let t = c.as_tuple().unwrap();
                if t[1] == t[2] {
                    expect.insert(c);
                }
            }
        }
        assert_eq!(joined, expect);
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn join_recognition_left_only_and_right_only_columns() {
        let db = Database::new()
            .with("r", Relation::from_pairs([(i(1), i(1)), (i(1), i(2))]))
            .with("s", Relation::from_pairs([(i(5), i(5)), (i(5), i(6))]));
        // both columns on the left: σ_{x.0 = x.1}
        let left = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(0)),
                    Box::new(FuncExpr::proj(1)),
                ),
            ),
            &db,
        );
        assert_eq!(left.len(), 2); // (1,1) × both s rows
        // both columns on the right: σ_{x.2 = x.3}
        let right = eval(
            AlgExpr::select(
                AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
                FuncExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(FuncExpr::proj(2)),
                    Box::new(FuncExpr::proj(3)),
                ),
            ),
            &db,
        );
        assert_eq!(right.len(), 2); // both r rows × (5,5)
    }

    #[test]
    fn join_out_of_range_is_a_type_error_like_fallback() {
        let db = Database::new()
            .with("r", Relation::from_values([i(1)]))
            .with("s", Relation::from_values([i(2)]));
        let q = AlgProgram::query(AlgExpr::select(
            AlgExpr::product(AlgExpr::name("r"), AlgExpr::name("s")),
            FuncExpr::Cmp(
                CmpOp::Eq,
                Box::new(FuncExpr::proj(1)),
                Box::new(FuncExpr::proj(5)),
            ),
        ));
        assert!(matches!(
            eval_exact(&q, &db, Budget::SMALL),
            Err(CoreError::Type(_))
        ));
    }

    #[test]
    fn tuple_concat_flattens() {
        assert_eq!(
            tuple_concat(&Value::pair(i(1), i(2)), &i(3)),
            Value::tuple([i(1), i(2), i(3)])
        );
        assert_eq!(
            tuple_concat(&i(1), &Value::pair(i(2), i(3))),
            Value::tuple([i(1), i(2), i(3)])
        );
    }

    #[test]
    fn shadowing_ifp_vars() {
        // ifp(x, {1} ∪ ifp(x, x ∪ {2})) — inner binder shadows outer.
        let inner = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::name("x"), AlgExpr::lit([i(2)])));
        let outer = AlgExpr::ifp("x", AlgExpr::union(AlgExpr::lit([i(1)]), inner));
        let out = eval(outer, &Database::new());
        assert_eq!(out, [i(1), i(2)].into_iter().collect());
    }
}
