//! Errors of the algebra engines.

use algrec_value::BudgetError;
use std::fmt;

/// Any failure of algebra-program validation or evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// A resource budget was exhausted (fixed points may generate infinite
    /// sets — Section 3.1; the budget is the finite window).
    Budget(BudgetError),
    /// A dynamic type error in a selection test or restructuring function.
    Type(String),
    /// The program violates the Section 3.2 restrictions (duplicate
    /// equations, arity mismatches, …).
    Invalid(String),
    /// The program is outside the supported fragment, with a hint on how
    /// to express it (e.g. recursive operations with parameters must be
    /// instantiated — the paper's genericity-as-macro reading).
    Unsupported(String),
    /// A name is neither a database relation nor a defined operation.
    UnknownName(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Budget(b) => write!(f, "budget: {b}"),
            CoreError::Type(m) => write!(f, "type error: {m}"),
            CoreError::Invalid(m) => write!(f, "invalid program: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::UnknownName(n) => write!(f, "unknown relation or operation `{n}`"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<BudgetError> for CoreError {
    fn from(b: BudgetError) -> Self {
        CoreError::Budget(b)
    }
}

impl From<crate::expr::TypeError> for CoreError {
    fn from(t: crate::expr::TypeError) -> Self {
        CoreError::Type(t.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CoreError::Type("t".into()).to_string().contains("type"));
        assert!(CoreError::Invalid("i".into())
            .to_string()
            .contains("invalid"));
        assert!(CoreError::Unsupported("u".into())
            .to_string()
            .contains("unsupported"));
        assert!(CoreError::UnknownName("r".into())
            .to_string()
            .contains("`r`"));
        let b: CoreError = BudgetError::Facts(2).into();
        assert!(b.to_string().contains("budget"));
        let t: CoreError = crate::expr::TypeError("oops".into()).into();
        assert_eq!(t, CoreError::Type("oops".into()));
    }
}
