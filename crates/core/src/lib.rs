//! The algebra family of *"On the Power of Algebras with Recursion"*
//! (Beeri & Milo, SIGMOD 1993) — the paper's primary contribution.
//!
//! Section 3 of the paper defines a hierarchy of algebraic query
//! languages over sets of complex objects:
//!
//! * **algebra** — `∪ − × σ MAP` (generic, first-order);
//! * **IFP-algebra** — plus an inflationary fixed point operator; its
//!   *positive* fragment is equivalent to stratified deduction
//!   (Theorem 4.3);
//! * **algebra= / IFP-algebra=** — plus recursive operation definitions
//!   `f(x̄) = exp(x̄)`, under the **valid semantics**; these express
//!   exactly general deduction with negation (Theorem 6.2), and IFP
//!   becomes redundant (Corollary 3.6).
//!
//! This crate implements all of them:
//!
//! * [`expr`] — the expression language and the element-level function
//!   sublanguage;
//! * [`program`] — operation definitions with the Section 3.2
//!   restrictions, definition inlining;
//! * [`eval`] — the polarity-aware evaluator: exact evaluation for the
//!   non-recursive languages (IFP evaluated inflationarily);
//! * [`valid_eval`] — the alternating-fixpoint valid semantics for
//!   recursive programs, three-valued: `S = {a} − S` answers `Unknown`,
//!   cyclic WIN/MOVE games report exactly the drawn positions as
//!   undefined;
//! * [`analysis`] — language classification, positivity, monotonicity and
//!   the Proposition 3.4 check;
//! * [`parser`] — a concrete syntax.
//!
//! ```
//! use algrec_core::{parser::parse_program, valid_eval::eval_valid};
//! use algrec_value::{Budget, Database, Relation, Truth, Value};
//!
//! // Example 3: WIN = π₁(MOVE − (π₁(MOVE) × WIN))
//! let program = parse_program(
//!     "def win = map(move - (map(move, x.0) * win), x.0); query win;"
//! ).unwrap();
//! let db = Database::new().with("move", Relation::from_pairs([
//!     (Value::int(1), Value::int(2)),
//!     (Value::int(2), Value::int(3)),
//! ]));
//! let result = eval_valid(&program, &db, Budget::SMALL).unwrap();
//! assert_eq!(result.member(&Value::int(2)), Truth::True);   // 2 wins
//! assert_eq!(result.member(&Value::int(1)), Truth::False);  // 1 loses
//! assert!(result.is_well_defined()); // acyclic MOVE ⇒ initial valid model
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod eval;
pub mod explain;
pub mod expr;
pub mod opt;
pub mod parser;
pub mod program;
pub mod valid_eval;

pub use analysis::{classify, LanguageClass};
pub use error::CoreError;
pub use eval::{eval_exact, eval_exact_traced, eval_exact_with, EvalOptions, SetEnv, SetRef};
pub use explain::explain_program;
pub use expr::{AlgExpr, CmpOp, FuncExpr, FuncOp};
pub use opt::{simplify, simplify_program};
pub use program::{AlgProgram, OpDef};
pub use valid_eval::{eval_valid, eval_valid_traced, eval_valid_with, ValidAlgebraResult};
