//! Property-based tests for the algebra engines: simplifier soundness,
//! join-recognition equivalence, parser round-trips, and the three-valued
//! interval invariant of the valid evaluation.

use algrec_core::expr::{AlgExpr, CmpOp, FuncExpr};
use algrec_core::program::{AlgProgram, OpDef};
use algrec_core::{eval_exact, eval_valid, simplify, simplify_program};
use algrec_value::{Budget, Database, Relation, Value};
use proptest::prelude::*;

fn i(n: i64) -> Value {
    Value::int(n)
}

/// A database with unary `u` and binary `b` relations over small ints.
fn arb_db() -> impl Strategy<Value = Database> {
    (
        prop::collection::btree_set(-4i64..4, 0..6),
        prop::collection::btree_set((-4i64..4, -4i64..4), 0..8),
    )
        .prop_map(|(us, bs)| {
            Database::new()
                .with("u", Relation::from_values(us.into_iter().map(i)))
                .with(
                    "b",
                    Relation::from_pairs(bs.into_iter().map(|(x, y)| (i(x), i(y)))),
                )
        })
}

/// Random element-level tests over pair-shaped inputs.
fn arb_test() -> impl Strategy<Value = FuncExpr> {
    let atom = (
        prop::sample::select(
            &[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][..],
        ),
        prop_oneof![Just(FuncExpr::proj(0)), Just(FuncExpr::proj(1))],
        prop_oneof![
            (-4i64..4).prop_map(|k| FuncExpr::Lit(i(k))),
            Just(FuncExpr::proj(0)),
            Just(FuncExpr::proj(1)),
        ],
    )
        .prop_map(|(op, l, r)| FuncExpr::Cmp(op, Box::new(l), Box::new(r)));
    atom.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FuncExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FuncExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| FuncExpr::Not(Box::new(a))),
        ]
    })
}

/// Random algebra expressions over `u` (unary) and `b` (binary), kept
/// type-coherent: expressions are either "scalar-set" or "pair-set"
/// shaped, tracked by the boolean.
fn arb_expr() -> impl Strategy<Value = AlgExpr> {
    // pair-shaped leaves only, to keep projections well-typed
    let leaf = prop_oneof![
        Just(AlgExpr::name("b")),
        prop::collection::btree_set((-4i64..4, -4i64..4), 0..4).prop_map(|s| AlgExpr::Lit(
            s.into_iter()
                .map(|(x, y)| Value::pair(i(x), i(y)))
                .collect()
        )),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| AlgExpr::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| AlgExpr::diff(a, b)),
            (inner.clone(), arb_test()).prop_map(|(a, t)| AlgExpr::select(a, t)),
            inner.clone().prop_map(|a| AlgExpr::map(
                a,
                FuncExpr::Tuple(vec![FuncExpr::proj(1), FuncExpr::proj(0)])
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simplifier preserves exact evaluation.
    #[test]
    fn simplify_preserves_exact_semantics(e in arb_expr(), db in arb_db()) {
        let p = AlgProgram::query(e.clone());
        let s = AlgProgram::query(simplify(&e));
        let before = eval_exact(&p, &db, Budget::LARGE);
        let after = eval_exact(&s, &db, Budget::LARGE);
        match (before, after) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // constant folding may *remove* a latent type error; it must
            // never introduce one.
            (Err(_), _) => {}
            (Ok(a), Err(e)) => panic!("simplify introduced an error {e} (expected {a:?})"),
        }
    }

    /// The simplifier preserves the three-valued valid semantics of
    /// recursive programs built from random bodies.
    #[test]
    fn simplify_preserves_valid_semantics(e in arb_expr(), db in arb_db()) {
        // close the expression over a recursive constant: s = e ∪ (b − s)
        let body = AlgExpr::union(e, AlgExpr::diff(AlgExpr::name("b"), AlgExpr::name("s")));
        let p = AlgProgram::new([OpDef::constant("s", body)], AlgExpr::name("s")).unwrap();
        let s = simplify_program(&p);
        let before = eval_valid(&p, &db, Budget::LARGE);
        let after = eval_valid(&s, &db, Budget::LARGE);
        match (before, after) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.query.lower(), b.query.lower());
                prop_assert_eq!(a.query.upper(), b.query.upper());
            }
            (Err(_), _) => {}
            (Ok(_), Err(e)) => panic!("simplify introduced an error {e}"),
        }
    }

    /// Join recognition computes the same set as the unrecognized
    /// (obfuscated) form of the same selection.
    #[test]
    fn join_equals_filtered_product(
        db in arb_db(),
        ij in prop::sample::select(&[(0usize, 2usize), (1, 2), (0, 3), (1, 3), (0, 1), (2, 3)][..]),
    ) {
        let (ci, cj) = ij;
        let cmp = FuncExpr::Cmp(
            CmpOp::Eq,
            Box::new(FuncExpr::proj(ci)),
            Box::new(FuncExpr::proj(cj)),
        );
        let joined = AlgProgram::query(AlgExpr::select(
            AlgExpr::product(AlgExpr::name("b"), AlgExpr::name("b")),
            cmp.clone(),
        ));
        // `And(cmp, true)` defeats the pattern matcher → fallback path
        let fallback = AlgProgram::query(AlgExpr::select(
            AlgExpr::product(AlgExpr::name("b"), AlgExpr::name("b")),
            FuncExpr::And(Box::new(cmp), Box::new(FuncExpr::Lit(Value::Bool(true)))),
        ));
        let a = eval_exact(&joined, &db, Budget::LARGE).unwrap();
        let b = eval_exact(&fallback, &db, Budget::LARGE).unwrap();
        prop_assert_eq!(a, b);
    }

    /// eval_valid maintains lower ⊆ upper and, on recursion-free queries,
    /// matches eval_exact.
    #[test]
    fn valid_eval_interval_invariant(e in arb_expr(), db in arb_db()) {
        let p = AlgProgram::query(e);
        match (eval_valid(&p, &db, Budget::LARGE), eval_exact(&p, &db, Budget::LARGE)) {
            (Ok(v), Ok(x)) => {
                prop_assert!(v.is_well_defined());
                prop_assert_eq!(v.query.to_exact().unwrap(), x);
            }
            (Err(_), Err(_)) => {}
            (v, x) => panic!("valid/exact disagree on failure: {v:?} vs {x:?}"),
        }
    }

    /// Display → parse round-trips random expressions.
    #[test]
    fn parser_round_trips(e in arb_expr()) {
        let text = format!("query {e};");
        let p = algrec_core::parser::parse_program(&text)
            .unwrap_or_else(|err| panic!("{text}\n{err}"));
        prop_assert_eq!(p.query, e);
    }

    /// Polarity analysis: an expression where `s` only ever appears on
    /// difference left-sides is syntactically monotone in `s`.
    #[test]
    fn polarity_analysis_consistency(e in arb_expr()) {
        // `e` never mentions `s`, so both polarities must be absent…
        prop_assert!(!e.occurs_positively("s"));
        prop_assert!(!e.occurs_negatively("s"));
        // …and wrapping in `s − e` / `e − s` sets exactly one polarity.
        let left = AlgExpr::diff(AlgExpr::name("s"), e.clone());
        prop_assert!(left.occurs_positively("s") && !left.occurs_negatively("s"));
        let right = AlgExpr::diff(e, AlgExpr::name("s"));
        prop_assert!(right.occurs_negatively("s") && !right.occurs_positively("s"));
    }
}
