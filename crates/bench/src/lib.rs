//! Experiment harness for the `algrec` reproduction of Beeri & Milo
//! (SIGMOD 1993).
//!
//! The paper is a theory paper with no evaluation section; the experiment
//! suite ([`experiments`], E1–E10) instruments and *verifies* its theorems
//! on synthetic workloads ([`workloads`]). `cargo run -p algrec-bench
//! --bin tables --release` prints every experiment table; the criterion
//! benches under `benches/` time the hot paths.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;
pub mod workloads;
