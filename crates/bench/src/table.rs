//! Minimal aligned-text tables for the experiment reports.

use std::fmt;

/// A rendered experiment table.
pub struct Table {
    /// Experiment id (E1…E8).
    pub id: &'static str,
    /// Human-readable claim under test.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a `Duration` in adaptive units.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "smoke", &["n", "value"]);
        t.row(vec!["1".into(), "long-cell".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0 — smoke"));
        assert!(s.contains("|   1 | long-cell |"));
        assert!(s.contains("| 100 |         x |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.50s");
    }
}
