//! Minimal aligned-text tables for the experiment reports.

use algrec_value::EvalStats;
use std::fmt;

/// A rendered experiment table.
pub struct Table {
    /// Experiment id (E1…E9).
    pub id: &'static str,
    /// Human-readable claim under test.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Numeric side-channel metrics (name → value), e.g. raw timings in
    /// seconds, for the machine-readable report.
    pub metrics: Vec<(String, f64)>,
    /// Evaluation telemetry per labelled run (see
    /// [`algrec_value::stats`]), collected by untimed traced re-runs so
    /// the timing columns stay untraced. Serialized under `"stats"` in
    /// the machine-readable report.
    pub stats: Vec<(String, EvalStats)>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            metrics: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Record a numeric metric for the machine-readable report.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Record evaluation telemetry for a labelled run.
    pub fn stat(&mut self, label: impl Into<String>, stats: EvalStats) {
        self.stats.push((label.into(), stats));
    }

    /// The table as a JSON object (headers, formatted rows, numeric
    /// metrics, and per-run evaluation stats).
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_str(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_str(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(name, value)| format!("{}:{}", json_str(name), json_num(*value)))
            .collect();
        let stats: Vec<String> = self
            .stats
            .iter()
            .map(|(label, s)| format!("{}:{}", json_str(label), s.to_json()))
            .collect();
        format!(
            "{{\"id\":{},\"title\":{},\"headers\":[{}],\"rows\":[{}],\"metrics\":{{{}}},\"stats\":{{{}}}}}",
            json_str(self.id),
            json_str(&self.title),
            headers.join(","),
            rows.join(","),
            metrics.join(","),
            stats.join(",")
        )
    }
}

/// Serialize a full experiment report (all tables) as a JSON document.
pub fn report_json(tables: &[&Table]) -> String {
    let entries: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    format!("{{\"experiments\":[{}]}}", entries.join(","))
}

/// Escape and quote a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (JSON has no NaN/Inf; clamp to null).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a `Duration` in adaptive units.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "smoke", &["n", "value"]);
        t.row(vec!["1".into(), "long-cell".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0 — smoke"));
        assert!(s.contains("|   1 | long-cell |"));
        assert!(s.contains("| 100 |         x |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_report_shape() {
        let mut t = Table::new("E0", "smoke \"quoted\"", &["n", "agree"]);
        t.row(vec!["1".into(), "yes".into()]);
        t.metric("t_smoke_s", 0.5);
        let json = t.to_json();
        assert!(json.contains("\"id\":\"E0\""));
        assert!(json.contains("smoke \\\"quoted\\\""));
        assert!(json.contains("[\"1\",\"yes\"]"));
        assert!(json.contains("\"t_smoke_s\":0.5"));
        let report = report_json(&[&t]);
        assert!(report.starts_with("{\"experiments\":["));
        assert!(report.ends_with("]}"));
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.50s");
    }
}
