//! The experiment suite E1–E11 (see DESIGN.md §7).
//!
//! The paper has no tables or figures; each experiment here *is* one of
//! its claims, instrumented. Every runner both measures and **verifies**:
//! an equivalence experiment panics if the claimed equivalence fails on
//! any instance, so `cargo run -p algrec-bench --bin tables` doubles as a
//! reproduction check. EXPERIMENTS.md records the outputs.

use crate::table::{fmt_dur, Table};
use crate::workloads as w;
use algrec_core::analysis::prop34_check;
use algrec_core::{eval_exact, eval_exact_traced, EvalOptions};
use algrec_datalog::{evaluate, evaluate_traced, stable_models_of, EvalError, Semantics};
use algrec_translate::{
    algebra_to_datalog, check_roundtrip, edb_arities, inflationary_to_valid, measured_stages,
    TranslationMode,
};
use algrec_value::{Budget, Database, Trace, Value};
use std::time::Instant;

fn budget() -> Budget {
    Budget::LARGE
}

/// Re-run a traced evaluation and pull the collected stats out. The timed
/// measurements above each call stay untraced (Null sink) so telemetry
/// never skews the reported numbers.
fn collect<T>(run: impl FnOnce(Trace) -> T) -> algrec_value::EvalStats {
    let trace = Trace::collect();
    let _ = run(trace.clone());
    trace.stats().expect("collecting trace has stats")
}

/// E1 — Theorem 4.3: stratified safe deduction ≡ positive IFP-algebra.
/// Transitive closure + complement on random graphs. With `stats`, each
/// run is repeated once traced and its [`algrec_value::EvalStats`] lands
/// in the report.
pub fn e1(sizes: &[i64], stats: bool) -> Table {
    let mut t = Table::new(
        "E1",
        "Thm 4.3: stratified deduction ≡ positive IFP-algebra (TC + complement)",
        &[
            "n",
            "edges",
            "tc",
            "un",
            "t_deduction",
            "t_algebra",
            "agree",
        ],
    );
    for &n in sizes {
        let db = w::with_nodes(
            w::random_graph("edge", n, (2 * n) as usize, false, 11 + n as u64),
            n,
        );
        let ded = w::unreach_datalog();
        let t0 = Instant::now();
        let d_out = evaluate(&ded, &db, Semantics::Stratified, budget()).unwrap();
        let t_d = t0.elapsed();

        let alg = w::unreach_algebra();
        let t1 = Instant::now();
        let a_out = eval_exact(&alg, &db, budget()).unwrap();
        let t_a = t1.elapsed();

        let expected: std::collections::BTreeSet<Value> = d_out
            .model
            .certain
            .facts("un")
            .map(|args| Value::pair(args[0].clone(), args[1].clone()))
            .collect();
        let agree = a_out == expected;
        assert!(agree, "E1 equivalence failed at n={n}");
        if stats {
            t.stat(
                format!("deduction_n{n}"),
                collect(|tr| {
                    evaluate_traced(&ded, &db, Semantics::Stratified, budget(), tr).unwrap()
                }),
            );
            t.stat(
                format!("algebra_n{n}"),
                collect(|tr| {
                    eval_exact_traced(&alg, &db, budget(), EvalOptions::default(), tr).unwrap()
                }),
            );
        }
        t.metric(format!("t_deduction_n{n}_s"), t_d.as_secs_f64());
        t.metric(format!("t_algebra_n{n}_s"), t_a.as_secs_f64());
        t.row(vec![
            n.to_string(),
            db.get("edge").unwrap().len().to_string(),
            d_out.model.certain.count("tc").to_string(),
            a_out.len().to_string(),
            fmt_dur(t_d),
            fmt_dur(t_a),
            "yes".into(),
        ]);
    }
    t
}

/// E2 — Prop 5.1: IFP-algebra → deduction under the inflationary
/// semantics. Includes the nested-difference query where the verbatim
/// construction *diverges* — a reproduction finding.
pub fn e2(sizes: &[i64]) -> Table {
    let mut t = Table::new(
        "E2",
        "Prop 5.1: naive algebra→deduction, inflationary target (divergence on nested diff)",
        &["query", "n", "t_algebra", "t_deduction", "naive agrees"],
    );
    // TC (positive) across sizes: must agree.
    for &n in sizes {
        let db = w::random_graph("edge", n, (2 * n) as usize, false, 23 + n as u64);
        let alg = w::tc_algebra();
        let t0 = Instant::now();
        let expect = eval_exact(&alg, &db, budget()).unwrap();
        let t_a = t0.elapsed();
        let tr = algebra_to_datalog(&alg, &edb_arities(&db), TranslationMode::Naive).unwrap();
        let t1 = Instant::now();
        let out = evaluate(&tr.program, &db, Semantics::Inflationary, budget()).unwrap();
        let t_d = t1.elapsed();
        let got: std::collections::BTreeSet<Value> = out
            .model
            .certain
            .facts(&tr.result_pred)
            .map(|a| a[0].clone())
            .collect();
        let agree = got == expect;
        assert!(agree, "E2 TC failed at n={n}");
        t.row(vec![
            "ifp-tc".into(),
            n.to_string(),
            fmt_dur(t_a),
            fmt_dur(t_d),
            "yes".into(),
        ]);
    }
    // Example 4 (flat non-positive): must agree.
    {
        let alg = w::example4_algebra();
        let db = Database::new();
        let expect = eval_exact(&alg, &db, budget()).unwrap();
        let tr = algebra_to_datalog(&alg, &edb_arities(&db), TranslationMode::Naive).unwrap();
        let out = evaluate(&tr.program, &db, Semantics::Inflationary, budget()).unwrap();
        let got: std::collections::BTreeSet<Value> = out
            .model
            .certain
            .facts(&tr.result_pred)
            .map(|a| a[0].clone())
            .collect();
        assert_eq!(got, expect, "E2 example4 failed");
        t.row(vec![
            "ifp({a}-x)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "yes".into(),
        ]);
    }
    // Nested difference: the verbatim construction diverges (the
    // per-subexpression predicates lag one inflationary step); the staged
    // construction is exact — recorded as a finding.
    {
        let alg = w::nested_diff_algebra();
        let db = Database::new().with("a", algrec_value::Relation::from_values([Value::int(1)]));
        let expect = eval_exact(&alg, &db, budget()).unwrap();
        let tr = algebra_to_datalog(&alg, &edb_arities(&db), TranslationMode::Naive).unwrap();
        let out = evaluate(&tr.program, &db, Semantics::Inflationary, budget()).unwrap();
        let got: std::collections::BTreeSet<Value> = out
            .model
            .certain
            .facts(&tr.result_pred)
            .map(|a| a[0].clone())
            .collect();
        let naive_agrees = got == expect;
        assert!(!naive_agrees, "E2 expected the documented divergence");
        // the staged mode repairs it
        let tr2 = algebra_to_datalog(
            &alg,
            &edb_arities(&db),
            TranslationMode::Staged { max_stage: 4 },
        )
        .unwrap();
        let out2 = evaluate(&tr2.program, &db, Semantics::Valid, budget()).unwrap();
        let got2: std::collections::BTreeSet<Value> = out2
            .model
            .certain
            .facts(&tr2.result_pred)
            .map(|a| a[0].clone())
            .collect();
        assert_eq!(got2, expect, "E2 staged repair failed");
        t.row(vec![
            "ifp(a-(a-x))".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "NO (staged: yes)".into(),
        ]);
    }
    t
}

/// E3 — Prop 5.2: the stage simulation makes inflationary results
/// valid-computable, at a measurable cost. The step-index blow-up is
/// reported as *measured* iteration counts: the source program's
/// inflationary rounds next to the first-appearance stages the staged
/// program actually used (they must line up — the simulation derives each
/// fact at exactly its source round).
pub fn e3(sizes: &[i64], stats: bool) -> Table {
    let mut t = Table::new(
        "E3",
        "Prop 5.2: inflationary → valid stage simulation (overhead of the encoding)",
        &[
            "n",
            "stage_bound",
            "rounds_infl",
            "stages_used",
            "t_inflationary",
            "t_staged_valid",
            "overhead",
            "agree",
        ],
    );
    for &n in sizes {
        let db = w::winmove_graph(n, 0.0, 5 + n as u64);
        let p = w::win_datalog();
        let t0 = Instant::now();
        let infl = evaluate(&p, &db, Semantics::Inflationary, budget()).unwrap();
        let t_i = t0.elapsed();

        let stages = n + 2;
        let staged = inflationary_to_valid(&p, stages);
        let t1 = Instant::now();
        let valid = evaluate(&staged, &db, Semantics::Valid, budget()).unwrap();
        let t_s = t1.elapsed();

        let a: std::collections::BTreeSet<_> = infl.model.certain.facts("win").cloned().collect();
        let b: std::collections::BTreeSet<_> = valid.model.certain.facts("win").cloned().collect();
        assert_eq!(a, b, "E3 failed at n={n}");
        // The blow-up, measured: the staged program's facts first appear
        // at exactly the source program's productive rounds (the source
        // has no IDB ground facts, so the counters align at rounds − 1:
        // the last inflationary round derives nothing).
        let stages_used = measured_stages(&valid.model.certain, &p);
        assert_eq!(
            stages_used,
            infl.rounds as i64 - 1,
            "E3 stage/round mismatch at n={n}"
        );
        if stats {
            t.stat(
                format!("inflationary_n{n}"),
                collect(|tr| {
                    evaluate_traced(&p, &db, Semantics::Inflationary, budget(), tr).unwrap()
                }),
            );
            t.stat(
                format!("staged_valid_n{n}"),
                collect(|tr| {
                    evaluate_traced(&staged, &db, Semantics::Valid, budget(), tr).unwrap()
                }),
            );
        }
        t.metric(format!("rounds_inflationary_n{n}"), infl.rounds as f64);
        t.metric(format!("stages_used_n{n}"), stages_used as f64);
        let overhead = t_s.as_secs_f64() / t_i.as_secs_f64().max(1e-9);
        t.row(vec![
            n.to_string(),
            stages.to_string(),
            infl.rounds.to_string(),
            stages_used.to_string(),
            fmt_dur(t_i),
            fmt_dur(t_s),
            format!("{overhead:.1}x"),
            "yes".into(),
        ]);
    }
    t
}

/// E4 — Prop 6.1 / Thm 6.2: safe deduction → algebra=, three-valued
/// round-trip agreement on the paper's workloads.
pub fn e4(sizes: &[i64], stats: bool) -> Table {
    let mut t = Table::new(
        "E4",
        "Thm 6.2: deduction ≡ algebra= under the valid semantics (3-valued round trips)",
        &[
            "workload",
            "n",
            "certain",
            "unknown",
            "t_deduction",
            "t_algebra=",
            "agree",
        ],
    );
    for &n in sizes {
        for (name, db, program, pred) in [
            (
                "win/acyclic",
                w::winmove_graph(n, 0.0, 7),
                w::win_datalog(),
                "win",
            ),
            (
                "win/cyclic",
                w::winmove_graph(n, 0.3, 7),
                w::win_datalog(),
                "win",
            ),
            (
                "tc+complement",
                w::with_nodes(w::random_graph("edge", n, (2 * n) as usize, false, 9), n),
                w::unreach_datalog(),
                "un",
            ),
        ] {
            let t0 = Instant::now();
            let dl = evaluate(&program, &db, Semantics::Valid, budget()).unwrap();
            let t_d = t0.elapsed();
            let t1 = Instant::now();
            let rt = check_roundtrip(&program, pred, &db, budget()).unwrap();
            let t_a = t1.elapsed();
            assert!(rt.agree(), "E4 {name} failed at n={n}");
            let _ = dl;
            if stats {
                t.stat(
                    format!("deduction_{name}_n{n}"),
                    collect(|tr| {
                        evaluate_traced(&program, &db, Semantics::Valid, budget(), tr).unwrap()
                    }),
                );
            }
            t.metric(format!("t_deduction_{name}_n{n}_s"), t_d.as_secs_f64());
            t.metric(format!("t_algebra_{name}_n{n}_s"), t_a.as_secs_f64());
            t.row(vec![
                name.into(),
                n.to_string(),
                rt.datalog_certain.len().to_string(),
                rt.datalog_unknown.len().to_string(),
                fmt_dur(t_d),
                fmt_dur(t_a),
                "yes".into(),
            ]);
        }
    }
    t
}

/// E5 — Prop 3.4: monotone recursive equations agree with IFP; the
/// non-monotone witness does not.
pub fn e5() -> Table {
    let mut t = Table::new(
        "E5",
        "Prop 3.4: S = exp(S) vs IFP_exp (agreement iff monotone)",
        &["body", "monotone", "well-defined", "agree"],
    );
    let tc_body =
        algrec_core::parser::parse_expr("edge union map(select(x * edge, x.1 = x.2), [x.0, x.3])")
            .unwrap();
    let even_body =
        algrec_core::parser::parse_expr("{0} union map(select(x, x < 20), add(x, 2))").unwrap();
    let witness = algrec_core::parser::parse_expr("{'a'} - x").unwrap();
    let db = w::random_graph("edge", 12, 24, false, 3);
    for (name, body, database) in [
        ("tc", &tc_body, &db),
        ("even-set", &even_body, &Database::new()),
        ("{a} - x", &witness, &Database::new()),
    ] {
        let out = prop34_check("x", body, database, budget()).unwrap();
        if out.monotone {
            assert!(out.agree, "E5: monotone {name} must agree");
        } else {
            assert!(!out.agree, "E5: the witness must diverge");
        }
        t.row(vec![
            name.into(),
            out.monotone.to_string(),
            out.recursive_well_defined.to_string(),
            out.agree.to_string(),
        ]);
    }
    t
}

/// E6 — Sections 2.2/3.2: undefinedness appears exactly with cycles;
/// stable-model counts on the residue.
pub fn e6(n: i64, fractions: &[f64]) -> Table {
    let mut t = Table::new(
        "E6",
        "WIN/MOVE: cycles ⇒ undefined positions (valid = well-founded; stable scenarios)",
        &[
            "cycle_frac",
            "positions",
            "win",
            "lose",
            "unknown",
            "exact",
            "stable_models",
        ],
    );
    for &frac in fractions {
        let db = w::winmove_graph(n, frac, 17);
        let p = w::win_datalog();
        let valid = evaluate(&p, &db, Semantics::Valid, budget()).unwrap();
        let wf = evaluate(&p, &db, Semantics::WellFounded, budget()).unwrap();
        assert_eq!(
            valid.model, wf.model,
            "E6: operational valid must equal well-founded"
        );
        let positions = db
            .active_domain()
            .iter()
            .filter(|v| v.as_int().is_some())
            .count();
        let win = valid.model.certain.count("win");
        let unknown = valid.model.unknown_count();
        let lose = positions - win - unknown;
        if frac == 0.0 {
            assert!(valid.model.is_exact(), "E6: acyclic games are decided");
        }
        let stable = match stable_models_of(&p, &db, 18, budget()) {
            Ok(models) => models.len().to_string(),
            Err(EvalError::TooManyUnknowns { found, .. }) => format!(">cap ({found} unknowns)"),
            Err(e) => panic!("{e}"),
        };
        t.row(vec![
            format!("{frac:.1}"),
            positions.to_string(),
            win.to_string(),
            lose.to_string(),
            unknown.to_string(),
            valid.model.is_exact().to_string(),
            stable,
        ]);
    }
    t
}

/// E7 — Section 2: valid interpretations of specifications, and the
/// Prop 2.3(2) decision procedure over random constants-only specs.
pub fn e7() -> Table {
    use algrec_adt::equation::{Condition, ConditionalEquation, Specification};
    use algrec_adt::signature::{OpDecl, Signature};
    use algrec_adt::specs;
    use algrec_adt::term::Term;
    use algrec_adt::valid_interp::ValidInterpretation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let mut t = Table::new(
        "E7",
        "Specifications: valid interpretation of SET(nat); Prop 2.3(2) decision procedure",
        &["case", "window", "total?", "unknown_eqs", "time"],
    );
    for depth in [1usize, 2, 3] {
        let t0 = Instant::now();
        let vi = ValidInterpretation::compute(&specs::set_spec(), depth, budget()).unwrap();
        let el = t0.elapsed();
        let window: usize = vi.universe().values().map(Vec::len).sum();
        assert!(vi.is_total(), "E7: SET(nat) must be well-defined");
        t.row(vec![
            format!("SET(nat) depth {depth}"),
            window.to_string(),
            vi.is_total().to_string(),
            vi.unknown_count().to_string(),
            fmt_dur(el),
        ]);
    }
    // Example 2 is the ill-defined reference point.
    {
        let t0 = Instant::now();
        let vi = ValidInterpretation::compute(&specs::example2_spec(), 1, budget()).unwrap();
        let el = t0.elapsed();
        assert!(!vi.is_total());
        t.row(vec![
            "Example 2 (a/b/c)".into(),
            "3".into(),
            "false".into(),
            vi.unknown_count().to_string(),
            fmt_dur(el),
        ]);
    }
    // Random constants-only specs: how often does an initial valid model
    // exist? (Prop 2.3(2): always decidable.)
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 40;
    let mut with_initial = 0usize;
    let t0 = Instant::now();
    for _ in 0..trials {
        let mut sig = Signature::new();
        sig.add_sort("s");
        let consts = ["a", "b", "c", "d"];
        for c in consts {
            sig.add_op(OpDecl::constant(c, "s")).unwrap();
        }
        let n_eqs = rng.random_range(1..4);
        let eqs: Vec<ConditionalEquation> = (0..n_eqs)
            .map(|_| {
                let pick = |rng: &mut StdRng| Term::cons(consts[rng.random_range(0..4)]);
                let cond = if rng.random_bool(0.7) {
                    Some(if rng.random_bool(0.5) {
                        Condition::Neq(pick(&mut rng), pick(&mut rng))
                    } else {
                        Condition::Eq(pick(&mut rng), pick(&mut rng))
                    })
                } else {
                    None
                };
                ConditionalEquation::when(cond, pick(&mut rng), pick(&mut rng))
            })
            .collect();
        let spec = Specification::new(sig, eqs).unwrap();
        let analysis = algrec_adt::initial_valid_model(&spec, budget()).unwrap();
        if analysis.initial.is_some() {
            with_initial += 1;
        }
    }
    let el = t0.elapsed();
    t.row(vec![
        format!("random 4-const specs ({trials} trials)"),
        "4".into(),
        format!("{with_initial}/{trials} have initial"),
        "-".into(),
        fmt_dur(el),
    ]);
    t
}

/// E8 — engine ablation: naive vs semi-naive least fixpoints.
pub fn e8(sizes: &[i64]) -> Table {
    use algrec_datalog::engine::Compiled;
    use algrec_datalog::fixpoint::{naive, semi_naive};
    use algrec_datalog::interp::Interp;

    let mut t = Table::new(
        "E8",
        "Ablation: naive vs semi-naive evaluation (TC on random graphs)",
        &[
            "n",
            "edges",
            "tc",
            "rounds",
            "t_naive",
            "t_semi_naive",
            "speedup",
        ],
    );
    for &n in sizes {
        let db = w::random_graph("edge", n, (2 * n) as usize, false, 31 + n as u64);
        let compiled = Compiled::compile(&w::tc_datalog()).unwrap();
        let base = Interp::from_database(&db);

        let mut m1 = budget().meter();
        let t0 = Instant::now();
        let (out_n, stats_n) = naive(&compiled, &base, &|_, _| false, &mut m1).unwrap();
        let t_n = t0.elapsed();

        let mut m2 = budget().meter();
        let t1 = Instant::now();
        let (out_s, _) = semi_naive(&compiled, &base, &|_, _| false, &mut m2).unwrap();
        let t_s = t1.elapsed();

        assert_eq!(out_n, out_s, "E8: engines must agree at n={n}");
        let speedup = t_n.as_secs_f64() / t_s.as_secs_f64().max(1e-9);
        t.row(vec![
            n.to_string(),
            db.get("edge").unwrap().len().to_string(),
            out_s.count("tc").to_string(),
            stats_n.rounds.to_string(),
            fmt_dur(t_n),
            fmt_dur(t_s),
            format!("{speedup:.1}x"),
        ]);
    }
    t
}

/// E9 — data-layer ablation: the interning / index / delta toggles of the
/// algebra evaluator, on the E1-shaped exact workload (TC + complement,
/// positive IFP-algebra) and the E4-shaped valid workload (the same query
/// as translated `algebra=`, alternating fixpoint). `baseline` is the
/// seed evaluator's strategy (all toggles off); every configuration must
/// agree with it exactly.
pub fn e9(n_exact: i64, n_valid: i64, stats: bool) -> Table {
    use algrec_core::eval_exact_with;
    use algrec_core::valid_eval::{eval_valid_traced, eval_valid_with};
    use algrec_translate::datalog_to_algebra;

    let combos: [(&str, EvalOptions); 5] = [
        ("all-on", EvalOptions::OPTIMIZED),
        (
            "no-interning",
            EvalOptions {
                interning: false,
                ..EvalOptions::OPTIMIZED
            },
        ),
        (
            "no-index",
            EvalOptions {
                index: false,
                ..EvalOptions::OPTIMIZED
            },
        ),
        (
            "no-delta",
            EvalOptions {
                delta: false,
                ..EvalOptions::OPTIMIZED
            },
        ),
        ("baseline", EvalOptions::BASELINE),
    ];

    let mut t = Table::new(
        "E9",
        "Ablation: interning / index / delta toggles on the algebra evaluators",
        &["workload", "n", "options", "time", "vs baseline", "agree"],
    );

    // E1-shaped: exact evaluation of the positive IFP-algebra query.
    {
        let n = n_exact;
        let db = w::with_nodes(
            w::random_graph("edge", n, (2 * n) as usize, false, 11 + n as u64),
            n,
        );
        let alg = w::unreach_algebra();
        let reference = eval_exact_with(&alg, &db, budget(), EvalOptions::BASELINE).unwrap();
        let mut baseline_s = f64::NAN;
        let mut timed = Vec::new();
        for (name, opts) in combos {
            let t0 = Instant::now();
            let out = eval_exact_with(&alg, &db, budget(), opts).unwrap();
            let el = t0.elapsed();
            assert_eq!(out, reference, "E9 exact {name} disagrees at n={n}");
            if name == "baseline" {
                baseline_s = el.as_secs_f64();
            }
            timed.push((name, el));
        }
        if stats {
            for (name, opts) in [
                ("all-on", EvalOptions::OPTIMIZED),
                ("baseline", EvalOptions::BASELINE),
            ] {
                t.stat(
                    format!("exact_{name}_n{n}"),
                    collect(|tr| eval_exact_traced(&alg, &db, budget(), opts, tr).unwrap()),
                );
            }
        }
        for (name, el) in timed {
            let speedup = baseline_s / el.as_secs_f64().max(1e-9);
            t.metric(format!("t_exact_{name}_n{n}_s"), el.as_secs_f64());
            t.row(vec![
                "tc+complement (exact)".into(),
                n.to_string(),
                name.into(),
                fmt_dur(el),
                format!("{speedup:.1}x"),
                "yes".into(),
            ]);
        }
    }

    // E4-shaped: the translated algebra= program under the valid
    // (alternating fixpoint) semantics.
    {
        let n = n_valid;
        let db = w::with_nodes(w::random_graph("edge", n, (2 * n) as usize, false, 9), n);
        let program = w::unreach_datalog();
        let alg = datalog_to_algebra(&program, "un", &edb_arities(&db)).unwrap();
        let reference = eval_valid_with(&alg, &db, budget(), EvalOptions::BASELINE).unwrap();
        let mut baseline_s = f64::NAN;
        let mut timed = Vec::new();
        for (name, opts) in combos {
            let t0 = Instant::now();
            let out = eval_valid_with(&alg, &db, budget(), opts).unwrap();
            let el = t0.elapsed();
            assert_eq!(
                out.query, reference.query,
                "E9 valid {name} disagrees at n={n}"
            );
            if name == "baseline" {
                baseline_s = el.as_secs_f64();
            }
            timed.push((name, el));
        }
        if stats {
            for (name, opts) in [
                ("all-on", EvalOptions::OPTIMIZED),
                ("baseline", EvalOptions::BASELINE),
            ] {
                t.stat(
                    format!("valid_{name}_n{n}"),
                    collect(|tr| eval_valid_traced(&alg, &db, budget(), opts, tr).unwrap()),
                );
            }
        }
        for (name, el) in timed {
            let speedup = baseline_s / el.as_secs_f64().max(1e-9);
            t.metric(format!("t_valid_{name}_n{n}_s"), el.as_secs_f64());
            t.row(vec![
                "tc+complement (algebra=, valid)".into(),
                n.to_string(),
                name.into(),
                fmt_dur(el),
                format!("{speedup:.1}x"),
                "yes".into(),
            ]);
        }
    }

    t
}

/// E10 — the concurrency subsystem, measured. Two parts:
///
/// * **Fixpoint fan-out** — semi-naive TC and the alternating-fixpoint
///   WIN game on dense random graphs (past the engine's 256-fact
///   parallel threshold) across worker counts {1, 2, 4, 8}, asserting at
///   every width that the model and round count are identical to the
///   sequential engine (the determinism proptest pins the full trace).
/// * **Snapshot serving** — `k` reader threads answering a materialized
///   TC view from the epoch-versioned [`algrec_serve::SharedSession`]
///   read view vs. the single-threaded server re-rendering every answer
///   live through the session. The acceptance claim is asserted here:
///   the snapshot path at 4 readers must clear **2×** the
///   single-threaded live throughput.
///
/// The thread override is process-global; E10 leaves the engine in
/// sequential mode (`threads = 1`) on return.
pub fn e10(quick: bool, stats: bool) -> Table {
    use algrec_sched::set_threads;
    use algrec_serve::{QueryAnswer, Session, SharedSession};

    let mut t = Table::new(
        "E10",
        "Concurrency: parallel fixpoint scaling and snapshot-isolated serving",
        &["part", "workload", "threads", "time", "throughput", "agree"],
    );

    // Part 1 — fixpoint fan-out.
    let fix_edges = if quick { 300 } else { 600 };
    let runs = [
        (
            "tc",
            w::tc_datalog(),
            Semantics::SemiNaive,
            w::random_graph("edge", 48, fix_edges, false, 17),
        ),
        (
            "win",
            w::win_datalog(),
            Semantics::Valid,
            w::random_graph("move", 48, fix_edges, false, 23),
        ),
    ];
    for (label, program, semantics, db) in &runs {
        set_threads(1);
        let baseline = evaluate(program, db, *semantics, budget()).unwrap();
        for k in [1usize, 2, 4, 8] {
            set_threads(k);
            let t0 = Instant::now();
            let out = evaluate(program, db, *semantics, budget()).unwrap();
            let el = t0.elapsed();
            assert_eq!(
                out.model, baseline.model,
                "E10 {label}: output diverged at {k} threads"
            );
            assert_eq!(
                out.rounds, baseline.rounds,
                "E10 {label}: rounds diverged at {k} threads"
            );
            t.metric(format!("t_fix_{label}_t{k}_s"), el.as_secs_f64());
            t.row(vec![
                "fixpoint".into(),
                (*label).into(),
                k.to_string(),
                fmt_dur(el),
                "—".into(),
                "yes".into(),
            ]);
        }
        if stats {
            // Sequential vs. widest fan-out: the deterministic counters
            // (iterations, facts, deltas) land in the report for both so
            // a consumer can diff them — they must match.
            for k in [1usize, 4] {
                set_threads(k);
                t.stat(
                    format!("fix_{label}_t{k}"),
                    collect(|tr| evaluate_traced(program, db, *semantics, budget(), tr).unwrap()),
                );
            }
        }
    }
    set_threads(1);

    // Part 2 — snapshot serving vs. the single-threaded live server.
    let serve_edges = if quick { 200 } else { 500 };
    let facts = {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        let mut edges: std::collections::BTreeSet<(i64, i64)> = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while edges.len() < serve_edges && guard < serve_edges * 50 {
            guard += 1;
            let a = rng.random_range(0..48i64);
            let b = rng.random_range(0..48i64);
            if a != b {
                edges.insert((a, b));
            }
        }
        edges
            .iter()
            .map(|(a, b)| format!("e({a}, {b})."))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut session = Session::new(budget());
    session.load(&facts).unwrap();
    session
        .register_datalog(
            "paths",
            "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).",
            Semantics::Stratified,
        )
        .unwrap();
    let QueryAnswer::Datalog {
        certain: reference, ..
    } = session.query("paths", Some("tc")).unwrap()
    else {
        unreachable!("paths is a datalog view")
    };

    let queries = if quick { 50 } else { 150 };
    // The single-threaded live server: every query re-renders the view
    // under the session (this is what serialized behind the write lock
    // before the snapshot path existed).
    let t0 = Instant::now();
    for _ in 0..queries {
        let QueryAnswer::Datalog { certain, .. } = session.query("paths", Some("tc")).unwrap()
        else {
            unreachable!("paths is a datalog view")
        };
        assert_eq!(certain.len(), reference.len());
    }
    let live_el = t0.elapsed();
    let live_qps = queries as f64 / live_el.as_secs_f64().max(1e-9);
    t.metric("qps_live_t1", live_qps);
    t.row(vec![
        "serving".into(),
        "live (session lock)".into(),
        "1".into(),
        fmt_dur(live_el),
        format!("{live_qps:.0}/s"),
        "yes".into(),
    ]);

    // The snapshot path: k readers resolving the epoch-versioned view.
    let shared = SharedSession::new(session);
    let mut snapshot_qps_t4 = f64::NAN;
    for k in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..k {
                let shared = &shared;
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..queries {
                        let view = shared.read();
                        let Ok(Some(QueryAnswer::Datalog { certain, .. })) =
                            view.value.query("paths", Some("tc"))
                        else {
                            panic!("snapshot query failed")
                        };
                        assert_eq!(certain.len(), reference.len());
                    }
                });
            }
        });
        let el = t0.elapsed();
        let qps = (k * queries) as f64 / el.as_secs_f64().max(1e-9);
        if k == 4 {
            snapshot_qps_t4 = qps;
        }
        t.metric(format!("qps_snapshot_t{k}"), qps);
        t.row(vec![
            "serving".into(),
            "snapshot (epoch view)".into(),
            k.to_string(),
            fmt_dur(el),
            format!("{qps:.0}/s"),
            "yes".into(),
        ]);
    }
    // Outside the timed loops: the snapshot answer is the live answer.
    let view = shared.read();
    let Ok(Some(QueryAnswer::Datalog { certain: snap, .. })) =
        view.value.query("paths", Some("tc"))
    else {
        panic!("snapshot query failed")
    };
    assert_eq!(snap, reference, "E10: snapshot answer differs from live");

    let ratio = snapshot_qps_t4 / live_qps;
    assert!(
        ratio >= 2.0,
        "E10: snapshot serving at 4 readers must be ≥2× the single-threaded \
         live server (got {ratio:.2}x)"
    );
    t.metric("speedup_snapshot_t4_vs_live", ratio);

    t
}

/// E11 — the plan compiler, measured. Interpreted vs compiled fixpoints
/// on the two hot paths the optimization targets:
///
/// * **E1-shaped** — the stratified TC + complement query
///   (`unreach_datalog`) on random graphs up to n = 128: the semi-naive
///   inner loop runs slot-compiled with first-column index probes
///   instead of interpreting substitutions per match.
/// * **E4-shaped** — the WIN game under the valid (alternating fixpoint)
///   semantics, acyclic and cyclic: every well-founded pass re-enters the
///   compiled executor with a complement oracle.
///
/// Both paths run the *same* engine entry points; only the
/// `algrec_plan` toggle differs (exactly what `ALGREC_PLAN_BASELINE`
/// flips). Every pair must produce identical models, and the full sweep
/// asserts the acceptance claim: ≥5× on the E1-shaped loop at n = 128.
/// The toggle is process-global; E11 restores it on return.
pub fn e11(sizes: &[i64], n_valid: i64, stats: bool) -> Table {
    use algrec_plan::{enabled, set_enabled};

    let mut t = Table::new(
        "E11",
        "Plan compiler: interpreted vs slot-compiled fixpoints (cost-ordered joins, index probes)",
        &[
            "workload",
            "n",
            "t_interpreted",
            "t_compiled",
            "speedup",
            "agree",
        ],
    );
    let was_enabled = enabled();

    // E1-shaped: stratified TC + complement.
    for &n in sizes {
        let db = w::with_nodes(
            w::random_graph("edge", n, (2 * n) as usize, false, 11 + n as u64),
            n,
        );
        let ded = w::unreach_datalog();
        set_enabled(false);
        let t0 = Instant::now();
        let interp = evaluate(&ded, &db, Semantics::Stratified, budget()).unwrap();
        let t_i = t0.elapsed();
        set_enabled(true);
        let t1 = Instant::now();
        let comp = evaluate(&ded, &db, Semantics::Stratified, budget()).unwrap();
        let t_c = t1.elapsed();
        assert_eq!(
            interp.model, comp.model,
            "E11: compiled model diverged at n={n}"
        );
        assert_eq!(
            interp.rounds, comp.rounds,
            "E11: compiled rounds diverged at n={n}"
        );
        let speedup = t_i.as_secs_f64() / t_c.as_secs_f64().max(1e-9);
        if n >= 128 {
            // The acceptance claim, asserted where it is measured.
            assert!(
                speedup >= 5.0,
                "E11: compiled path must be ≥5x on the E1 hot loop at n={n} \
                 (got {speedup:.2}x)"
            );
        }
        if stats {
            // Traced runs always take the interpreted path (telemetry
            // parity), so one trace per size describes both columns.
            t.stat(
                format!("tc_complement_n{n}"),
                collect(|tr| {
                    evaluate_traced(&ded, &db, Semantics::Stratified, budget(), tr).unwrap()
                }),
            );
        }
        t.metric(format!("t_interpreted_tc_n{n}_s"), t_i.as_secs_f64());
        t.metric(format!("t_compiled_tc_n{n}_s"), t_c.as_secs_f64());
        t.metric(format!("speedup_tc_n{n}"), speedup);
        t.row(vec![
            "tc+complement (stratified)".into(),
            n.to_string(),
            fmt_dur(t_i),
            fmt_dur(t_c),
            format!("{speedup:.1}x"),
            "yes".into(),
        ]);
    }

    // E4-shaped: WIN under the valid semantics.
    for (label, frac) in [("win/acyclic", 0.0), ("win/cyclic", 0.3)] {
        let n = n_valid;
        let db = w::winmove_graph(n, frac, 7);
        let p = w::win_datalog();
        set_enabled(false);
        let t0 = Instant::now();
        let interp = evaluate(&p, &db, Semantics::Valid, budget()).unwrap();
        let t_i = t0.elapsed();
        set_enabled(true);
        let t1 = Instant::now();
        let comp = evaluate(&p, &db, Semantics::Valid, budget()).unwrap();
        let t_c = t1.elapsed();
        assert_eq!(
            interp.model, comp.model,
            "E11: compiled model diverged on {label} at n={n}"
        );
        let speedup = t_i.as_secs_f64() / t_c.as_secs_f64().max(1e-9);
        t.metric(
            format!("t_interpreted_{label}_n{n}_s").replace('/', "_"),
            t_i.as_secs_f64(),
        );
        t.metric(
            format!("t_compiled_{label}_n{n}_s").replace('/', "_"),
            t_c.as_secs_f64(),
        );
        t.row(vec![
            format!("{label} (valid)"),
            n.to_string(),
            fmt_dur(t_i),
            fmt_dur(t_c),
            format!("{speedup:.1}x"),
            "yes".into(),
        ]);
    }

    set_enabled(was_enabled);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment runs (small sizes) and its internal assertions hold.

    #[test]
    fn e1_runs() {
        let t = e1(&[8], true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.stats.len(), 2); // deduction + algebra telemetry
        assert!(t.stats.iter().all(|(_, s)| s.facts_materialized > 0));
    }

    #[test]
    fn e2_runs() {
        let t = e2(&[8]);
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows[2][4].contains("NO"));
    }

    #[test]
    fn e3_runs() {
        let t = e3(&[8], true);
        assert_eq!(t.rows.len(), 1);
        // inflationary + staged-valid telemetry; the staged simulation pays
        // for the step-index encoding in iterations — the measured blow-up
        // E3 exists to report.
        assert_eq!(t.stats.len(), 2);
        assert!(t.stats[1].1.iterations >= t.stats[0].1.iterations);
    }

    #[test]
    fn e4_runs() {
        let t = e4(&[6], true);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.stats.len(), 3); // one valid-deduction run per workload
    }

    #[test]
    fn e5_runs() {
        let t = e5();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e6_runs() {
        let t = e6(8, &[0.0, 0.5]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e7_runs() {
        let t = e7();
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn e8_runs() {
        let t = e8(&[10]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn e10_runs() {
        let t = e10(true, true);
        // Fixpoint: 2 workloads × 4 widths; serving: 1 live + 4 snapshot.
        assert_eq!(t.rows.len(), 13);
        assert!(t.rows.iter().all(|r| r[5] == "yes"));
        // {tc, win} × {1, 4} threads; sequential and fanned-out runs
        // must record identical deterministic counters.
        assert_eq!(t.stats.len(), 4);
        for pair in t.stats.chunks(2) {
            assert_eq!(pair[0].1.facts_inserted, pair[1].1.facts_inserted);
            assert_eq!(pair[0].1.deltas, pair[1].1.deltas);
        }
    }

    #[test]
    fn e11_runs() {
        let before = algrec_plan::enabled();
        let t = e11(&[10], 8, true);
        // 1 TC size + {acyclic, cyclic} WIN.
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows.iter().all(|r| r[5] == "yes"));
        assert_eq!(t.stats.len(), 1);
        // Interpreted/compiled timings plus the speedup for the TC sweep,
        // then two timings per WIN variant.
        assert_eq!(t.metrics.len(), 7);
        // The toggle is restored to whatever the process started with.
        assert_eq!(algrec_plan::enabled(), before);
    }

    #[test]
    fn e9_runs() {
        let t = e9(8, 6, true);
        assert_eq!(t.rows.len(), 10); // 5 configurations × 2 workloads
        assert!(t.rows.iter().all(|r| r[5] == "yes"));
        assert_eq!(t.metrics.len(), 10);
        // {exact,valid} × {all-on,baseline}; optimized and baseline must
        // materialize the same result.
        assert_eq!(t.stats.len(), 4);
        assert_eq!(
            t.stats[0].1.facts_materialized,
            t.stats[1].1.facts_materialized
        );
        assert_eq!(
            t.stats[2].1.facts_materialized,
            t.stats[3].1.facts_materialized
        );
    }
}
