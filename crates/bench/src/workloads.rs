//! Workload generators and the program zoo used by the experiments.
//!
//! The paper has no evaluation section, so the workloads are synthesized
//! from its own running examples: graphs for transitive closure
//! (Theorem 4.3), MOVE graphs with a controllable cycle fraction for the
//! WIN game (Sections 3.2 and 6), and the even-set generator (Examples
//! 1/3). Generators are deterministic in their seed.

use algrec_core::parser::parse_program as parse_alg;
use algrec_core::AlgProgram;
use algrec_datalog::parser::parse_program as parse_dl;
use algrec_datalog::Program;
use algrec_value::{Database, Relation, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

fn pairs_to_db(name: &str, pairs: impl IntoIterator<Item = (i64, i64)>) -> Database {
    Database::new().with(
        name,
        Relation::from_pairs(
            pairs
                .into_iter()
                .map(|(a, b)| (Value::int(a), Value::int(b))),
        ),
    )
}

/// A simple chain `0 → 1 → … → n`.
pub fn chain(name: &str, n: i64) -> Database {
    pairs_to_db(name, (0..n).map(|k| (k, k + 1)))
}

/// A single cycle over `n` nodes.
pub fn cycle(name: &str, n: i64) -> Database {
    pairs_to_db(name, (0..n).map(|k| (k, (k + 1) % n)))
}

/// A random graph with `m` edges over `n` nodes (no self-loops unless
/// `loops`).
pub fn random_graph(name: &str, n: i64, m: usize, loops: bool, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: BTreeSet<(i64, i64)> = BTreeSet::new();
    let mut guard = 0usize;
    while edges.len() < m && guard < m * 50 {
        guard += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if loops || a != b {
            edges.insert((a, b));
        }
    }
    pairs_to_db(name, edges)
}

/// A random DAG (edges go from lower to higher node ids): games over it
/// are fully decided.
pub fn random_dag(name: &str, n: i64, m: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: BTreeSet<(i64, i64)> = BTreeSet::new();
    let mut guard = 0usize;
    while edges.len() < m && guard < m * 50 {
        guard += 1;
        let a = rng.random_range(0..n - 1);
        let b = rng.random_range(a + 1..n);
        edges.insert((a, b));
    }
    pairs_to_db(name, edges)
}

/// A MOVE graph with a controllable amount of cyclicity: a DAG backbone
/// plus `round(cycle_fraction × n)` back edges closing cycles.
pub fn winmove_graph(n: i64, cycle_fraction: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: BTreeSet<(i64, i64)> = BTreeSet::new();
    // backbone path plus random forward edges
    for k in 0..n - 1 {
        edges.insert((k, k + 1));
    }
    for _ in 0..n {
        let a = rng.random_range(0..n - 1);
        let b = rng.random_range(a + 1..n);
        edges.insert((a, b));
    }
    // back edges introduce cycles
    let backs = (cycle_fraction * n as f64).round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < backs && guard < backs * 100 + 10 {
        guard += 1;
        let a = rng.random_range(1..n);
        let b = rng.random_range(0..a);
        if edges.insert((a, b)) {
            added += 1;
        }
    }
    pairs_to_db("move", edges)
}

/// Add a unary `node` relation enumerating `0..n` to a database.
pub fn with_nodes(mut db: Database, n: i64) -> Database {
    db.set("node", Relation::from_values((0..n).map(Value::int)));
    db
}

/// Transitive closure, deductively.
pub fn tc_datalog() -> Program {
    parse_dl("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap()
}

/// Transitive closure plus its complement (stratified, Theorem 4.3's
/// shape).
pub fn unreach_datalog() -> Program {
    parse_dl(
        "tc(X, Y) :- edge(X, Y).\n\
         tc(X, Z) :- tc(X, Y), edge(Y, Z).\n\
         un(X, Y) :- node(X), node(Y), not tc(X, Y).",
    )
    .unwrap()
}

/// The WIN game, deductively.
pub fn win_datalog() -> Program {
    parse_dl("win(X) :- move(X, Y), not win(Y).").unwrap()
}

/// Same-generation (nonlinear recursion).
pub fn sg_datalog() -> Program {
    parse_dl(
        "sg(X, X) :- person(X).\n\
         sg(X, Y) :- parent(XP, X), parent(YP, Y), sg(XP, YP).",
    )
    .unwrap()
}

/// Transitive closure as a positive IFP-algebra query.
pub fn tc_algebra() -> AlgProgram {
    parse_alg("query ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));").unwrap()
}

/// The complement query (unreachable pairs) in the positive IFP-algebra.
pub fn unreach_algebra() -> AlgProgram {
    parse_alg(
        "def tc = ifp(t, edge union map(select(t * edge, x.1 = x.2), [x.0, x.3]));
         query (node * node) - tc;",
    )
    .unwrap()
}

/// WIN as a recursive algebra= constant (Example 3).
pub fn win_algebra() -> AlgProgram {
    parse_alg("def win = map(move - (map(move, x.0) * win), x.0); query win;").unwrap()
}

/// The windowed even-set generator (Example 3).
pub fn even_algebra(bound: i64) -> AlgProgram {
    parse_alg(&format!(
        "def se = {{0}} union map(select(se, x < {bound}), add(x, 2)); query se;"
    ))
    .unwrap()
}

/// Example 4's non-positive IFP query.
pub fn example4_algebra() -> AlgProgram {
    parse_alg("query ifp(x, {'a'} - x);").unwrap()
}

/// The nested-difference IFP query that separates the naive Prop 5.1
/// translation from the staged one.
pub fn nested_diff_algebra() -> AlgProgram {
    parse_alg("query ifp(x, a - (a - x));").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_graph("e", 10, 15, false, 42);
        let b = random_graph("e", 10, 15, false, 42);
        assert_eq!(a, b);
        let c = random_graph("e", 10, 15, false, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn chain_and_cycle_shapes() {
        assert_eq!(chain("e", 5).get("e").unwrap().len(), 5);
        assert_eq!(cycle("e", 5).get("e").unwrap().len(), 5);
    }

    #[test]
    fn dag_has_no_back_edges() {
        let db = random_dag("e", 12, 20, 7);
        for v in db.get("e").unwrap().iter() {
            let t = v.as_tuple().unwrap();
            assert!(t[0].as_int().unwrap() < t[1].as_int().unwrap());
        }
    }

    #[test]
    fn winmove_cycle_fraction_zero_is_acyclic() {
        let db = winmove_graph(16, 0.0, 3);
        for v in db.get("move").unwrap().iter() {
            let t = v.as_tuple().unwrap();
            assert!(t[0].as_int().unwrap() < t[1].as_int().unwrap());
        }
        // and a positive fraction adds back edges
        let db2 = winmove_graph(16, 0.5, 3);
        let backs = db2
            .get("move")
            .unwrap()
            .iter()
            .filter(|v| {
                let t = v.as_tuple().unwrap();
                t[0].as_int().unwrap() > t[1].as_int().unwrap()
            })
            .count();
        assert!(backs > 0);
    }

    #[test]
    fn programs_parse() {
        let _ = (
            tc_datalog(),
            unreach_datalog(),
            win_datalog(),
            sg_datalog(),
            tc_algebra(),
            unreach_algebra(),
            win_algebra(),
            even_algebra(10),
            example4_algebra(),
            nested_diff_algebra(),
        );
    }

    #[test]
    fn with_nodes_adds_relation() {
        let db = with_nodes(chain("edge", 3), 4);
        assert_eq!(db.get("node").unwrap().len(), 4);
    }
}
