//! Print every experiment table (E1–E8). Each experiment asserts its
//! claimed equivalences, so a clean run is itself a reproduction check.
//!
//! Usage:
//!   cargo run -p algrec-bench --bin tables --release            # full sweep
//!   cargo run -p algrec-bench --bin tables --release -- --quick # small sweep

use algrec_bench::experiments as e;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (small, medium): (Vec<i64>, Vec<i64>) = if quick {
        (vec![8, 16], vec![8, 12])
    } else {
        (vec![16, 32, 64, 128], vec![8, 16, 24, 32])
    };

    println!("algrec experiment suite — every table verifies a claim of");
    println!("Beeri & Milo, \"On the Power of Algebras with Recursion\", SIGMOD 1993");
    println!();

    println!("{}", e::e1(&small));
    // E2's naive translation re-materializes the product sub-predicate at
    // every inflationary stage (a measured cost of the verbatim Prop 5.1
    // construction), so its sweep stays smaller.
    let e2_sizes: Vec<i64> = if quick { vec![8, 16] } else { vec![16, 32, 48] };
    println!("{}", e::e2(&e2_sizes));
    println!("{}", e::e3(&medium));
    println!("{}", e::e4(&medium));
    println!("{}", e::e5());
    println!("{}", e::e6(if quick { 12 } else { 24 }, &[0.0, 0.1, 0.3, 0.5, 1.0]));
    println!("{}", e::e7());
    println!("{}", e::e8(&small));

    println!("all experiment assertions held.");
}
