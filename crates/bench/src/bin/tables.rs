//! Print every experiment table (E1–E10) and write the machine-readable
//! report. Each experiment asserts its claimed equivalences, so a clean
//! run is itself a reproduction check.
//!
//! Usage:
//!   cargo run -p algrec-bench --bin tables --release            # full sweep
//!   cargo run -p algrec-bench --bin tables --release -- --quick # small sweep
//!   cargo run -p algrec-bench --bin tables --release -- --json out.json
//!   cargo run -p algrec-bench --bin tables --release -- --stats # + telemetry
//!
//! The report (default `BENCH_5.json`) captures per-experiment headers,
//! rows, and raw numeric timings so the perf trajectory is tracked across
//! PRs. With `--stats`, E1/E3/E4/E9/E10 repeat each evaluation once
//! traced (separately from the timed run, which stays untraced) and embed
//! the collected `EvalStats` under each experiment's `"stats"` key.

use algrec_bench::experiments as e;
use algrec_bench::table::{report_json, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let stats = args.iter().any(|a| a == "--stats");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_5.json".to_string());

    let (small, medium): (Vec<i64>, Vec<i64>) = if quick {
        (vec![8, 16], vec![8, 12])
    } else {
        (vec![16, 32, 64, 128], vec![8, 16, 24, 32])
    };

    println!("algrec experiment suite — every table verifies a claim of");
    println!("Beeri & Milo, \"On the Power of Algebras with Recursion\", SIGMOD 1993");
    println!();

    let mut tables: Vec<Table> = Vec::new();
    let mut run = |t: Table| {
        println!("{t}");
        tables.push(t);
    };

    run(e::e1(&small, stats));
    // E2's naive translation re-materializes the product sub-predicate at
    // every inflationary stage (a measured cost of the verbatim Prop 5.1
    // construction), so its sweep stays smaller.
    let e2_sizes: Vec<i64> = if quick { vec![8, 16] } else { vec![16, 32, 48] };
    run(e::e2(&e2_sizes));
    run(e::e3(&medium, stats));
    run(e::e4(&medium, stats));
    run(e::e5());
    run(e::e6(
        if quick { 12 } else { 24 },
        &[0.0, 0.1, 0.3, 0.5, 1.0],
    ));
    run(e::e7());
    run(e::e8(&small));
    run(e::e9(
        *small.last().expect("non-empty sweep"),
        *medium.last().expect("non-empty sweep"),
        stats,
    ));
    run(e::e10(quick, stats));

    let refs: Vec<&Table> = tables.iter().collect();
    let report = report_json(&refs);
    match std::fs::write(&json_path, report) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => eprintln!("failed to write {json_path}: {err}"),
    }

    println!("all experiment assertions held.");
}
