//! Print every experiment table (E1–E11) and write the machine-readable
//! report. Each experiment asserts its claimed equivalences, so a clean
//! run is itself a reproduction check.
//!
//! Usage:
//!   cargo run -p algrec-bench --bin tables --release            # full sweep
//!   cargo run -p algrec-bench --bin tables --release -- --quick # small sweep
//!   cargo run -p algrec-bench --bin tables --release -- --json out.json
//!   cargo run -p algrec-bench --bin tables --release -- --stats # + telemetry
//!
//! The report (default `BENCH_6.json`) captures per-experiment headers,
//! rows, and raw numeric timings so the perf trajectory is tracked across
//! PRs. With `--stats`, E1/E3/E4/E9/E10/E11 repeat each evaluation once
//! traced (separately from the timed run, which stays untraced) and embed
//! the collected `EvalStats` under each experiment's `"stats"` key.
//!
//! Failure is loud: a panicking experiment is reported by name, **no**
//! report file is written (a partial document would read as a complete
//! one downstream), and the process exits non-zero — as it also does
//! when the report cannot be written.

use algrec_bench::experiments as e;
use algrec_bench::table::{report_json, Table};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let stats = args.iter().any(|a| a == "--stats");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_6.json".to_string());

    let (small, medium): (Vec<i64>, Vec<i64>) = if quick {
        (vec![8, 16], vec![8, 12])
    } else {
        (vec![16, 32, 64, 128], vec![8, 16, 24, 32])
    };

    println!("algrec experiment suite — every table verifies a claim of");
    println!("Beeri & Milo, \"On the Power of Algebras with Recursion\", SIGMOD 1993");
    println!();

    let mut tables: Vec<Table> = Vec::new();
    let mut failures: Vec<&'static str> = Vec::new();
    // Run every experiment even after a failure (the survivors still
    // print), but a single panic poisons the run: no report, exit 1.
    let mut run =
        |id: &'static str, f: &mut dyn FnMut() -> Table| match catch_unwind(AssertUnwindSafe(f)) {
            Ok(t) => {
                println!("{t}");
                tables.push(t);
            }
            Err(_) => {
                eprintln!("experiment {id} PANICKED (see message above)");
                failures.push(id);
            }
        };

    run("E1", &mut || e::e1(&small, stats));
    // E2's naive translation re-materializes the product sub-predicate at
    // every inflationary stage (a measured cost of the verbatim Prop 5.1
    // construction), so its sweep stays smaller.
    let e2_sizes: Vec<i64> = if quick { vec![8, 16] } else { vec![16, 32, 48] };
    run("E2", &mut || e::e2(&e2_sizes));
    run("E3", &mut || e::e3(&medium, stats));
    run("E4", &mut || e::e4(&medium, stats));
    run("E5", &mut || e::e5());
    run("E6", &mut || {
        e::e6(if quick { 12 } else { 24 }, &[0.0, 0.1, 0.3, 0.5, 1.0])
    });
    run("E7", &mut || e::e7());
    run("E8", &mut || e::e8(&small));
    run("E9", &mut || {
        e::e9(
            *small.last().expect("non-empty sweep"),
            *medium.last().expect("non-empty sweep"),
            stats,
        )
    });
    run("E10", &mut || e::e10(quick, stats));
    run("E11", &mut || {
        e::e11(&small, *medium.last().expect("non-empty sweep"), stats)
    });

    if !failures.is_empty() {
        eprintln!(
            "{} experiment(s) failed: {} — no report written",
            failures.len(),
            failures.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let refs: Vec<&Table> = tables.iter().collect();
    let report = report_json(&refs);
    if let Err(err) = std::fs::write(&json_path, report) {
        eprintln!("failed to write {json_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {json_path}");
    println!("all experiment assertions held.");
    ExitCode::SUCCESS
}
