//! Golden test for the shape of the machine-readable report that
//! `tables --json` writes (`BENCH_N.json`). Pins the *schema* — key
//! names, nesting, and value kinds, including the `stats` telemetry
//! object — against a deterministic table, never actual timings. If a
//! field is renamed, added or dropped, this test fails with the full
//! expected/actual documents so downstream consumers of the report hear
//! about it here rather than in a dashboard.

use algrec_bench::table::{report_json, Table};
use algrec_value::{EvalStats, PhaseStats, StoreStats};

/// A fully deterministic table: no wall-clock anywhere (phase wall time
/// is set by hand, in whole milliseconds, so the `{:.3}` formatting is
/// exact).
fn golden_table() -> Table {
    let mut t = Table::new("E0", "golden schema", &["n", "agree"]);
    t.row(vec!["8".into(), "yes".into()]);
    t.metric("t_run_n8_s", 0.25);
    let stats = EvalStats {
        phases: vec![
            (
                "semi-naive".into(),
                PhaseStats {
                    iterations: 3,
                    deltas: vec![4, 2, 0],
                    wall_nanos: 2_000_000,
                },
            ),
            (
                "certain".into(),
                PhaseStats {
                    iterations: 1,
                    deltas: vec![0],
                    wall_nanos: 1_000_000,
                },
            ),
        ],
        iterations: 4,
        facts_inserted: 6,
        facts_materialized: 6,
        deltas: vec![4, 2, 0, 0],
        index_builds: 1,
        index_probes: 5,
        index_hits: 4,
        interned_values: 10,
        interned_symbols: 2,
        store: StoreStats {
            wal_records: 3,
            wal_bytes: 96,
            wal_fsyncs: 3,
            snapshots: 1,
            snapshot_bytes: 256,
            recovery_replayed: 2,
        },
    };
    t.stat("run_n8", stats);
    t
}

#[test]
fn table_json_matches_golden() {
    let expected = concat!(
        "{\"id\":\"E0\",\"title\":\"golden schema\",",
        "\"headers\":[\"n\",\"agree\"],",
        "\"rows\":[[\"8\",\"yes\"]],",
        "\"metrics\":{\"t_run_n8_s\":0.25},",
        "\"stats\":{\"run_n8\":{",
        "\"iterations\":4,\"facts_inserted\":6,\"facts_materialized\":6,",
        "\"deltas\":[4,2,0,0],",
        "\"index\":{\"builds\":1,\"probes\":5,\"hits\":4},",
        "\"interned\":{\"values\":10,\"symbols\":2},",
        "\"store\":{\"wal_records\":3,\"wal_bytes\":96,\"wal_fsyncs\":3,",
        "\"snapshots\":1,\"snapshot_bytes\":256,\"recovery_replayed\":2},",
        "\"phases\":[",
        "{\"name\":\"semi-naive\",\"iterations\":3,\"wall_ms\":2.000,\"deltas\":[4,2,0]},",
        "{\"name\":\"certain\",\"iterations\":1,\"wall_ms\":1.000,\"deltas\":[0]}",
        "]}}}"
    );
    assert_eq!(golden_table().to_json(), expected);
}

#[test]
fn report_json_wraps_experiments() {
    let t = golden_table();
    let report = report_json(&[&t]);
    assert_eq!(report, format!("{{\"experiments\":[{}]}}", t.to_json()));
}

#[test]
fn e10_report_has_the_pinned_shape() {
    // E10 carries the concurrency acceptance numbers; downstream
    // consumers key on these metric names, so pin them (a quick run —
    // the values are timings, only the shape is asserted).
    let t = algrec_bench::experiments::e10(true, false);
    assert_eq!(t.id, "E10");
    assert_eq!(
        t.headers,
        vec!["part", "workload", "threads", "time", "throughput", "agree"]
    );
    let has = |name: &str| t.metrics.iter().any(|(n, _)| n == name);
    for k in [1, 2, 4, 8] {
        assert!(has(&format!("t_fix_tc_t{k}_s")));
        assert!(has(&format!("t_fix_win_t{k}_s")));
        assert!(has(&format!("qps_snapshot_t{k}")));
    }
    assert!(has("qps_live_t1"));
    assert!(has("speedup_snapshot_t4_vs_live"));
}

#[test]
fn e11_report_has_the_pinned_shape() {
    // E11 carries the plan-compiler acceptance numbers; the ≥5× claim is
    // asserted inside the experiment at the full-sweep sizes, so here a
    // small run pins only the metric names and table shape.
    let t = algrec_bench::experiments::e11(&[10], 8, false);
    assert_eq!(t.id, "E11");
    assert_eq!(
        t.headers,
        vec![
            "workload",
            "n",
            "t_interpreted",
            "t_compiled",
            "speedup",
            "agree"
        ]
    );
    let has = |name: &str| t.metrics.iter().any(|(n, _)| n == name);
    assert!(has("t_interpreted_tc_n10_s"));
    assert!(has("t_compiled_tc_n10_s"));
    assert!(has("speedup_tc_n10"));
    assert!(has("t_interpreted_win_acyclic_n8_s"));
    assert!(has("t_compiled_win_acyclic_n8_s"));
    assert!(has("t_interpreted_win_cyclic_n8_s"));
    assert!(has("t_compiled_win_cyclic_n8_s"));
    assert!(t.rows.iter().all(|r| r[5] == "yes"));
}

#[test]
fn empty_stats_serializes_as_empty_object() {
    // Runs without --stats must still produce the key (consumers can rely
    // on its presence) with an empty object.
    let t = Table::new("E0", "no stats", &["a"]);
    assert!(t.to_json().contains("\"stats\":{}"));
}
