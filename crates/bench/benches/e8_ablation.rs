//! E8 — engine ablation: naive vs semi-naive least fixpoint on transitive
//! closure over random graphs (the gap must grow with n).

use algrec_bench::workloads as w;
use algrec_datalog::engine::Compiled;
use algrec_datalog::fixpoint::{naive, semi_naive};
use algrec_datalog::interp::Interp;
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_ablation");
    g.sample_size(10);
    for n in [16i64, 32, 64] {
        let db = w::random_graph("edge", n, (2 * n) as usize, false, 31 + n as u64);
        let compiled = Compiled::compile(&w::tc_datalog()).unwrap();
        let base = Interp::from_database(&db);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let mut meter = Budget::LARGE.meter();
                naive(black_box(&compiled), &base, &|_, _| false, &mut meter).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| {
                let mut meter = Budget::LARGE.meter();
                semi_naive(black_box(&compiled), &base, &|_, _| false, &mut meter).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
