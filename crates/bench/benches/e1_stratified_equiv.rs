//! E1 — Theorem 4.3: stratified deduction vs positive IFP-algebra on the
//! TC + complement workload. Both sides compute identical answers (the
//! `tables` binary asserts it); this bench times them.

use algrec_bench::workloads as w;
use algrec_core::eval_exact;
use algrec_datalog::{evaluate, Semantics};
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_stratified_equiv");
    g.sample_size(10);
    for n in [16i64, 32, 64] {
        let db = w::with_nodes(
            w::random_graph("edge", n, (2 * n) as usize, false, 11 + n as u64),
            n,
        );
        let ded = w::unreach_datalog();
        let alg = w::unreach_algebra();
        g.bench_with_input(BenchmarkId::new("stratified_deduction", n), &n, |b, _| {
            b.iter(|| evaluate(black_box(&ded), &db, Semantics::Stratified, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("positive_ifp_algebra", n), &n, |b, _| {
            b.iter(|| eval_exact(black_box(&alg), &db, Budget::LARGE).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
