//! E6 — the WIN/MOVE game across semantics and cycle fractions: the
//! three-valued semantics' cost as undefinedness appears.

use algrec_bench::workloads as w;
use algrec_datalog::{evaluate, Semantics};
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_win_move");
    g.sample_size(10);
    let n = 24i64;
    for frac in [0.0f64, 0.3, 1.0] {
        let db = w::winmove_graph(n, frac, 17);
        let p = w::win_datalog();
        let tag = format!("{frac:.1}");
        g.bench_with_input(BenchmarkId::new("valid", &tag), &frac, |b, _| {
            b.iter(|| evaluate(black_box(&p), &db, Semantics::Valid, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("well_founded", &tag), &frac, |b, _| {
            b.iter(|| evaluate(black_box(&p), &db, Semantics::WellFounded, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("inflationary", &tag), &frac, |b, _| {
            b.iter(|| evaluate(black_box(&p), &db, Semantics::Inflationary, Budget::LARGE).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
