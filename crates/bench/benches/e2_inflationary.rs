//! E2 — Proposition 5.1: IFP-algebra evaluation vs its naive deductive
//! translation under the inflationary semantics.

use algrec_bench::workloads as w;
use algrec_core::eval_exact;
use algrec_datalog::{evaluate, Semantics};
use algrec_translate::{algebra_to_datalog, edb_arities, TranslationMode};
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_inflationary");
    g.sample_size(10);
    // The translated program re-materializes its product predicate per
    // inflationary stage (see EXPERIMENTS.md, E2), so the sweep stays
    // small — at n = 48 a single translated evaluation already takes
    // ≈ 14 s.
    for n in [8i64, 16, 24] {
        let db = w::random_graph("edge", n, (2 * n) as usize, false, 23 + n as u64);
        let alg = w::tc_algebra();
        let tr = algebra_to_datalog(&alg, &edb_arities(&db), TranslationMode::Naive).unwrap();
        g.bench_with_input(BenchmarkId::new("direct_ifp_algebra", n), &n, |b, _| {
            b.iter(|| eval_exact(black_box(&alg), &db, Budget::LARGE).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("translated_inflationary", n),
            &n,
            |b, _| {
                b.iter(|| {
                    evaluate(
                        black_box(&tr.program),
                        &db,
                        Semantics::Inflationary,
                        Budget::LARGE,
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
