//! E4 — Theorem 6.2: safe deduction under the valid semantics vs its
//! Prop 6.1 algebra= translation under the algebra valid semantics.

use algrec_bench::workloads as w;
use algrec_core::eval_valid;
use algrec_datalog::{evaluate, Semantics};
use algrec_translate::{datalog_to_algebra, edb_arities};
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_roundtrip");
    g.sample_size(10);
    for n in [8i64, 16, 24] {
        let db = w::winmove_graph(n, 0.3, 7);
        let p = w::win_datalog();
        let alg = datalog_to_algebra(&p, "win", &edb_arities(&db)).unwrap();
        g.bench_with_input(BenchmarkId::new("deduction_valid", n), &n, |b, _| {
            b.iter(|| evaluate(black_box(&p), &db, Semantics::Valid, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("algebra_eq_valid", n), &n, |b, _| {
            b.iter(|| eval_valid(black_box(&alg), &db, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("translation_itself", n), &n, |b, _| {
            b.iter(|| datalog_to_algebra(black_box(&p), "win", &edb_arities(&db)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
