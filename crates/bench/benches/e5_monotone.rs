//! E5 — Proposition 3.4: recursion-as-valid-fixpoint vs the IFP operator
//! on monotone bodies (they agree; the bench compares their cost).

use algrec_bench::workloads as w;
use algrec_core::{eval_exact, eval_valid};
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_monotone");
    g.sample_size(10);
    for n in [16i64, 32, 64] {
        let db = w::random_graph("edge", n, (2 * n) as usize, false, 3 + n as u64);
        let ifp = w::tc_algebra();
        let rec = algrec_core::parser::parse_program(
            "def tc = edge union map(select(tc * edge, x.1 = x.2), [x.0, x.3]); query tc;",
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("ifp_inflationary", n), &n, |b, _| {
            b.iter(|| eval_exact(black_box(&ifp), &db, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("recursive_valid", n), &n, |b, _| {
            b.iter(|| eval_valid(black_box(&rec), &db, Budget::LARGE).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
