//! E3 — Proposition 5.2: direct inflationary evaluation vs the
//! stage-indexed simulation under the valid semantics. The simulation's
//! super-constant overhead (every fact re-derived at every later stage)
//! is the series of interest.

use algrec_bench::workloads as w;
use algrec_datalog::{evaluate, Semantics};
use algrec_translate::inflationary_to_valid;
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_stage_sim");
    g.sample_size(10);
    for n in [8i64, 16, 24] {
        let db = w::winmove_graph(n, 0.0, 5 + n as u64);
        let p = w::win_datalog();
        let staged = inflationary_to_valid(&p, n + 2);
        g.bench_with_input(BenchmarkId::new("direct_inflationary", n), &n, |b, _| {
            b.iter(|| evaluate(black_box(&p), &db, Semantics::Inflationary, Budget::LARGE).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("stage_simulated_valid", n), &n, |b, _| {
            b.iter(|| evaluate(black_box(&staged), &db, Semantics::Valid, Budget::LARGE).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
