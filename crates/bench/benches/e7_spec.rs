//! E7 — Section 2 machinery: valid interpretation of SET(nat) windows and
//! the constants-only initial-valid-model decision procedure.

use algrec_adt::specs;
use algrec_adt::valid_interp::ValidInterpretation;
use algrec_value::Budget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_spec");
    g.sample_size(10);
    for depth in [1usize, 2, 3] {
        let spec = specs::set_spec();
        g.bench_with_input(
            BenchmarkId::new("set_nat_valid_interp", depth),
            &depth,
            |b, &d| {
                b.iter(|| ValidInterpretation::compute(black_box(&spec), d, Budget::LARGE).unwrap())
            },
        );
    }
    let ex2 = specs::example2_spec();
    g.bench_function("example2_initial_valid_model", |b| {
        b.iter(|| algrec_adt::initial_valid_model(black_box(&ex2), Budget::LARGE).unwrap())
    });
    let even = specs::even_set_spec(2);
    let universe = specs::even_set_universe(2);
    g.bench_function("even_set_valid_interp", |b| {
        b.iter(|| {
            ValidInterpretation::compute_over(black_box(&even), universe.clone(), Budget::LARGE)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
