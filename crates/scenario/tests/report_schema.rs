//! Schema pin for the scenario report (`BENCH_7.json`), in the style of
//! the bench crate's `json_schema.rs` pins for `BENCH_5`/`BENCH_6`: the
//! exact serialized form — key names, key order, nesting, value kinds —
//! is asserted as a string. If this test fails, downstream consumers of
//! the report will break: bump deliberately and update them in the same
//! change.

use algrec_scenario::report::{report_json, LegReport, RecoveryLeg, ScenarioReport};

fn sample() -> ScenarioReport {
    ScenarioReport {
        name: "acl_authz".to_string(),
        title: "ACL authorization derivation".to_string(),
        tags: vec!["authz".to_string(), "valid".to_string()],
        semantics: vec!["valid".to_string()],
        requests: 17,
        reads: 12,
        writes: 5,
        legs: vec![LegReport {
            concurrency: 4,
            scale: 2,
            requests: 29,
            elapsed_s: 0.5,
            throughput_rps: 58.0,
            latency_p50_us: 40,
            latency_p95_us: 900,
            latency_max_us: 1500,
            matched: true,
        }],
        recovery: Some(RecoveryLeg {
            elapsed_s: 0.25,
            recovery_s: 0.125,
            replayed: 7,
            checked: 5,
            matched: true,
        }),
    }
}

#[test]
fn bench_7_schema_is_pinned() {
    // Objects serialize with sorted keys (the same `Json` the protocol
    // replies use), so the pinned form is alphabetical at every level.
    let got = report_json("scenarios", &[sample()]);
    let want = concat!(
        r#"{"corpus":"scenarios","report":"scenario","scenarios":["#,
        r#"{"legs":[{"concurrency":4,"elapsed_s":0.5,"#,
        r#""latency_max_us":1500,"latency_p50_us":40,"latency_p95_us":900,"#,
        r#""matched":true,"requests":29,"scale":2,"throughput_rps":58}],"#,
        r#""name":"acl_authz","reads":12,"#,
        r#""recovery":{"checked":5,"elapsed_s":0.25,"matched":true,"#,
        r#""recovery_s":0.125,"replayed":7},"#,
        r#""requests":17,"semantics":["valid"],"tags":["authz","valid"],"#,
        r#""title":"ACL authorization derivation","writes":5}]}"#,
    );
    assert_eq!(got, want);
}

#[test]
fn recovery_is_null_when_skipped() {
    let mut s = sample();
    s.recovery = None;
    let got = report_json("scenarios", &[s]);
    assert!(got.contains(r#""recovery":null"#), "{got}");
}

#[test]
fn the_document_is_valid_json_with_the_pinned_top_level() {
    let got = report_json("scenarios", &[sample()]);
    let doc = algrec_serve::json::parse(&got).unwrap();
    assert_eq!(
        doc.get("report").and_then(algrec_serve::json::Json::as_str),
        Some("scenario")
    );
    assert_eq!(
        doc.get("corpus").and_then(algrec_serve::json::Json::as_str),
        Some("scenarios")
    );
}
