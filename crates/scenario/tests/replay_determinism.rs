//! Record/replay determinism over the *checked-in* corpus: every
//! scenario in `scenarios/` replays byte-identically (modulo epoch
//! tags) to its committed recording at concurrency 1 and 4, and the
//! reply stream is identical across the two concurrencies. This is the
//! acceptance test for the scenario engine — if a semantics change
//! legitimately alters replies, re-record with `algrec scenario
//! record` and review the diff.

use algrec_scenario::replay::{
    diff_modulo_epoch, replay, setup_session, InProcessConnector, ReplayOptions,
};
use algrec_scenario::{load_corpus, Scenario};
use algrec_serve::Session;
use algrec_value::Budget;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn replay_at(scenario: &Scenario, concurrency: usize, scale: usize) -> Vec<String> {
    let mut session = Session::new(Budget::LARGE);
    setup_session(&mut session, scenario).unwrap();
    let connector = InProcessConnector::new(session);
    replay(scenario, &connector, ReplayOptions { concurrency, scale })
        .unwrap()
        .replies
}

#[test]
fn corpus_has_the_four_seed_scenarios_with_distinct_semantics() {
    let corpus = load_corpus(&corpus_dir()).unwrap();
    let names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "acl_authz",
        "package_deps",
        "session_windows",
        "social_reachability",
    ] {
        assert!(names.contains(&expected), "missing scenario: {expected}");
    }
    assert!(corpus.len() >= 4);
    // The seeds genuinely cover distinct semantics.
    let mut facets: Vec<String> = corpus.iter().flat_map(|s| s.semantics_facet()).collect();
    facets.sort();
    facets.dedup();
    for semantics in ["inflationary", "stratified", "valid"] {
        assert!(facets.contains(&semantics.to_string()), "{facets:?}");
    }
    // Every committed scenario ships a recording.
    for s in &corpus {
        assert!(s.expected.is_some(), "{}: not recorded", s.name);
    }
}

#[test]
fn every_committed_recording_replays_at_concurrency_1_and_4() {
    for scenario in load_corpus(&corpus_dir()).unwrap() {
        let expected = scenario.expected.as_ref().unwrap();
        let serial = replay_at(&scenario, 1, 1);
        if let Some(d) = diff_modulo_epoch(&scenario.trace, expected, &serial) {
            panic!(
                "{}: serial replay diverges from recording\n{d}",
                scenario.name
            );
        }
        let concurrent = replay_at(&scenario, 4, 1);
        if let Some(d) = diff_modulo_epoch(&scenario.trace, &serial, &concurrent) {
            panic!("{}: c=4 diverges from c=1\n{d}", scenario.name);
        }
    }
}

#[test]
fn scaling_reads_changes_load_but_not_replies() {
    let corpus = load_corpus(&corpus_dir()).unwrap();
    let scenario = corpus
        .iter()
        .find(|s| s.name == "package_deps")
        .expect("package_deps scenario");
    let base = replay_at(scenario, 1, 1);
    let scaled = replay_at(scenario, 4, 3);
    assert_eq!(
        diff_modulo_epoch(&scenario.trace, &base, &scaled),
        None,
        "scale must multiply load, not change answers"
    );
}

#[test]
fn the_acl_scenario_exercises_three_valued_answers() {
    // The authz core is non-stratifiable; under the valid semantics the
    // contested grants must surface as `unknown` in the recording —
    // otherwise the scenario has silently stopped covering what it was
    // seeded for.
    let corpus = load_corpus(&corpus_dir()).unwrap();
    let acl = corpus.iter().find(|s| s.name == "acl_authz").unwrap();
    let unknowns = acl
        .expected
        .as_ref()
        .unwrap()
        .iter()
        .filter(|r| r.contains("\"unknown\":[\""))
        .count();
    assert!(
        unknowns > 0,
        "acl_authz recording has no three-valued replies"
    );
}
