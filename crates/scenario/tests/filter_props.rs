//! Property tests for the filter DSL: the canonical printer and the
//! parser are inverses, and malformed input is reported with a precise
//! character offset.

use algrec_scenario::filter::{parse, Expr, Key, Op, ParseError};
use proptest::prelude::*;

fn keys() -> impl Strategy<Value = Key> {
    prop::sample::select(&[Key::Name, Key::Tag, Key::Semantics][..])
}

fn ops() -> impl Strategy<Value = Op> {
    prop::sample::select(&[Op::Eq, Op::Ne, Op::Contains, Op::NotContains][..])
}

/// Comparison values: barewords, strings needing quotes, empties,
/// escapes, unicode.
fn values() -> impl Strategy<Value = String> {
    const AWKWARD: [&str; 9] = [
        "",
        "two words",
        "semantics",
        "true",
        "-leading-dash",
        "quo\"te",
        "back\\slash",
        "tab\there",
        "snö & råg | !x",
    ];
    prop_oneof![
        "[a-z0-9_.:-]{1,8}",
        prop::sample::select(&AWKWARD[..]).prop_map(str::to_string),
    ]
}

/// Arbitrary *canonical* ASTs: `And`/`Or` always carry at least two
/// arms (the parser never produces fewer, and a one-arm connective
/// would print as its child and round-trip to a different tree).
fn exprs() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (keys(), ops(), values()).prop_map(|(k, o, v)| Expr::Cmp(k, o, v)),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner, 2..4).prop_map(Expr::Or),
        ]
    })
}

proptest! {
    /// print → parse is the identity on canonical ASTs, and printing
    /// the re-parse reproduces the same text (the printer is a fixed
    /// point).
    #[test]
    fn print_parse_round_trips(e in exprs()) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` failed to re-parse: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Evaluation is invariant under the round trip (a weaker but
    /// orthogonal check: the *meaning*, not just the tree, survives).
    #[test]
    fn round_trip_preserves_matching(
        e in exprs(),
        name in "[a-z_]{1,10}",
        tags in prop::collection::vec("[a-z]{1,6}", 0..3),
        semantics in prop::collection::vec("[a-z-]{1,8}", 0..2),
    ) {
        let reparsed = parse(&e.to_string()).unwrap();
        prop_assert_eq!(
            reparsed.matches(&name, &tags, &semantics),
            e.matches(&name, &tags, &semantics)
        );
    }
}

#[track_caller]
fn assert_error(src: &str, expected_fragment: &str, offset: usize) {
    let err: ParseError = parse(src).expect_err(src);
    assert!(
        err.expected.contains(expected_fragment),
        "{src}: expected fragment `{expected_fragment}` in `{}`",
        err.expected
    );
    assert_eq!(err.offset, offset, "{src}: {err}");
    // The offset is always within (or one past) the input.
    assert!(err.offset <= src.chars().count(), "{src}: {err}");
}

#[test]
fn malformed_filters_report_precise_offsets() {
    assert_error("", "a word", 0);
    assert_error("   ", "a word", 3);
    assert_error("tag", "an operator", 3);
    assert_error("tag = ", "a word", 6);
    assert_error("name ~~ oops", "a word", 6);
    assert_error("bogus = x", "`name`, `tag`, `semantics`", 0);
    assert_error("tag = a & bogus = x", "`name`, `tag`, `semantics`", 10);
    assert_error("tag = a &", "a word", 9);
    assert_error("(tag = a", "`)`", 8);
    assert_error("tag = a)", "end of input", 7);
    assert_error("tag ! x", "an operator", 4);
    assert_error("name = \"abc", "closing `\"`", 11);
    assert_error("name = \"a\\n\"", "`\\\"` or `\\\\`", 10);
    assert_error("!= slow", "a word", 0);
}

#[test]
fn offsets_are_character_not_byte_positions() {
    // A multi-byte scenario name inside quotes parses; the error after
    // it is reported in characters.
    let err = parse("name = \"sné\" &").unwrap_err();
    assert_eq!(err.offset, 14, "{err}");
}
