//! The scenario filter-expression DSL.
//!
//! A filter selects scenarios from the corpus by name, tag, or
//! semantics:
//!
//! ```text
//! name ~ "authz" & tag = slow
//! (tag = social | tag = deps) & !(semantics = inflationary)
//! tag != slow
//! ```
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! expr  := or
//! or    := and ( '|' and )*
//! and   := not ( '&' not )*
//! not   := '!' not | atom
//! atom  := '(' expr ')' | 'true' | 'false' | cmp
//! cmp   := key op value
//! key   := 'name' | 'tag' | 'semantics'
//! op    := '=' | '!=' | '~' | '!~'
//! value := bareword | '"' quoted string '"'
//! ```
//!
//! `=` is (set) equality — for multi-valued keys (`tag`, `semantics`)
//! it holds when *any* value matches; `~` is substring containment on
//! the same quantification. `!=` and `!~` are their negations over the
//! whole set (`tag != slow` means *no* tag equals `slow`), which is the
//! useful reading for selection: `-f 'tag != slow'` excludes exactly
//! the scenarios carrying the tag.
//!
//! [`parse`] reports malformed input with a character offset;
//! [`Expr`]'s `Display` is a canonical printer whose output re-parses
//! to the same AST (pinned by the round-trip proptest in
//! `tests/filter_props.rs`).

use std::fmt;

/// A key a comparison can test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// The scenario's directory name.
    Name,
    /// Any of the scenario's tags.
    Tag,
    /// Any of the scenario's view semantics (canonical names, e.g.
    /// `stratified`, `valid`, `valid-extended:16`).
    Semantics,
}

impl Key {
    fn as_str(self) -> &'static str {
        match self {
            Key::Name => "name",
            Key::Tag => "tag",
            Key::Semantics => "semantics",
        }
    }
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Some value of the key equals the literal.
    Eq,
    /// No value of the key equals the literal.
    Ne,
    /// Some value of the key contains the literal as a substring.
    Contains,
    /// No value of the key contains the literal as a substring.
    NotContains,
}

impl Op {
    fn as_str(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Contains => "~",
            Op::NotContains => "!~",
        }
    }
}

/// A parsed filter expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `true` / `false`.
    Const(bool),
    /// `key op value`.
    Cmp(Key, Op, String),
    /// `!e`.
    Not(Box<Expr>),
    /// `a & b` (flattened left-to-right).
    And(Vec<Expr>),
    /// `a | b` (flattened left-to-right).
    Or(Vec<Expr>),
}

impl Expr {
    /// Evaluate against one scenario's facets: its name and the value
    /// sets behind `tag` and `semantics`.
    pub fn matches(&self, name: &str, tags: &[String], semantics: &[String]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Not(e) => !e.matches(name, tags, semantics),
            Expr::And(es) => es.iter().all(|e| e.matches(name, tags, semantics)),
            Expr::Or(es) => es.iter().any(|e| e.matches(name, tags, semantics)),
            Expr::Cmp(key, op, value) => {
                let single = [name.to_string()];
                let values: &[String] = match key {
                    Key::Name => &single,
                    Key::Tag => tags,
                    Key::Semantics => semantics,
                };
                match op {
                    Op::Eq => values.iter().any(|v| v == value),
                    Op::Ne => !values.iter().any(|v| v == value),
                    Op::Contains => values.iter().any(|v| v.contains(value.as_str())),
                    Op::NotContains => !values.iter().any(|v| v.contains(value.as_str())),
                }
            }
        }
    }

    /// Precedence level for the printer: higher binds tighter.
    fn level(&self) -> u8 {
        match self {
            Expr::Or(_) => 0,
            Expr::And(_) => 1,
            Expr::Not(_) => 2,
            Expr::Const(_) | Expr::Cmp(..) => 3,
        }
    }

    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let me = self.level();
        if me < parent {
            write!(f, "(")?;
        }
        match self {
            Expr::Const(b) => write!(f, "{b}")?,
            Expr::Cmp(key, op, value) => {
                write!(f, "{} {} ", key.as_str(), op.as_str())?;
                if is_bareword(value) {
                    write!(f, "{value}")?;
                } else {
                    write!(
                        f,
                        "\"{}\"",
                        value.replace('\\', "\\\\").replace('"', "\\\"")
                    )?;
                }
            }
            Expr::Not(e) => {
                write!(f, "!")?;
                e.fmt_at(f, 3)?;
            }
            Expr::And(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    e.fmt_at(f, 2)?;
                }
            }
            Expr::Or(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    e.fmt_at(f, 1)?;
                }
            }
        }
        if me < parent {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, 0)
    }
}

/// Can `s` print unquoted? Barewords are nonempty runs of
/// `[A-Za-z0-9_.:-]` that are not keywords and don't start with `-`
/// (so a printed filter never looks like a flag).
fn is_bareword(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with('-')
        && !matches!(s, "true" | "false" | "name" | "tag" | "semantics")
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-'))
}

/// A parse failure: what was expected, and the character offset where
/// the input stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser was looking for.
    pub expected: String,
    /// 0-based character offset into the filter string.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter: expected {} at offset {}",
            self.expected, self.offset
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a filter expression. The whole string must be consumed.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    let e = p.or()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("end of input"));
    }
    Ok(e)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, expected: impl Into<String>) -> ParseError {
        ParseError {
            expected: expected.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut arms = vec![self.and()?];
        loop {
            self.skip_ws();
            if !self.eat('|') {
                break;
            }
            arms.push(self.and()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Expr::Or(arms)
        })
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut arms = vec![self.not()?];
        loop {
            self.skip_ws();
            if !self.eat('&') {
                break;
            }
            arms.push(self.not()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Expr::And(arms)
        })
    }

    fn not(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        // `!` only negates when not the head of `!=` / `!~` (which
        // cannot start an expression anyway — but a stray `!=` should
        // be reported at the `!`, as a missing operand).
        if self.peek() == Some('!') && !matches!(self.chars.get(self.pos + 1), Some('=' | '~')) {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.not()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat('(') {
            let e = self.or()?;
            self.skip_ws();
            if !self.eat(')') {
                return Err(self.err("`)`"));
            }
            return Ok(e);
        }
        let word = self.bareword()?;
        match word.as_str() {
            "true" => Ok(Expr::Const(true)),
            "false" => Ok(Expr::Const(false)),
            "name" | "tag" | "semantics" => {
                let key = match word.as_str() {
                    "name" => Key::Name,
                    "tag" => Key::Tag,
                    _ => Key::Semantics,
                };
                let op = self.op()?;
                let value = self.value()?;
                Ok(Expr::Cmp(key, op, value))
            }
            _ => {
                // Point at the start of the offending word.
                self.pos -= word.chars().count();
                Err(self.err("`name`, `tag`, `semantics`, `true`, `false`, or `(`"))
            }
        }
    }

    fn op(&mut self) -> Result<Op, ParseError> {
        self.skip_ws();
        if self.eat('=') {
            return Ok(Op::Eq);
        }
        if self.eat('~') {
            return Ok(Op::Contains);
        }
        if self.eat('!') {
            if self.eat('=') {
                return Ok(Op::Ne);
            }
            if self.eat('~') {
                return Ok(Op::NotContains);
            }
            self.pos -= 1;
        }
        Err(self.err("an operator (`=`, `!=`, `~`, `!~`)"))
    }

    fn value(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if self.eat('"') {
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some('"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some('\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(c @ ('"' | '\\')) => {
                                out.push(c);
                                self.pos += 1;
                            }
                            _ => return Err(self.err("`\\\"` or `\\\\`")),
                        }
                    }
                    Some(c) => {
                        out.push(c);
                        self.pos += 1;
                    }
                    None => return Err(self.err("closing `\"`")),
                }
            }
        }
        let word = self.bareword()?;
        Ok(word)
    }

    fn bareword(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("a word"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_motivating_examples() {
        let e = parse(r#"name ~ "authz" & tag = slow"#).unwrap();
        assert_eq!(
            e,
            Expr::And(vec![
                Expr::Cmp(Key::Name, Op::Contains, "authz".into()),
                Expr::Cmp(Key::Tag, Op::Eq, "slow".into()),
            ])
        );
        assert!(e.matches("acl_authz", &strs(&["authz", "slow"]), &[]));
        assert!(!e.matches("acl_authz", &strs(&["authz"]), &[]));
        assert!(!e.matches("social", &strs(&["slow"]), &[]));
    }

    #[test]
    fn tag_ne_excludes_the_tagged() {
        let e = parse("tag != slow").unwrap();
        assert!(e.matches("a", &strs(&["fast"]), &[]));
        assert!(!e.matches("a", &strs(&["fast", "slow"]), &[]));
        // A scenario with no tags has no tag equal to `slow`.
        assert!(e.matches("a", &[], &[]));
    }

    #[test]
    fn precedence_and_grouping() {
        let e = parse("tag = a | tag = b & tag = c").unwrap();
        assert_eq!(
            e,
            Expr::Or(vec![
                Expr::Cmp(Key::Tag, Op::Eq, "a".into()),
                Expr::And(vec![
                    Expr::Cmp(Key::Tag, Op::Eq, "b".into()),
                    Expr::Cmp(Key::Tag, Op::Eq, "c".into()),
                ]),
            ])
        );
        let g = parse("(tag = a | tag = b) & tag = c").unwrap();
        assert_eq!(
            g,
            Expr::And(vec![
                Expr::Or(vec![
                    Expr::Cmp(Key::Tag, Op::Eq, "a".into()),
                    Expr::Cmp(Key::Tag, Op::Eq, "b".into()),
                ]),
                Expr::Cmp(Key::Tag, Op::Eq, "c".into()),
            ])
        );
    }

    #[test]
    fn not_binds_tightest() {
        let e = parse("!tag = slow & semantics = valid").unwrap();
        assert_eq!(
            e,
            Expr::And(vec![
                Expr::Not(Box::new(Expr::Cmp(Key::Tag, Op::Eq, "slow".into()))),
                Expr::Cmp(Key::Semantics, Op::Eq, "valid".into()),
            ])
        );
        assert!(e.matches("x", &[], &strs(&["valid"])));
    }

    #[test]
    fn printer_is_canonical() {
        for (src, printed) in [
            (r#"name~"authz"&tag=slow"#, r#"name ~ authz & tag = slow"#),
            (
                "( tag = a | tag = b ) & !false",
                "(tag = a | tag = b) & !false",
            ),
            (r#"name = "two words""#, r#"name = "two words""#),
            (
                "semantics = valid-extended:16",
                "semantics = valid-extended:16",
            ),
        ] {
            let e = parse(src).unwrap();
            assert_eq!(e.to_string(), printed, "{src}");
            assert_eq!(parse(&e.to_string()).unwrap(), e, "{src}");
        }
    }

    #[test]
    fn quoted_escapes_round_trip() {
        let e = Expr::Cmp(Key::Name, Op::Eq, "a\"b\\c".into());
        assert_eq!(parse(&e.to_string()).unwrap(), e);
    }
}
