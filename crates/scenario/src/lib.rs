//! Scenario corpus engine: record/replay end-to-end serving workloads.
//!
//! A *scenario* packages a program, an extensional database, and a
//! recorded line-protocol trace with its expected replies into a
//! directory ([`corpus`]). The [`replay`] harness drives the trace
//! against a fresh serving session — in-process or over live TCP — at
//! adjustable concurrency and read scale-factor, diffing replies
//! against the recording modulo epoch tags. Scenarios are selected with
//! a small [`filter`] expression DSL (`name ~ "authz" & tag != slow`),
//! and `algrec scenario run` ([`runner`]) emits a per-scenario
//! throughput/latency/recovery [`report`] (`BENCH_7.json`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod filter;
pub mod replay;
pub mod report;
pub mod runner;

pub use corpus::{load_corpus, load_scenario, CorpusError, Scenario, ViewSpec};
pub use filter::{parse as parse_filter, Expr as FilterExpr, ParseError as FilterError};
pub use replay::{
    diff_modulo_epoch, replay, strip_epoch, Connector, Divergence, InProcessConnector,
    ReplayOptions, ReplayOutcome, TcpConnector, Transport,
};
pub use report::{report_json, LegReport, RecoveryLeg, ScenarioReport};
pub use runner::{all_matched, list, record, run, select, RunOptions};
