//! The scenario runner behind `algrec scenario list|run|record`.
//!
//! * [`list`] prints the corpus (after filtering) with titles, tags and
//!   semantics.
//! * [`run`] replays every selected scenario at each configured
//!   concurrency (in-process by default, against a live TCP server
//!   under `--live`, or against an already-running external server —
//!   e.g. a cluster router — under `--addr`), diffs replies against
//!   the recording modulo epoch
//!   tags, runs the durable recovery leg, and optionally writes the
//!   [`crate::report`] document (`BENCH_7.json`).
//! * [`record`] replays each selected scenario once at concurrency 1
//!   and (re)writes its `expected.ndjson`.

use crate::corpus::{load_corpus, Scenario};
use crate::filter::Expr;
use crate::replay::{
    diff_modulo_epoch, replay, setup_session, strip_epoch, Connector, InProcessConnector,
    ReplayOptions, ReplayOutcome, TcpConnector,
};
use crate::report::{percentile_us, LegReport, RecoveryLeg, ScenarioReport};
use algrec_serve::{serve, Session};
use algrec_store::{StoreOptions, SyncPolicy};
use algrec_value::{Budget, Trace};
use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Corpus directory.
    pub corpus: PathBuf,
    /// Scenario selection; `None` selects everything.
    pub filter: Option<Expr>,
    /// Concurrency legs to replay (each scenario runs once per entry).
    pub concurrency: Vec<usize>,
    /// Read scale-factor applied to every leg.
    pub scale: usize,
    /// Where to write the report document, if anywhere.
    pub report: Option<PathBuf>,
    /// Replay over a live TCP server (spawned per scenario on an
    /// ephemeral loopback port) instead of in-process.
    pub live: bool,
    /// Replay against an already-running external server (e.g. a
    /// cluster router) at this `host:port` instead of spawning one.
    /// The target must have been seeded with the scenario's EDB and
    /// views already — no setup is sent — the durable recovery leg
    /// is skipped (the external server owns its own durability), and
    /// the trace replays exactly once, at the widest configured
    /// concurrency: the trace's writes advance the external state, so
    /// a second leg would start from the wrong database.
    pub addr: Option<String>,
    /// Skip the durable recovery leg.
    pub no_recovery: bool,
    /// Evaluation budget for every session.
    pub budget: Budget,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            corpus: PathBuf::from("scenarios"),
            filter: None,
            concurrency: vec![1, 4],
            scale: 1,
            report: None,
            live: false,
            addr: None,
            no_recovery: false,
            budget: Budget::LARGE,
        }
    }
}

/// Load the corpus and apply the filter.
pub fn select(corpus: &Path, filter: Option<&Expr>) -> Result<Vec<Scenario>, String> {
    let scenarios = load_corpus(corpus).map_err(|e| e.to_string())?;
    Ok(scenarios
        .into_iter()
        .filter(|s| filter.map_or(true, |f| f.matches(&s.name, &s.tags, &s.semantics_facet())))
        .collect())
}

/// Print the (filtered) corpus, one scenario per line.
pub fn list(out: &mut dyn Write, corpus: &Path, filter: Option<&Expr>) -> Result<(), String> {
    let scenarios = select(corpus, filter)?;
    for s in &scenarios {
        writeln!(
            out,
            "{}  [{}]  ({})  {} request(s) — {}",
            s.name,
            s.tags.join(", "),
            s.semantics_facet().join(", "),
            s.trace.len(),
            s.title,
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(out, "{} scenario(s)", scenarios.len()).map_err(|e| e.to_string())?;
    Ok(())
}

/// A fresh, set-up in-memory session for a scenario.
fn session_for(scenario: &Scenario, budget: Budget) -> Result<Session, String> {
    let mut session = Session::new(budget);
    setup_session(&mut session, scenario)?;
    Ok(session)
}

/// Run one replay leg, in-process or against a throwaway live server.
fn replay_leg(
    scenario: &Scenario,
    opts: &RunOptions,
    replay_opts: ReplayOptions,
) -> Result<ReplayOutcome, String> {
    if let Some(addr) = &opts.addr {
        // External target: the server (often a cluster router) already
        // holds the scenario's state, so no session, setup or teardown.
        use std::net::ToSocketAddrs;
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| format!("{addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("{addr}: resolved to no address"))?;
        let connector = TcpConnector::new(sockaddr);
        return replay(scenario, &connector, replay_opts);
    }
    let session = session_for(scenario, opts.budget)?;
    if !opts.live {
        let connector = InProcessConnector::new(session);
        return replay(scenario, &connector, replay_opts);
    }
    // Live leg: a real `serve` loop on an ephemeral loopback port, torn
    // down with a protocol `shutdown` once the trace has replayed.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let server = std::thread::spawn(move || serve(listener, session));
    let connector = TcpConnector::new(addr);
    let outcome = replay(scenario, &connector, replay_opts);
    let mut control = connector.connect()?;
    control.roundtrip(r#"{"id": "scenario-shutdown", "op": "shutdown"}"#)?;
    server
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server: {e}"))?;
    outcome
}

/// The indices of the trace's trailing maximal read block — the reads
/// that observed the scenario's *final* state, hence the reads a
/// recovered session must be able to reproduce.
fn trailing_reads(scenario: &Scenario) -> Vec<usize> {
    let mut idx: Vec<usize> = Vec::new();
    for (i, line) in scenario.trace.iter().enumerate().rev() {
        if crate::replay::is_read_request(line) {
            idx.push(i);
        } else {
            break;
        }
    }
    idx.reverse();
    idx
}

/// A process-unique scratch directory for a durable leg.
fn scratch_dir(name: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "algrec-scenario-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The durable leg: replay the trace against a `--data-dir`-backed
/// session (concurrency 1 — the WAL serializes writes anyway), close
/// it, time the reopen, and re-issue the trailing read block against
/// the recovered session. Recovery passes when every re-issued reply
/// matches the live one modulo epoch tags. Debug builds additionally
/// verify the recovered views bit-identical to a cold evaluation inside
/// `algrec_store::open` itself.
fn recovery_leg(scenario: &Scenario, budget: Budget) -> Result<RecoveryLeg, String> {
    let dir = scratch_dir(&scenario.name);
    let _ = std::fs::remove_dir_all(&dir);
    let result = recovery_leg_in(&dir, scenario, budget);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn recovery_leg_in(dir: &Path, scenario: &Scenario, budget: Budget) -> Result<RecoveryLeg, String> {
    let options = StoreOptions {
        sync: SyncPolicy::Never,
        snapshot_every: Some(1024),
    };
    let (mut session, _) = algrec_store::open(dir, budget, options, Trace::Null)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    setup_session(&mut session, scenario)?;
    let connector = InProcessConnector::new(session);
    let t0 = Instant::now();
    let live = replay(scenario, &connector, ReplayOptions::default())?;
    let elapsed_s = t0.elapsed().as_secs_f64();
    drop(connector);

    let t0 = Instant::now();
    let (recovered, report) = algrec_store::open(dir, budget, options, Trace::Null)
        .map_err(|e| format!("{}: reopening: {e}", dir.display()))?;
    let recovery_s = t0.elapsed().as_secs_f64();

    let tail = trailing_reads(scenario);
    let connector = InProcessConnector::new(recovered);
    let mut transport = connector.connect()?;
    let mut matched = true;
    for &i in &tail {
        let reply = transport.roundtrip(&scenario.trace[i])?;
        if strip_epoch(&reply) != strip_epoch(&live.replies[i]) {
            matched = false;
        }
    }
    Ok(RecoveryLeg {
        elapsed_s,
        recovery_s,
        replayed: report.replayed,
        checked: tail.len(),
        matched,
    })
}

fn leg_report(opts: ReplayOptions, outcome: &ReplayOutcome, matched: bool) -> LegReport {
    let mut sorted = outcome.latencies_us.clone();
    sorted.sort_unstable();
    LegReport {
        concurrency: opts.concurrency,
        scale: opts.scale,
        requests: outcome.requests(),
        elapsed_s: outcome.elapsed.as_secs_f64(),
        throughput_rps: outcome.throughput_rps(),
        latency_p50_us: percentile_us(&sorted, 50),
        latency_p95_us: percentile_us(&sorted, 95),
        latency_max_us: percentile_us(&sorted, 100),
        matched,
    }
}

/// Replay every selected scenario. Returns the per-scenario reports;
/// `Err` carries the first setup/transport failure. Reply divergences
/// do **not** error here — they are reported per leg (`matched:
/// false`) so one broken scenario doesn't hide the rest; the CLI exits
/// non-zero when [`all_matched`] is false.
pub fn run(out: &mut dyn Write, opts: &RunOptions) -> Result<Vec<ScenarioReport>, String> {
    let scenarios = select(&opts.corpus, opts.filter.as_ref())?;
    if scenarios.is_empty() {
        return Err("no scenarios selected".into());
    }
    let mut reports = Vec::new();
    for scenario in &scenarios {
        let Some(expected) = &scenario.expected else {
            return Err(format!(
                "{}: no recording (expected.ndjson); run `algrec scenario record` first",
                scenario.name
            ));
        };
        writeln!(
            out,
            "scenario {}: {} request(s), {} view(s) [{}]{}",
            scenario.name,
            scenario.trace.len(),
            scenario.views.len(),
            scenario.semantics_facet().join(", "),
            match (&opts.addr, opts.live) {
                (Some(_), _) => " (external)",
                (None, true) => " (live tcp)",
                (None, false) => "",
            },
        )
        .map_err(|e| e.to_string())?;
        let mut legs = Vec::new();
        let mut reads = 0;
        let mut writes = 0;
        // An external target's state advances with the trace's writes
        // and cannot be reset between legs, so the trace replays only
        // once there — at the widest configured concurrency. In-process
        // and `--live` legs each get a fresh session.
        let ladder: Vec<usize> = if opts.addr.is_some() {
            opts.concurrency.last().copied().into_iter().collect()
        } else {
            opts.concurrency.clone()
        };
        for &concurrency in &ladder {
            let replay_opts = ReplayOptions {
                concurrency,
                scale: opts.scale,
            };
            let outcome = replay_leg(scenario, opts, replay_opts)?;
            reads = outcome.reads;
            writes = outcome.writes;
            let divergence = diff_modulo_epoch(&scenario.trace, expected, &outcome.replies);
            if let Some(d) = &divergence {
                writeln!(out, "  c={concurrency}: DIVERGED\n{d}").map_err(|e| e.to_string())?;
            }
            let leg = leg_report(replay_opts, &outcome, divergence.is_none());
            writeln!(
                out,
                "  c={concurrency} x{}: {} req in {:.3} s — {:.0} req/s, \
                 p50 {} us, p95 {} us, max {} us{}",
                opts.scale,
                leg.requests,
                leg.elapsed_s,
                leg.throughput_rps,
                leg.latency_p50_us,
                leg.latency_p95_us,
                leg.latency_max_us,
                if leg.matched { "" } else { " [MISMATCH]" },
            )
            .map_err(|e| e.to_string())?;
            legs.push(leg);
        }
        let recovery = if opts.no_recovery || opts.addr.is_some() {
            None
        } else {
            let r = recovery_leg(scenario, opts.budget)?;
            writeln!(
                out,
                "  recovery: {:.3} s reopen, {} record(s) replayed, {}/{} tail read(s) match{}",
                r.recovery_s,
                r.replayed,
                if r.matched { r.checked } else { 0 },
                r.checked,
                if r.matched { "" } else { " [MISMATCH]" },
            )
            .map_err(|e| e.to_string())?;
            Some(r)
        };
        reports.push(ScenarioReport {
            name: scenario.name.clone(),
            title: scenario.title.clone(),
            tags: scenario.tags.clone(),
            semantics: scenario.semantics_facet(),
            requests: scenario.trace.len(),
            reads,
            writes,
            legs,
            recovery,
        });
    }
    if let Some(path) = &opts.report {
        let corpus_name = opts.corpus.to_string_lossy();
        std::fs::write(
            path,
            crate::report::report_json(&corpus_name, &reports) + "\n",
        )
        .map_err(|e| format!("{}: {e}", path.display()))?;
        writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
    }
    Ok(reports)
}

/// Did every leg and every recovery check of every scenario match?
pub fn all_matched(reports: &[ScenarioReport]) -> bool {
    reports.iter().all(|s| {
        s.legs.iter().all(|l| l.matched) && s.recovery.as_ref().map_or(true, |r| r.matched)
    })
}

/// Re-record the selected scenarios: replay each trace once, in
/// process, at concurrency 1, and rewrite `expected.ndjson`.
pub fn record(
    out: &mut dyn Write,
    corpus: &Path,
    filter: Option<&Expr>,
    budget: Budget,
) -> Result<(), String> {
    let scenarios = select(corpus, filter)?;
    if scenarios.is_empty() {
        return Err("no scenarios selected".into());
    }
    for scenario in &scenarios {
        let session = session_for(scenario, budget)?;
        let connector = InProcessConnector::new(session);
        let outcome = replay(scenario, &connector, ReplayOptions::default())?;
        let path = scenario.expected_path();
        let mut content = outcome.replies.join("\n");
        content.push('\n');
        std::fs::write(&path, content).map_err(|e| format!("{}: {e}", path.display()))?;
        writeln!(
            out,
            "recorded {}: {} replies -> {}",
            scenario.name,
            outcome.replies.len(),
            path.display()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::load_scenario;

    fn write(path: &Path, content: &str) {
        std::fs::write(path, content).unwrap();
    }

    /// A tiny corpus on disk: one stratified scenario.
    fn seed_corpus(tag: &str) -> PathBuf {
        let root = scratch_dir(&format!("runner-corpus-{tag}"));
        let dir = root.join("tiny_tc");
        std::fs::create_dir_all(&dir).unwrap();
        write(
            &dir.join("meta.json"),
            r#"{"title": "tiny transitive closure", "description": "d",
                "tags": ["fast"], "edb": "edb.dl",
                "views": [{"name": "paths", "semantics": "stratified"}]}"#,
        );
        write(
            &dir.join("program.dl"),
            "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).\n",
        );
        write(&dir.join("edb.dl"), "e(1, 2). e(2, 3).\n");
        write(
            &dir.join("trace.ndjson"),
            concat!(
                r#"{"id": 1, "op": "query", "view": "paths", "pred": "tc"}"#,
                "\n",
                r#"{"id": 2, "op": "assert", "fact": "e(3, 4)"}"#,
                "\n",
                r#"{"id": 3, "op": "query", "view": "paths", "pred": "tc"}"#,
                "\n",
                r#"{"id": 4, "op": "db"}"#,
                "\n",
            ),
        );
        root
    }

    #[test]
    fn record_then_run_matches_in_process_and_live() {
        let root = seed_corpus("roundtrip");
        let mut sink = Vec::new();
        record(&mut sink, &root, None, Budget::LARGE).unwrap();
        let s = load_scenario(&root.join("tiny_tc")).unwrap();
        assert_eq!(s.expected.as_ref().unwrap().len(), 4);

        let opts = RunOptions {
            corpus: root.clone(),
            concurrency: vec![1, 4],
            ..RunOptions::default()
        };
        let reports = run(&mut sink, &opts).unwrap();
        assert!(all_matched(&reports), "{reports:?}");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].reads, 3);
        assert_eq!(reports[0].writes, 1);
        assert_eq!(reports[0].legs.len(), 2);
        let rec = reports[0].recovery.as_ref().unwrap();
        assert!(rec.matched);
        assert_eq!(rec.checked, 2, "trailing read block is the last two reads");
        assert!(rec.replayed > 0, "the trace's write must hit the WAL");

        // The live TCP path replays the same corpus identically.
        let live = RunOptions {
            live: true,
            no_recovery: true,
            ..opts
        };
        let reports = run(&mut sink, &live).unwrap();
        assert!(all_matched(&reports), "{reports:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn run_reports_divergence_without_erroring() {
        let root = seed_corpus("diverge");
        let mut sink = Vec::new();
        record(&mut sink, &root, None, Budget::LARGE).unwrap();
        // Corrupt the recording: the replay must notice (modulo epochs,
        // so epoch edits would NOT count) and flag, not abort.
        let path = root.join("tiny_tc").join("expected.ndjson");
        let recorded = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, recorded.replace("tc(1, 2)", "tc(9, 9)")).unwrap();
        let opts = RunOptions {
            corpus: root.clone(),
            concurrency: vec![1],
            no_recovery: true,
            ..RunOptions::default()
        };
        let reports = run(&mut sink, &opts).unwrap();
        assert!(!all_matched(&reports));
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("DIVERGED"), "{text}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn filter_selects_and_list_prints() {
        let root = seed_corpus("filtering");
        let mut sink = Vec::new();
        let none = select(&root, Some(&crate::filter::parse("tag = slow").unwrap())).unwrap();
        assert!(none.is_empty());
        let all = select(&root, Some(&crate::filter::parse("tag != slow").unwrap())).unwrap();
        assert_eq!(all.len(), 1);
        list(
            &mut sink,
            &root,
            Some(&crate::filter::parse("semantics = stratified").unwrap()),
        )
        .unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("tiny_tc"), "{text}");
        assert!(text.contains("1 scenario(s)"), "{text}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
