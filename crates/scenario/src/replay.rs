//! The record/replay harness: drive a recorded line-protocol trace
//! against a serving session — in-process or over live TCP — at
//! adjustable concurrency and scale-factor, and diff the replies
//! against the recording **modulo epoch tags**.
//!
//! # Determinism contract
//!
//! A trace is replayed as an alternating sequence of *write runs* and
//! *read blocks*:
//!
//! * Mutating requests replay strictly in trace order, one at a time,
//!   on a single writer connection — mirroring the serving layer's
//!   single-writer commit discipline (WAL order = commit order = epoch
//!   order).
//! * Maximal runs of consecutive read-only requests fan out across the
//!   configured number of worker connections concurrently. No write is
//!   in flight during a read block, so every read answers from the same
//!   published snapshot; replies are reassembled in trace order.
//!
//! Under this discipline the reply stream is **byte-deterministic
//! modulo epoch tags** at every concurrency: the only permitted
//! divergence is the `"epoch":N` field, which moves when a read races a
//! dirty-view rebuild (the rebuild republishes a snapshot) or when a
//! recording predates a restart. [`strip_epoch`] removes exactly that
//! field; [`diff_modulo_epoch`] compares reply streams under it.
//!
//! The **scale-factor** multiplies the read load: each read request is
//! issued `scale` times (all copies must agree modulo epoch — asserted
//! — and the first reply stands for the request in the diff). Writes
//! are never multiplied, so scaling changes throughput, not state.

use crate::corpus::Scenario;
use algrec_serve::protocol::handle_line;
use algrec_serve::shared::SharedSession;
use algrec_serve::{json, Session};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One worker's share of a read block: `(trace index, reply, per-request
/// latencies in microseconds)` for every request it claimed.
type BlockSlice = Vec<(usize, String, Vec<u64>)>;

/// Operations the protocol answers from a read snapshot. Mirrors the
/// protocol's read-path dispatch (minus `shutdown`, which a trace may
/// not contain — the runner owns server lifecycle).
pub fn is_read_request(line: &str) -> bool {
    let op = json::parse(line)
        .ok()
        .and_then(|req| req.get("op").and_then(json::Json::as_str).map(String::from))
        .unwrap_or_default();
    matches!(
        op.as_str(),
        "ping" | "query" | "explain" | "stats" | "views" | "db"
    )
}

/// Remove the `"epoch":N,` field from a reply line. Epoch tags are the
/// one scheduling artifact the determinism contract permits to differ
/// between a recording and a replay.
pub fn strip_epoch(line: &str) -> String {
    let Some(start) = line.find("\"epoch\":") else {
        return line.to_string();
    };
    let rest = &line[start + "\"epoch\":".len()..];
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    let mut end = start + "\"epoch\":".len() + digits;
    // Keys serialize sorted, so `epoch` is never last in a reply object;
    // swallow the separating comma either side to keep valid JSON.
    if line[end..].starts_with(',') {
        end += 1;
    } else if line[..start].ends_with(',') {
        return format!("{}{}", &line[..start - 1], &line[end..]);
    }
    format!("{}{}", &line[..start], &line[end..])
}

/// One divergence between a recording and a replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based trace index of the diverging request.
    pub index: usize,
    /// The request line.
    pub request: String,
    /// The recorded reply (epoch-stripped).
    pub expected: String,
    /// The replayed reply (epoch-stripped).
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace line {}: replies diverge (modulo epoch)\n  request:  {}\n  expected: {}\n  actual:   {}",
            self.index + 1,
            self.request,
            self.expected,
            self.actual
        )
    }
}

/// Compare a replayed reply stream against a recording, modulo epoch
/// tags. Returns the first divergence, if any.
pub fn diff_modulo_epoch(
    trace: &[String],
    expected: &[String],
    actual: &[String],
) -> Option<Divergence> {
    for (i, (e, a)) in expected.iter().zip(actual.iter()).enumerate() {
        let (e, a) = (strip_epoch(e), strip_epoch(a));
        if e != a {
            return Some(Divergence {
                index: i,
                request: trace.get(i).cloned().unwrap_or_default(),
                expected: e,
                actual: a,
            });
        }
    }
    None
}

/// One protocol connection: send a request line, get the reply line.
pub trait Transport: Send {
    /// Round-trip one request.
    fn roundtrip(&mut self, line: &str) -> Result<String, String>;
}

/// Opens [`Transport`]s — one per replay worker.
pub trait Connector: Sync {
    /// Open one connection.
    fn connect(&self) -> Result<Box<dyn Transport>, String>;
}

/// In-process transport: requests dispatch straight into
/// [`handle_line`] against a [`SharedSession`] — the same code path the
/// TCP server runs per connection, minus the socket.
pub struct InProcess {
    shared: Arc<SharedSession>,
}

impl Transport for InProcess {
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        Ok(handle_line(&self.shared, line).line().to_string())
    }
}

/// [`Connector`] for [`InProcess`] transports over one shared session.
pub struct InProcessConnector {
    shared: Arc<SharedSession>,
}

impl InProcessConnector {
    /// Wrap an already-set-up session.
    pub fn new(session: Session) -> Self {
        InProcessConnector {
            shared: Arc::new(SharedSession::new(session)),
        }
    }

    /// The shared session, e.g. to inspect state after a replay.
    pub fn shared(&self) -> &Arc<SharedSession> {
        &self.shared
    }
}

impl Connector for InProcessConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, String> {
        Ok(Box::new(InProcess {
            shared: Arc::clone(&self.shared),
        }))
    }
}

/// TCP transport: one connection to a live `algrec serve`.
pub struct Tcp {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Transport for Tcp {
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("tcp write: {e}"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("tcp read: {e}"))?;
        if n == 0 {
            return Err("tcp read: server closed the connection".into());
        }
        Ok(reply.trim_end_matches(['\n', '\r']).to_string())
    }
}

/// [`Connector`] opening TCP connections to a live server address.
pub struct TcpConnector {
    addr: SocketAddr,
}

impl TcpConnector {
    /// Connect workers to `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        TcpConnector { addr }
    }
}

impl Connector for TcpConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, String> {
        let stream = TcpStream::connect(self.addr).map_err(|e| format!("{}: {e}", self.addr))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Box::new(Tcp {
            reader,
            writer: BufWriter::new(stream),
        }))
    }
}

/// Replay knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOptions {
    /// Worker connections for read blocks (writes always serialize).
    pub concurrency: usize,
    /// Times each read request is issued (throughput scale-factor).
    pub scale: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            concurrency: 1,
            scale: 1,
        }
    }
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// One reply per trace line, in trace order (first copy under
    /// scaling).
    pub replies: Vec<String>,
    /// Wall time for the whole trace.
    pub elapsed: Duration,
    /// Latency of every executed request (including scaled read
    /// copies), in microseconds, unordered.
    pub latencies_us: Vec<u64>,
    /// Read requests in the trace (distinct lines, before scaling).
    pub reads: usize,
    /// Mutating requests in the trace.
    pub writes: usize,
}

impl ReplayOutcome {
    /// Total executed requests (writes + reads × scale).
    pub fn requests(&self) -> usize {
        self.latencies_us.len()
    }

    /// Requests per second over the whole replay.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Load the scenario's EDB and register its views on a fresh session —
/// the setup phase that precedes every trace replay and recording.
pub fn setup_session(session: &mut Session, scenario: &Scenario) -> Result<(), String> {
    if !scenario.edb.is_empty() {
        session
            .load(&scenario.edb)
            .map_err(|e| format!("{}: loading edb: {e}", scenario.name))?;
    }
    for view in &scenario.views {
        let result = if view.kind == "algebra" {
            session.register_algebra(&view.name, &view.program)
        } else {
            let semantics = algrec_serve::parse_semantics(&view.semantics)?;
            session.register_datalog(&view.name, &view.program, semantics)
        };
        result.map_err(|e| format!("{}: registering view `{}`: {e}", scenario.name, view.name))?;
    }
    Ok(())
}

fn micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Replay `scenario`'s trace through `connect` under the block
/// discipline documented at module level. The session behind the
/// connector must already be set up ([`setup_session`]).
pub fn replay(
    scenario: &Scenario,
    connect: &dyn Connector,
    opts: ReplayOptions,
) -> Result<ReplayOutcome, String> {
    assert!(opts.concurrency >= 1, "concurrency must be at least 1");
    assert!(opts.scale >= 1, "scale must be at least 1");
    let reads: Vec<bool> = scenario
        .trace
        .iter()
        .map(|line| is_read_request(line))
        .collect();
    let mut workers: Vec<Box<dyn Transport>> = (0..opts.concurrency)
        .map(|_| connect.connect())
        .collect::<Result<_, _>>()?;

    let mut replies: Vec<Option<String>> = vec![None; scenario.trace.len()];
    let mut latencies_us: Vec<u64> = Vec::new();
    let start = Instant::now();
    let mut i = 0;
    while i < scenario.trace.len() {
        if !reads[i] {
            let t0 = Instant::now();
            let reply = workers[0].roundtrip(&scenario.trace[i])?;
            latencies_us.push(micros(t0.elapsed()));
            replies[i] = Some(reply);
            i += 1;
            continue;
        }
        // Maximal read block [i, j): fan out across all workers.
        let mut j = i + 1;
        while j < scenario.trace.len() && reads[j] {
            j += 1;
        }
        let next = AtomicUsize::new(i);
        let results: Vec<Result<BlockSlice, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .map(|worker| {
                    let next = &next;
                    let trace = &scenario.trace;
                    scope.spawn(move || -> Result<BlockSlice, String> {
                        let mut out = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= j {
                                return Ok(out);
                            }
                            let mut first: Option<String> = None;
                            let mut lats = Vec::with_capacity(opts.scale);
                            for _ in 0..opts.scale {
                                let t0 = Instant::now();
                                let reply = worker.roundtrip(&trace[k])?;
                                lats.push(micros(t0.elapsed()));
                                match &first {
                                    None => first = Some(reply),
                                    Some(f) => {
                                        if strip_epoch(f) != strip_epoch(&reply) {
                                            return Err(format!(
                                                "scaled read replies diverge at trace \
                                                     line {}:\n  first: {f}\n  later: {reply}",
                                                k + 1
                                            ));
                                        }
                                    }
                                }
                            }
                            out.push((k, first.unwrap(), lats));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker panicked"))
                .collect()
        });
        for result in results {
            for (k, reply, lats) in result? {
                replies[k] = Some(reply);
                latencies_us.extend(lats);
            }
        }
        i = j;
    }
    let elapsed = start.elapsed();

    let writes = reads.iter().filter(|r| !**r).count();
    Ok(ReplayOutcome {
        replies: replies
            .into_iter()
            .map(|r| r.expect("every trace line replied"))
            .collect(),
        elapsed,
        latencies_us,
        reads: scenario.trace.len() - writes,
        writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Scenario, ViewSpec};
    use algrec_value::Budget;
    use std::path::PathBuf;

    fn scenario(trace: &[&str]) -> Scenario {
        Scenario {
            name: "t".into(),
            dir: PathBuf::from("."),
            title: "t".into(),
            description: String::new(),
            tags: vec![],
            views: vec![ViewSpec {
                name: "paths".into(),
                program: "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).".into(),
                semantics: "stratified".into(),
                kind: "datalog".into(),
            }],
            edb: "e(1, 2). e(2, 3).".into(),
            trace: trace.iter().map(|s| s.to_string()).collect(),
            expected: None,
        }
    }

    const TRACE: [&str; 5] = [
        r#"{"id": 1, "op": "query", "view": "paths", "pred": "tc"}"#,
        r#"{"id": 2, "op": "assert", "fact": "e(3, 4)"}"#,
        r#"{"id": 3, "op": "query", "view": "paths", "pred": "tc"}"#,
        r#"{"id": 4, "op": "db"}"#,
        r#"{"id": 5, "op": "stats", "view": "paths"}"#,
    ];

    fn run(concurrency: usize, scale: usize) -> ReplayOutcome {
        let s = scenario(&TRACE);
        let mut session = Session::new(Budget::LARGE);
        setup_session(&mut session, &s).unwrap();
        let connector = InProcessConnector::new(session);
        replay(&s, &connector, ReplayOptions { concurrency, scale }).unwrap()
    }

    #[test]
    fn strip_epoch_removes_exactly_the_epoch_field() {
        assert_eq!(
            strip_epoch(r#"{"epoch":12,"id":1,"ok":true}"#),
            r#"{"id":1,"ok":true}"#
        );
        assert_eq!(
            strip_epoch(r#"{"certain":["tc(1, 2)."],"epoch":3,"id":1}"#),
            r#"{"certain":["tc(1, 2)."],"id":1}"#
        );
        assert_eq!(
            strip_epoch(r#"{"id":1,"ok":true}"#),
            r#"{"id":1,"ok":true}"#
        );
    }

    #[test]
    fn replay_is_deterministic_modulo_epoch_across_concurrency_and_scale() {
        let base = run(1, 1);
        assert_eq!(base.reads, 4);
        assert_eq!(base.writes, 1);
        assert_eq!(base.requests(), 5);
        assert!(base.replies[2].contains("tc(1, 4)."), "{}", base.replies[2]);
        for (c, scale) in [(2, 1), (4, 1), (4, 3)] {
            let out = run(c, scale);
            let trace: Vec<String> = TRACE.iter().map(|s| s.to_string()).collect();
            assert_eq!(
                diff_modulo_epoch(&trace, &base.replies, &out.replies),
                None,
                "concurrency {c} scale {scale}"
            );
            assert_eq!(out.requests(), base.writes + base.reads * scale);
        }
    }

    #[test]
    fn diff_reports_the_first_divergence() {
        let trace = vec!["{\"id\":1}".to_string()];
        let expected = vec![r#"{"epoch":1,"id":1,"ok":true}"#.to_string()];
        let actual = vec![r#"{"epoch":2,"id":1,"ok":false}"#.to_string()];
        let d = diff_modulo_epoch(&trace, &expected, &actual).unwrap();
        assert_eq!(d.index, 0);
        assert_eq!(d.expected, r#"{"id":1,"ok":true}"#);
        assert_eq!(d.actual, r#"{"id":1,"ok":false}"#);
        // Epoch-only differences are not divergences.
        assert_eq!(
            diff_modulo_epoch(
                &trace,
                &[r#"{"epoch":1,"id":1,"ok":true}"#.to_string()],
                &[r#"{"epoch":9,"id":1,"ok":true}"#.to_string()]
            ),
            None
        );
    }
}
