//! The machine-readable scenario report (`BENCH_7.json`).
//!
//! `algrec scenario run --report PATH` writes one JSON document
//! summarizing every replayed scenario: request mix, a row per
//! concurrency leg (throughput, latency percentiles, and whether the
//! replies matched the recording modulo epoch tags), and the durable
//! recovery leg (recovery wall time, WAL records replayed, and whether
//! the replayed tail matched). The schema — key names, nesting, value
//! kinds — is pinned by `tests/report_schema.rs` exactly like the
//! `tables` reports (`BENCH_5`/`BENCH_6`), so downstream consumers
//! hear about shape changes in CI rather than in a dashboard.

use algrec_serve::json::Json;

/// One concurrency leg of one scenario.
#[derive(Debug, Clone)]
pub struct LegReport {
    /// Worker connections used for read blocks.
    pub concurrency: usize,
    /// Read scale-factor.
    pub scale: usize,
    /// Requests executed (writes + reads × scale).
    pub requests: usize,
    /// Wall time for the whole trace.
    pub elapsed_s: f64,
    /// Requests per second over the replay.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub latency_p95_us: u64,
    /// Worst request latency, microseconds.
    pub latency_max_us: u64,
    /// Did the replies match the recording (modulo epoch tags)?
    pub matched: bool,
}

/// The durable-store leg: replay against `--data-dir`, reopen, verify.
#[derive(Debug, Clone)]
pub struct RecoveryLeg {
    /// Wall time of the durable replay itself.
    pub elapsed_s: f64,
    /// Wall time for reopening the store (snapshot load + WAL replay).
    pub recovery_s: f64,
    /// WAL records replayed on reopen.
    pub replayed: usize,
    /// Trailing read requests re-issued against the recovered session.
    pub checked: usize,
    /// Did the recovered replies match the live ones (modulo epochs)?
    pub matched: bool,
}

/// Everything measured for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario (directory) name.
    pub name: String,
    /// Human title.
    pub title: String,
    /// Filterable tags.
    pub tags: Vec<String>,
    /// Canonical semantics of the scenario's views.
    pub semantics: Vec<String>,
    /// Trace length (distinct requests).
    pub requests: usize,
    /// Read requests in the trace.
    pub reads: usize,
    /// Mutating requests in the trace.
    pub writes: usize,
    /// One row per replayed concurrency.
    pub legs: Vec<LegReport>,
    /// The durable recovery leg, when run.
    pub recovery: Option<RecoveryLeg>,
}

/// `p`-th percentile (nearest-rank on the sorted slice); 0 when empty.
pub fn percentile_us(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * p / 100;
    sorted[idx]
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

fn leg_json(leg: &LegReport) -> Json {
    Json::obj([
        ("concurrency", Json::Int(leg.concurrency as i64)),
        ("scale", Json::Int(leg.scale as i64)),
        ("requests", Json::Int(leg.requests as i64)),
        ("elapsed_s", Json::Float(leg.elapsed_s)),
        ("throughput_rps", Json::Float(leg.throughput_rps)),
        ("latency_p50_us", Json::Int(leg.latency_p50_us as i64)),
        ("latency_p95_us", Json::Int(leg.latency_p95_us as i64)),
        ("latency_max_us", Json::Int(leg.latency_max_us as i64)),
        ("matched", Json::Bool(leg.matched)),
    ])
}

fn recovery_json(r: &RecoveryLeg) -> Json {
    Json::obj([
        ("elapsed_s", Json::Float(r.elapsed_s)),
        ("recovery_s", Json::Float(r.recovery_s)),
        ("replayed", Json::Int(r.replayed as i64)),
        ("checked", Json::Int(r.checked as i64)),
        ("matched", Json::Bool(r.matched)),
    ])
}

fn scenario_json(s: &ScenarioReport) -> Json {
    Json::obj([
        ("name", Json::str(s.name.clone())),
        ("title", Json::str(s.title.clone())),
        ("tags", str_arr(&s.tags)),
        ("semantics", str_arr(&s.semantics)),
        ("requests", Json::Int(s.requests as i64)),
        ("reads", Json::Int(s.reads as i64)),
        ("writes", Json::Int(s.writes as i64)),
        ("legs", Json::Arr(s.legs.iter().map(leg_json).collect())),
        (
            "recovery",
            s.recovery.as_ref().map_or(Json::Null, recovery_json),
        ),
    ])
}

/// Render the whole report document.
pub fn report_json(corpus: &str, scenarios: &[ScenarioReport]) -> String {
    Json::obj([
        ("report", Json::str("scenario")),
        ("corpus", Json::str(corpus)),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(scenario_json).collect()),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile_us(&sorted, 50), 5);
        assert_eq!(percentile_us(&sorted, 95), 9);
        assert_eq!(percentile_us(&sorted, 100), 10);
        assert_eq!(percentile_us(&[], 50), 0);
        assert_eq!(percentile_us(&[7], 95), 7);
    }
}
