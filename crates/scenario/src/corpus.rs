//! The on-disk scenario corpus.
//!
//! A corpus is a directory of scenarios; each scenario is a directory:
//!
//! ```text
//! scenarios/
//!   acl_authz/
//!     meta.json        # title, description, tags, views, edb file
//!     program.dl       # program text referenced by meta's views
//!     edb.dl           # extensional database (Datalog fact list)
//!     trace.ndjson     # recorded line-protocol requests (the workload)
//!     expected.ndjson  # recorded replies, one per trace line
//! ```
//!
//! `meta.json` (parsed with the serving layer's hand-rolled JSON):
//!
//! ```text
//! {"title": "...", "description": "...", "tags": ["authz", "fast"],
//!  "edb": "edb.dl",
//!  "views": [{"name": "allow", "program": "program.dl",
//!             "semantics": "valid", "kind": "datalog"}]}
//! ```
//!
//! Setup (loading the EDB, registering the views) is performed by the
//! replay harness from this metadata; the trace then contains only the
//! workload — asserts, retracts, and queries. `expected.ndjson` is
//! written by `algrec scenario record` and diffed (modulo epoch tags,
//! see [`crate::replay`]) by `algrec scenario run`.

use algrec_serve::json::{self, Json};
use algrec_serve::parse_semantics;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a corpus or scenario could not be loaded.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure reading a corpus file.
    Io(PathBuf, std::io::Error),
    /// A corpus file failed to parse or validate.
    Invalid(PathBuf, String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            CorpusError::Invalid(p, msg) => write!(f, "{}: {msg}", p.display()),
        }
    }
}

impl std::error::Error for CorpusError {}

/// One materialized view a scenario registers before its trace runs.
#[derive(Debug, Clone)]
pub struct ViewSpec {
    /// View name (`register`'s `view` operand).
    pub name: String,
    /// Program text, read from the file `meta.json` referenced.
    pub program: String,
    /// Canonical semantics name (validated against [`parse_semantics`];
    /// ignored for algebra views).
    pub semantics: String,
    /// `datalog` or `algebra`.
    pub kind: String,
}

/// One scenario, fully loaded into memory.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Directory name — the scenario's identity for filters and reports.
    pub name: String,
    /// The scenario's directory.
    pub dir: PathBuf,
    /// Human title from `meta.json`.
    pub title: String,
    /// Longer description from `meta.json`.
    pub description: String,
    /// Filterable tags.
    pub tags: Vec<String>,
    /// Views registered at setup.
    pub views: Vec<ViewSpec>,
    /// Extensional database loaded at setup (Datalog fact list).
    pub edb: String,
    /// The workload: recorded request lines, in order.
    pub trace: Vec<String>,
    /// Recorded replies (one per trace line), if the scenario has been
    /// recorded. `None` until `algrec scenario record` has run.
    pub expected: Option<Vec<String>>,
}

impl Scenario {
    /// The semantics facet the filter DSL's `semantics` key tests:
    /// every view's canonical semantics name (algebra views contribute
    /// `algebra`).
    pub fn semantics_facet(&self) -> Vec<String> {
        self.views
            .iter()
            .map(|v| {
                if v.kind == "algebra" {
                    "algebra".to_string()
                } else {
                    v.semantics.clone()
                }
            })
            .collect()
    }

    /// Path of the recorded-replies file.
    pub fn expected_path(&self) -> PathBuf {
        self.dir.join("expected.ndjson")
    }
}

fn read(path: &Path) -> Result<String, CorpusError> {
    std::fs::read_to_string(path).map_err(|e| CorpusError::Io(path.to_path_buf(), e))
}

fn invalid(path: &Path, msg: impl Into<String>) -> CorpusError {
    CorpusError::Invalid(path.to_path_buf(), msg.into())
}

fn str_field(meta: &Json, key: &str, path: &Path) -> Result<String, CorpusError> {
    meta.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(path, format!("meta.json: missing string field `{key}`")))
}

fn str_list(meta: &Json, key: &str, path: &Path) -> Result<Vec<String>, CorpusError> {
    match meta.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| invalid(path, format!("meta.json: `{key}` must be strings")))
            })
            .collect(),
        Some(_) => Err(invalid(
            path,
            format!("meta.json: `{key}` must be an array"),
        )),
    }
}

/// Non-empty lines of an NDJSON file, each validated as one JSON object.
fn ndjson_lines(path: &Path) -> Result<Vec<String>, CorpusError> {
    let mut lines = Vec::new();
    for (i, line) in read(path)?.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        json::parse(line).map_err(|e| invalid(path, format!("line {}: {e}", i + 1)))?;
        lines.push(line.to_string());
    }
    Ok(lines)
}

/// Load one scenario directory.
pub fn load_scenario(dir: &Path) -> Result<Scenario, CorpusError> {
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| invalid(dir, "scenario directory has no utf-8 name"))?
        .to_string();
    let meta_path = dir.join("meta.json");
    let meta = json::parse(&read(&meta_path)?)
        .map_err(|e| invalid(&meta_path, format!("meta.json: {e}")))?;

    let mut views = Vec::new();
    let Some(Json::Arr(view_items)) = meta.get("views") else {
        return Err(invalid(&meta_path, "meta.json: missing `views` array"));
    };
    if view_items.is_empty() {
        return Err(invalid(&meta_path, "meta.json: `views` must be non-empty"));
    }
    for item in view_items {
        let view_name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid(&meta_path, "meta.json: view missing `name`"))?;
        let program_file = item
            .get("program")
            .and_then(Json::as_str)
            .unwrap_or("program.dl");
        let kind = item
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or("datalog")
            .to_string();
        let semantics = item
            .get("semantics")
            .and_then(Json::as_str)
            .unwrap_or("valid")
            .to_string();
        if kind == "datalog" {
            parse_semantics(&semantics).map_err(|e| invalid(&meta_path, e))?;
        } else if kind != "algebra" {
            return Err(invalid(
                &meta_path,
                format!("meta.json: unknown view kind `{kind}`"),
            ));
        }
        views.push(ViewSpec {
            name: view_name.to_string(),
            program: read(&dir.join(program_file))?,
            semantics,
            kind,
        });
    }

    let edb = match meta.get("edb").and_then(Json::as_str) {
        Some(file) => read(&dir.join(file))?,
        None => String::new(),
    };
    let trace = ndjson_lines(&dir.join("trace.ndjson"))?;
    if trace.is_empty() {
        return Err(invalid(dir, "trace.ndjson has no requests"));
    }
    let expected_path = dir.join("expected.ndjson");
    let expected = if expected_path.exists() {
        let lines = ndjson_lines(&expected_path)?;
        if lines.len() != trace.len() {
            return Err(invalid(
                &expected_path,
                format!(
                    "{} recorded replies for {} trace requests — re-record the scenario",
                    lines.len(),
                    trace.len()
                ),
            ));
        }
        Some(lines)
    } else {
        None
    };

    Ok(Scenario {
        name,
        dir: dir.to_path_buf(),
        title: str_field(&meta, "title", &meta_path)?,
        description: str_field(&meta, "description", &meta_path).unwrap_or_default(),
        tags: str_list(&meta, "tags", &meta_path)?,
        views,
        edb,
        trace,
        expected,
    })
}

/// Load every scenario in a corpus directory, sorted by name so every
/// listing, run, and report is deterministic.
pub fn load_corpus(dir: &Path) -> Result<Vec<Scenario>, CorpusError> {
    let mut scenarios = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            scenarios.push(load_scenario(&path)?);
        }
    }
    if scenarios.is_empty() {
        return Err(invalid(dir, "corpus directory contains no scenarios"));
    }
    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &Path, content: &str) {
        std::fs::write(path, content).unwrap();
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("algrec-scenario-corpus-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_minimal(dir: &Path) {
        write(
            &dir.join("meta.json"),
            r#"{"title": "t", "description": "d", "tags": ["fast"],
                "edb": "edb.dl",
                "views": [{"name": "v", "semantics": "stratified"}]}"#,
        );
        write(&dir.join("program.dl"), "p(X) :- e(X, Y).\n");
        write(&dir.join("edb.dl"), "e(1, 2).\n");
        write(
            &dir.join("trace.ndjson"),
            "{\"id\": 1, \"op\": \"query\", \"view\": \"v\", \"pred\": \"p\"}\n",
        );
    }

    #[test]
    fn loads_a_minimal_scenario() {
        let root = scratch("minimal");
        let dir = root.join("one");
        std::fs::create_dir(&dir).unwrap();
        seed_minimal(&dir);
        let s = load_scenario(&dir).unwrap();
        assert_eq!(s.name, "one");
        assert_eq!(s.views.len(), 1);
        assert_eq!(s.views[0].program, "p(X) :- e(X, Y).\n");
        assert_eq!(s.trace.len(), 1);
        assert!(s.expected.is_none());
        assert_eq!(s.semantics_facet(), vec!["stratified".to_string()]);
        let corpus = load_corpus(&root).unwrap();
        assert_eq!(corpus.len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_mismatched_recording() {
        let root = scratch("mismatch");
        let dir = root.join("one");
        std::fs::create_dir(&dir).unwrap();
        seed_minimal(&dir);
        write(
            &dir.join("expected.ndjson"),
            "{\"id\": 1, \"ok\": true}\n{\"id\": 2, \"ok\": true}\n",
        );
        let err = load_scenario(&dir).unwrap_err().to_string();
        assert!(err.contains("re-record"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_bad_semantics_and_bad_trace_json() {
        let root = scratch("invalid");
        let dir = root.join("one");
        std::fs::create_dir(&dir).unwrap();
        seed_minimal(&dir);
        write(
            &dir.join("meta.json"),
            r#"{"title": "t", "views": [{"name": "v", "semantics": "zen"}]}"#,
        );
        let err = load_scenario(&dir).unwrap_err().to_string();
        assert!(err.contains("unknown semantics"), "{err}");
        seed_minimal(&dir);
        write(&dir.join("trace.ndjson"), "not json\n");
        let err = load_scenario(&dir).unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
