//! Property-based tests for the specification layer: the decision
//! procedure's structural invariants over random constants-only
//! specifications, and parser round-trips.

use algrec_adt::equation::{Condition, ConditionalEquation, Specification};
use algrec_adt::initial::{initial_valid_model, is_model};
use algrec_adt::parser::parse_spec;
use algrec_adt::signature::{OpDecl, Signature};
use algrec_adt::term::Term;
use algrec_adt::valid_interp::ValidInterpretation;
use algrec_value::{Budget, Truth};
use proptest::prelude::*;

const CONSTS: [&str; 4] = ["a", "b", "c", "d"];

fn abc_sig() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s");
    for c in CONSTS {
        sig.add_op(OpDecl::constant(c, "s")).unwrap();
    }
    sig
}

fn arb_const() -> impl Strategy<Value = Term> {
    prop::sample::select(&CONSTS[..]).prop_map(Term::cons)
}

fn arb_equation() -> impl Strategy<Value = ConditionalEquation> {
    let cond = prop_oneof![
        (arb_const(), arb_const()).prop_map(|(l, r)| Condition::Eq(l, r)),
        (arb_const(), arb_const()).prop_map(|(l, r)| Condition::Neq(l, r)),
    ];
    (prop::collection::vec(cond, 0..2), arb_const(), arb_const())
        .prop_map(|(conds, l, r)| ConditionalEquation::when(conds, l, r))
}

fn arb_spec() -> impl Strategy<Value = Specification> {
    prop::collection::vec(arb_equation(), 0..4)
        .prop_map(|eqs| Specification::new(abc_sig(), eqs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structural invariants of the Prop 2.3(2) decision procedure:
    /// every reported valid model is a model; the initial one (when it
    /// exists) refines all valid models and is itself among them.
    #[test]
    fn decision_procedure_invariants(spec in arb_spec()) {
        let analysis = initial_valid_model(&spec, Budget::LARGE).unwrap();
        for p in &analysis.valid_models {
            prop_assert!(is_model(&spec, p), "{spec}\nnot a model: {p}");
        }
        if let Some(initial) = &analysis.initial {
            prop_assert!(analysis.valid_models.contains(initial));
            for p in &analysis.valid_models {
                prop_assert!(initial.refines(p), "{spec}\n{initial} !⊑ {p}");
            }
        }
    }

    /// The valid interpretation is sound for validity: certainly-true
    /// equalities hold in every valid model, and certainly-false ones
    /// hold in none... the latter in the *initial* model when it exists.
    #[test]
    fn valid_interpretation_sound(spec in arb_spec()) {
        let vi = ValidInterpretation::compute(&spec, 1, Budget::LARGE).unwrap();
        let analysis = initial_valid_model(&spec, Budget::LARGE).unwrap();
        for (x, a) in CONSTS.iter().enumerate() {
            for b in CONSTS.iter().skip(x + 1) {
                let t = vi.eq_truth(&Term::cons(*a), &Term::cons(*b));
                if t == Truth::True {
                    for p in &analysis.valid_models {
                        prop_assert!(p.same(a, b), "{spec}\n{a}={b} certain but absent in {p}");
                    }
                }
                if t == Truth::False {
                    if let Some(initial) = &analysis.initial {
                        prop_assert!(
                            !initial.same(a, b),
                            "{spec}\n{a}≠{b} certain but identified in the initial model"
                        );
                    }
                }
            }
        }
    }

    /// Specifications without negation always have an initial valid model
    /// (the classical initial-algebra theorem, Section 2.1) — and the
    /// valid interpretation is total.
    #[test]
    fn negation_free_specs_are_well_defined(
        eqs in prop::collection::vec(
            (arb_const(), arb_const())
                .prop_map(|(l, r)| ConditionalEquation::plain(l, r)),
            0..4,
        )
    ) {
        let spec = Specification::new(abc_sig(), eqs).unwrap();
        let vi = ValidInterpretation::compute(&spec, 1, Budget::LARGE).unwrap();
        prop_assert!(vi.is_total());
        let analysis = initial_valid_model(&spec, Budget::LARGE).unwrap();
        prop_assert!(analysis.initial.is_some(), "{spec}");
    }

    /// Display → parse round-trips random constants-only specifications.
    #[test]
    fn spec_parser_round_trips(spec in arb_spec()) {
        // Render in the parser's concrete syntax.
        let mut src = String::from("sorts s;\n");
        for c in CONSTS {
            src.push_str(&format!("op {c} : -> s;\n"));
        }
        for eq in &spec.equations {
            if eq.conditions.is_empty() {
                src.push_str(&format!("eq {} = {};\n", eq.lhs, eq.rhs));
            } else {
                let conds: Vec<String> = eq
                    .conditions
                    .iter()
                    .map(|c| c.to_string())
                    .collect();
                src.push_str(&format!(
                    "ceq {} = {} if {};\n",
                    eq.lhs,
                    eq.rhs,
                    conds.join(" /\\ ")
                ));
            }
        }
        let reparsed = parse_spec(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        prop_assert_eq!(spec, reparsed);
    }
}
