//! The worked specifications of the paper.
//!
//! * [`bool_spec`] / [`nat_spec`] — the imported base types of Section 2.1.
//! * [`set_spec`] — the SET(t) specification of Section 2.1 verbatim: the
//!   INS commutativity/absorption equations and the MEM equations, plus
//!   the Section 2.2 completion disequation
//!   `MEM(x, y) ≠ T → MEM(x, y) = F` that makes membership total.
//! * [`even_set_spec`] — the Example 1 even-number set in the declarative
//!   style (`Sᵉ = Sᵉ ∪ {2i}`), instantiated over a bounded window.

use crate::equation::{Condition, ConditionalEquation, Specification};
use crate::signature::{OpDecl, Signature};
use crate::term::Term;

/// Name of the booleans sort.
pub const BOOL: &str = "bool";
/// Name of the naturals sort.
pub const NAT: &str = "nat";

/// The BOOL specification: constants `tt`, `ff` (free — no equations, so
/// the initial algebra has exactly two elements).
pub fn bool_spec() -> Specification {
    let mut sig = Signature::new();
    sig.add_sort(BOOL);
    sig.add_op(OpDecl::constant("tt", BOOL)).unwrap();
    sig.add_op(OpDecl::constant("ff", BOOL)).unwrap();
    Specification::new(sig, []).unwrap()
}

/// The NAT specification: `zero` and `succ`, plus `eqnat : nat nat → bool`
/// defined by structural recursion with the completion disequation
/// (equality must be definable on an element type for MEM to exist —
/// footnote 1 of the paper).
pub fn nat_spec() -> Specification {
    let mut spec = bool_spec();
    let sig = &mut spec.signature;
    sig.add_sort(NAT);
    sig.add_op(OpDecl::constant("zero", NAT)).unwrap();
    sig.add_op(OpDecl::new("succ", [NAT], NAT)).unwrap();
    sig.add_op(OpDecl::new("eqnat", [NAT, NAT], BOOL)).unwrap();

    let x = Term::var("x", NAT);
    let y = Term::var("y", NAT);
    spec.equations = vec![
        // eqnat(x, x) = tt
        ConditionalEquation::plain(Term::op("eqnat", [x.clone(), x.clone()]), Term::cons("tt")),
        // eqnat(succ(x), succ(y)) = eqnat(x, y)
        ConditionalEquation::plain(
            Term::op(
                "eqnat",
                [Term::op("succ", [x.clone()]), Term::op("succ", [y.clone()])],
            ),
            Term::op("eqnat", [x.clone(), y.clone()]),
        ),
        // completion: eqnat(x, y) ≠ tt → eqnat(x, y) = ff
        ConditionalEquation::when(
            [Condition::Neq(
                Term::op("eqnat", [x.clone(), y.clone()]),
                Term::cons("tt"),
            )],
            Term::op("eqnat", [x.clone(), y.clone()]),
            Term::cons("ff"),
        ),
    ];
    spec
}

/// The SET(nat) specification of Section 2.1, with the Section 2.2
/// membership completion:
///
/// ```text
/// opns: EMPTY : → set    INS : nat set → set    MEM : nat set → bool
/// eqns: INS(d, INS(d, s))  = INS(d, s)
///       INS(d, INS(d', s)) = INS(d', INS(d, s))
///       MEM(d, EMPTY) = ff
///       MEM(d, INS(d, s))  = tt
///       eqnat(d, d') ≠ tt → MEM(d, INS(d', s)) = MEM(d, s)
///       MEM(d, s) ≠ tt → MEM(d, s) = ff        (completion)
/// ```
///
/// (The paper writes the last two MEM equations as a single
/// `IF EQ(d,d') THEN … ELSE …`; conditional equations express the same.)
pub fn set_spec() -> Specification {
    let mut spec = nat_spec();
    let sig = &mut spec.signature;
    sig.add_sort("set");
    sig.add_op(OpDecl::constant("empty", "set")).unwrap();
    sig.add_op(OpDecl::new("ins", [NAT, "set"], "set")).unwrap();
    sig.add_op(OpDecl::new("mem", [NAT, "set"], BOOL)).unwrap();

    let d = Term::var("d", NAT);
    let d2 = Term::var("d2", NAT);
    let s = Term::var("s", "set");
    let mut eqs = vec![
        // INS(d, INS(d, s)) = INS(d, s)
        ConditionalEquation::plain(
            Term::op("ins", [d.clone(), Term::op("ins", [d.clone(), s.clone()])]),
            Term::op("ins", [d.clone(), s.clone()]),
        ),
        // INS(d, INS(d', s)) = INS(d', INS(d, s))
        ConditionalEquation::plain(
            Term::op("ins", [d.clone(), Term::op("ins", [d2.clone(), s.clone()])]),
            Term::op("ins", [d2.clone(), Term::op("ins", [d.clone(), s.clone()])]),
        ),
        // MEM(d, EMPTY) = ff
        ConditionalEquation::plain(
            Term::op("mem", [d.clone(), Term::cons("empty")]),
            Term::cons("ff"),
        ),
        // MEM(d, INS(d, s)) = tt
        ConditionalEquation::plain(
            Term::op("mem", [d.clone(), Term::op("ins", [d.clone(), s.clone()])]),
            Term::cons("tt"),
        ),
        // eqnat(d, d') ≠ tt → MEM(d, INS(d', s)) = MEM(d, s)
        ConditionalEquation::when(
            [Condition::Neq(
                Term::op("eqnat", [d.clone(), d2.clone()]),
                Term::cons("tt"),
            )],
            Term::op("mem", [d.clone(), Term::op("ins", [d2.clone(), s.clone()])]),
            Term::op("mem", [d.clone(), s.clone()]),
        ),
        // completion: MEM(d, s) ≠ tt → MEM(d, s) = ff
        ConditionalEquation::when(
            [Condition::Neq(
                Term::op("mem", [d.clone(), s.clone()]),
                Term::cons("tt"),
            )],
            Term::op("mem", [d.clone(), s.clone()]),
            Term::cons("ff"),
        ),
    ];
    spec.equations.append(&mut eqs);
    spec
}

/// A numeral term `succ^k(zero)`.
pub fn numeral(k: usize) -> Term {
    let mut t = Term::cons("zero");
    for _ in 0..k {
        t = Term::op("succ", [t]);
    }
    t
}

/// Example 1's even-number set in the declarative style, over a bounded
/// window: a constant `se : → set` with the equation family
/// `Sᵉ = INS(2i, Sᵉ)` for `2i ≤ bound` (the paper's `Sᵉ_c = Sᵉ_c ∪ {2i}`,
/// instantiated — our term language has no arithmetic, so the instances
/// are generated here; the algebra= form of the same set lives in
/// `algrec-core` as `S = {0} ∪ MAP₊₂(S)`, Example 3).
pub fn even_set_spec(bound: usize) -> Specification {
    let mut spec = set_spec();
    spec.signature
        .add_op(OpDecl::constant("se", "set"))
        .unwrap();
    for k in (0..=bound).step_by(2) {
        spec.equations.push(ConditionalEquation::plain(
            Term::cons("se"),
            Term::op("ins", [numeral(k), Term::cons("se")]),
        ));
    }
    spec
}

/// A curated term window for [`even_set_spec`]: numerals `0..=bound+1`,
/// the sets reachable from `se` by one INS unfolding, and every `mem` /
/// `eqnat` observation over them. Condition-closed (see
/// [`crate::valid_interp::deductive_version_over`]) and far smaller than
/// a depth-bounded window of the same reach.
pub fn even_set_universe(bound: usize) -> std::collections::BTreeMap<String, Vec<Term>> {
    let mut universe: std::collections::BTreeMap<String, Vec<Term>> = Default::default();
    let nats: Vec<Term> = (0..=bound + 1).map(numeral).collect();
    let mut sets = vec![Term::cons("empty"), Term::cons("se")];
    for k in (0..=bound).step_by(2) {
        sets.push(Term::op("ins", [numeral(k), Term::cons("se")]));
    }
    let mut bools = vec![Term::cons("tt"), Term::cons("ff")];
    for a in &nats {
        for b in &nats {
            bools.push(Term::op("eqnat", [a.clone(), b.clone()]));
        }
        for s in &sets {
            bools.push(Term::op("mem", [a.clone(), s.clone()]));
        }
    }
    universe.insert(NAT.to_string(), nats);
    universe.insert("set".to_string(), sets);
    universe.insert(BOOL.to_string(), bools);
    universe
}

/// The Example 2 specification (no initial valid model):
/// `a ≠ b → a = c` and `a ≠ c → a = b` over three constants.
pub fn example2_spec() -> Specification {
    let mut sig = Signature::new();
    sig.add_sort("s");
    for c in ["a", "b", "c"] {
        sig.add_op(OpDecl::constant(c, "s")).unwrap();
    }
    Specification::new(
        sig,
        [
            ConditionalEquation::when(
                [Condition::Neq(Term::cons("a"), Term::cons("b"))],
                Term::cons("a"),
                Term::cons("c"),
            ),
            ConditionalEquation::when(
                [Condition::Neq(Term::cons("a"), Term::cons("c"))],
                Term::cons("a"),
                Term::cons("b"),
            ),
        ],
    )
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valid_interp::ValidInterpretation;
    use algrec_value::{Budget, Truth};

    #[test]
    fn bool_spec_is_free() {
        let vi = ValidInterpretation::compute(&bool_spec(), 1, Budget::SMALL).unwrap();
        assert!(vi.is_total());
        assert_eq!(
            vi.eq_truth(&Term::cons("tt"), &Term::cons("ff")),
            Truth::False
        );
    }

    #[test]
    fn eqnat_totally_defined() {
        let vi = ValidInterpretation::compute(&nat_spec(), 3, Budget::SMALL).unwrap();
        // eqnat(0,0) = tt
        assert_eq!(
            vi.eq_truth(
                &Term::op("eqnat", [numeral(0), numeral(0)]),
                &Term::cons("tt")
            ),
            Truth::True
        );
        // eqnat(0, 1) = ff via the completion disequation
        assert_eq!(
            vi.eq_truth(
                &Term::op("eqnat", [numeral(0), numeral(1)]),
                &Term::cons("ff")
            ),
            Truth::True
        );
        // eqnat(1, 1) = eqnat(0,0) = tt via the recursion
        assert_eq!(
            vi.eq_truth(
                &Term::op("eqnat", [numeral(1), numeral(1)]),
                &Term::cons("tt")
            ),
            Truth::True
        );
    }

    #[test]
    fn set_ins_equations_identify_permutations() {
        // ins(0, ins(1, empty)) = ins(1, ins(0, empty)) — the INS
        // commutativity equation. `succ(zero)` makes the nested term depth
        // 4, so use a curated window instead of a full depth-4 one.
        let s01 = Term::op(
            "ins",
            [
                numeral(0),
                Term::op("ins", [numeral(1), Term::cons("empty")]),
            ],
        );
        let s10 = Term::op(
            "ins",
            [
                numeral(1),
                Term::op("ins", [numeral(0), Term::cons("empty")]),
            ],
        );
        let mut universe: std::collections::BTreeMap<String, Vec<Term>> = Default::default();
        let nats = vec![numeral(0), numeral(1)];
        let sets = vec![
            Term::cons("empty"),
            Term::op("ins", [numeral(0), Term::cons("empty")]),
            Term::op("ins", [numeral(1), Term::cons("empty")]),
            s01.clone(),
            s10.clone(),
        ];
        let mut bools = vec![Term::cons("tt"), Term::cons("ff")];
        for a in &nats {
            for b in &nats {
                bools.push(Term::op("eqnat", [a.clone(), b.clone()]));
            }
            for s in &sets {
                bools.push(Term::op("mem", [a.clone(), s.clone()]));
            }
        }
        universe.insert(NAT.to_string(), nats);
        universe.insert("set".to_string(), sets);
        universe.insert(BOOL.to_string(), bools);
        let vi = ValidInterpretation::compute_over(&set_spec(), universe, Budget::SMALL).unwrap();
        assert_eq!(vi.eq_truth(&s01, &s10), Truth::True);
        // and membership agrees on the identified sets
        assert_eq!(
            vi.eq_truth(&Term::op("mem", [numeral(1), s01]), &Term::cons("tt")),
            Truth::True
        );
    }

    #[test]
    fn membership_is_total_on_window() {
        let vi = ValidInterpretation::compute(&set_spec(), 3, Budget::SMALL).unwrap();
        let single = Term::op("ins", [numeral(0), Term::cons("empty")]);
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(0), single.clone()]),
                &Term::cons("tt")
            ),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(&Term::op("mem", [numeral(1), single]), &Term::cons("ff")),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(1), Term::cons("empty")]),
                &Term::cons("ff")
            ),
            Truth::True
        );
    }

    #[test]
    fn even_set_memberships() {
        // Curated window, evens up to 2: mem(0, se) = tt; mem(2, se) = tt;
        // mem(1, se) = ff by the completion (no derivation of tt) —
        // exactly the Section 2.2 narrative for Sᵉ.
        let spec = even_set_spec(2);
        let vi =
            ValidInterpretation::compute_over(&spec, even_set_universe(2), Budget::LARGE).unwrap();
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(0), Term::cons("se")]),
                &Term::cons("tt")
            ),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(1), Term::cons("se")]),
                &Term::cons("ff")
            ),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(2), Term::cons("se")]),
                &Term::cons("tt")
            ),
            Truth::True
        );
        // odd beyond the declared evens: still certainly out
        assert_eq!(
            vi.eq_truth(
                &Term::op("mem", [numeral(3), Term::cons("se")]),
                &Term::cons("ff")
            ),
            Truth::True
        );
    }

    #[test]
    fn example2_matches_paper() {
        let vi = ValidInterpretation::compute(&example2_spec(), 1, Budget::SMALL).unwrap();
        assert!(!vi.is_total());
    }

    #[test]
    fn numerals() {
        assert_eq!(numeral(0), Term::cons("zero"));
        assert_eq!(numeral(2).depth(), 3);
        assert_eq!(numeral(2).to_string(), "succ(succ(zero))");
    }
}
