//! Generalized conditional equations and specifications.
//!
//! The paper extends classical conditional equations with *disequations*
//! in the conditions (Section 2.2): `MEM(x, y) ≠ T → MEM(x, y) = F` is the
//! completion axiom that makes membership total. A [`Condition`] is an
//! equation or a disequation between terms; a [`ConditionalEquation`] is
//! `cond₁ ∧ … ∧ condₙ → lhs = rhs`; a [`Specification`] is Definition 2.1's
//! triple `(S, OP, E)` (with `E` generalized).

use crate::signature::{Signature, SignatureError, Sort};
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A condition: an equation or disequation between terms of equal sort.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Condition {
    /// `lhs = rhs`.
    Eq(Term, Term),
    /// `lhs ≠ rhs` — the paper's negation.
    Neq(Term, Term),
}

impl Condition {
    /// The two terms.
    pub fn terms(&self) -> (&Term, &Term) {
        match self {
            Condition::Eq(l, r) | Condition::Neq(l, r) => (l, r),
        }
    }

    /// Is this a disequation?
    pub fn is_negative(&self) -> bool {
        matches!(self, Condition::Neq(..))
    }

    /// Apply a substitution to both sides.
    pub fn substitute(&self, subst: &BTreeMap<String, Term>) -> Condition {
        match self {
            Condition::Eq(l, r) => Condition::Eq(l.substitute(subst), r.substitute(subst)),
            Condition::Neq(l, r) => Condition::Neq(l.substitute(subst), r.substitute(subst)),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Eq(l, r) => write!(f, "{l} = {r}"),
            Condition::Neq(l, r) => write!(f, "{l} != {r}"),
        }
    }
}

/// A (generalized) conditional equation `conditions → lhs = rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConditionalEquation {
    /// Conditions (conjunction; empty for plain equations).
    pub conditions: Vec<Condition>,
    /// Left-hand side of the conclusion.
    pub lhs: Term,
    /// Right-hand side of the conclusion.
    pub rhs: Term,
}

impl ConditionalEquation {
    /// A plain (unconditional) equation.
    pub fn plain(lhs: Term, rhs: Term) -> Self {
        ConditionalEquation {
            conditions: Vec::new(),
            lhs,
            rhs,
        }
    }

    /// A conditional equation.
    pub fn when(conditions: impl IntoIterator<Item = Condition>, lhs: Term, rhs: Term) -> Self {
        ConditionalEquation {
            conditions: conditions.into_iter().collect(),
            lhs,
            rhs,
        }
    }

    /// Does the equation use negation (contain a disequation)? Classical
    /// initial-model semantics only exists without negation (Section 2.2).
    pub fn uses_negation(&self) -> bool {
        self.conditions.iter().any(Condition::is_negative)
    }

    /// All variables with their sorts.
    pub fn vars(&self) -> BTreeMap<String, Sort> {
        let mut out = self.lhs.vars();
        out.extend(self.rhs.vars());
        for c in &self.conditions {
            let (l, r) = c.terms();
            out.extend(l.vars());
            out.extend(r.vars());
        }
        out
    }

    /// Check well-sortedness of every term and agreement of the sides.
    pub fn check(&self, sig: &Signature) -> Result<(), SignatureError> {
        let ls = self.lhs.sort(sig)?;
        let rs = self.rhs.sort(sig)?;
        if ls != rs {
            return Err(SignatureError::IllSorted(format!(
                "conclusion sides have sorts `{ls}` and `{rs}`"
            )));
        }
        for c in &self.conditions {
            let (l, r) = c.terms();
            let cl = l.sort(sig)?;
            let cr = r.sort(sig)?;
            if cl != cr {
                return Err(SignatureError::IllSorted(format!(
                    "condition `{c}` compares sorts `{cl}` and `{cr}`"
                )));
            }
        }
        Ok(())
    }

    /// Ground instance under a substitution.
    pub fn substitute(&self, subst: &BTreeMap<String, Term>) -> ConditionalEquation {
        ConditionalEquation {
            conditions: self
                .conditions
                .iter()
                .map(|c| c.substitute(subst))
                .collect(),
            lhs: self.lhs.substitute(subst),
            rhs: self.rhs.substitute(subst),
        }
    }
}

impl fmt::Display for ConditionalEquation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.conditions.is_empty() {
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, " -> ")?;
        }
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

/// A specification: Definition 2.1's `(S, OP, E)` with generalized
/// conditional equations.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Specification {
    /// The signature `(S, OP)`.
    pub signature: Signature,
    /// The equations `E`.
    pub equations: Vec<ConditionalEquation>,
}

impl Specification {
    /// Build from parts, checking every equation.
    pub fn new(
        signature: Signature,
        equations: impl IntoIterator<Item = ConditionalEquation>,
    ) -> Result<Self, SignatureError> {
        let equations: Vec<_> = equations.into_iter().collect();
        for eq in &equations {
            eq.check(&signature)?;
        }
        Ok(Specification {
            signature,
            equations,
        })
    }

    /// Does any equation use negation? Without negation the classical
    /// initial semantics applies and the valid interpretation is exact.
    pub fn uses_negation(&self) -> bool {
        self.equations
            .iter()
            .any(ConditionalEquation::uses_negation)
    }

    /// Import another specification (signature merge + equation union) —
    /// the paper's `SPEC1 + SPEC2`.
    pub fn import(&mut self, other: &Specification) -> Result<&mut Self, SignatureError> {
        self.signature.import(&other.signature)?;
        for eq in &other.equations {
            if !self.equations.contains(eq) {
                self.equations.push(eq.clone());
            }
        }
        Ok(self)
    }
}

impl fmt::Display for Specification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.signature)?;
        writeln!(f, "eqns:")?;
        for eq in &self.equations {
            writeln!(f, "  {eq}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::OpDecl;

    fn bool_nat_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("bool").add_sort("nat");
        sig.add_op(OpDecl::constant("tt", "bool")).unwrap();
        sig.add_op(OpDecl::constant("ff", "bool")).unwrap();
        sig.add_op(OpDecl::constant("zero", "nat")).unwrap();
        sig.add_op(OpDecl::new("succ", ["nat"], "nat")).unwrap();
        sig.add_op(OpDecl::new("iszero", ["nat"], "bool")).unwrap();
        sig
    }

    #[test]
    fn plain_equation_checks() {
        let sig = bool_nat_sig();
        let eq =
            ConditionalEquation::plain(Term::op("iszero", [Term::cons("zero")]), Term::cons("tt"));
        assert!(eq.check(&sig).is_ok());
        assert!(!eq.uses_negation());
        assert_eq!(eq.to_string(), "iszero(zero) = tt");
    }

    #[test]
    fn sort_mismatch_rejected() {
        let sig = bool_nat_sig();
        let eq = ConditionalEquation::plain(Term::cons("zero"), Term::cons("tt"));
        assert!(eq.check(&sig).is_err());
        let eq2 = ConditionalEquation::when(
            [Condition::Eq(Term::cons("zero"), Term::cons("tt"))],
            Term::cons("tt"),
            Term::cons("tt"),
        );
        assert!(eq2.check(&sig).is_err());
    }

    #[test]
    fn negation_detection() {
        let sig = bool_nat_sig();
        // the MEM-style completion: iszero(x) != tt -> iszero(x) = ff
        let x = Term::var("x", "nat");
        let eq = ConditionalEquation::when(
            [Condition::Neq(
                Term::op("iszero", [x.clone()]),
                Term::cons("tt"),
            )],
            Term::op("iszero", [x.clone()]),
            Term::cons("ff"),
        );
        assert!(eq.check(&sig).is_ok());
        assert!(eq.uses_negation());
        assert_eq!(eq.vars().len(), 1);
        let spec = Specification::new(sig, [eq]).unwrap();
        assert!(spec.uses_negation());
    }

    #[test]
    fn substitution_grounds() {
        let x = Term::var("x", "nat");
        let eq = ConditionalEquation::when(
            [Condition::Neq(x.clone(), Term::cons("zero"))],
            Term::op("iszero", [x.clone()]),
            Term::cons("ff"),
        );
        let mut subst = BTreeMap::new();
        subst.insert("x".to_string(), Term::op("succ", [Term::cons("zero")]));
        let g = eq.substitute(&subst);
        assert!(g.lhs.is_ground());
        assert!(g.conditions[0].terms().0.is_ground());
        assert!(g.to_string().contains("succ(zero)"));
    }

    #[test]
    fn import_unions() {
        let sig = bool_nat_sig();
        let spec1 = Specification::new(sig.clone(), []).unwrap();
        let mut spec2 = Specification::new(
            sig,
            [ConditionalEquation::plain(
                Term::op("iszero", [Term::cons("zero")]),
                Term::cons("tt"),
            )],
        )
        .unwrap();
        spec2.import(&spec1).unwrap();
        assert_eq!(spec2.equations.len(), 1);
        let mut spec3 = spec1.clone();
        spec3.import(&spec2).unwrap();
        assert_eq!(spec3.equations.len(), 1);
    }

    #[test]
    fn display_specification() {
        let sig = bool_nat_sig();
        let spec = Specification::new(
            sig,
            [ConditionalEquation::plain(
                Term::op("iszero", [Term::cons("zero")]),
                Term::cons("tt"),
            )],
        )
        .unwrap();
        let s = spec.to_string();
        assert!(s.contains("eqns:"));
        assert!(s.contains("iszero(zero) = tt"));
    }
}
