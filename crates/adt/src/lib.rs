//! Algebraic specifications with negation — Section 2 of *"On the Power of
//! Algebras with Recursion"* (Beeri & Milo, SIGMOD 1993).
//!
//! The paper grounds its algebraic query languages in the algebraic
//! specification framework: many-sorted signatures, (generalized)
//! conditional equations, and initial-model semantics. Negation enters as
//! *disequations* in conditions — needed to define membership totally
//! (`MEM(x, y) ≠ T → MEM(x, y) = F`) — and the classical initial semantics
//! is replaced by the **valid interpretation**: the three-valued valid
//! model of the specification's "deductive version" (equality as the one
//! predicate plus the equality axioms).
//!
//! This crate implements that pipeline end to end:
//!
//! * [`signature`] / [`term`] — signatures, sorted terms, and the
//!   depth-bounded Herbrand windows substituting for infinite universes;
//! * [`equation`] — generalized conditional equations and specifications
//!   (Definition 2.1, extended per Section 2.2);
//! * [`valid_interp`] — the valid interpretation, computed by handing the
//!   deductive version to the alternating-fixpoint engine of
//!   [`algrec_datalog`];
//! * [`initial`] — initial valid models (Definition 2.2) and the
//!   constants-only decision procedure of Proposition 2.3(2), reproducing
//!   Example 2's specification with no initial valid model;
//! * [`specs`] — the paper's worked specifications: BOOL, NAT, SET(nat)
//!   with the membership completion, and the Example 1 even-number set.
//!
//! ```
//! use algrec_adt::specs::{example2_spec, set_spec, numeral};
//! use algrec_adt::valid_interp::ValidInterpretation;
//! use algrec_adt::term::Term;
//! use algrec_value::{Budget, Truth};
//!
//! // MEM is total on SET(nat) thanks to the completion disequation:
//! let vi = ValidInterpretation::compute(&set_spec(), 3, Budget::SMALL).unwrap();
//! let single = Term::op("ins", [numeral(0), Term::cons("empty")]);
//! assert_eq!(
//!     vi.eq_truth(&Term::op("mem", [numeral(1), single]), &Term::cons("ff")),
//!     Truth::True,
//! );
//!
//! // ... while Example 2's symmetric disequations leave equality undefined:
//! let vi2 = ValidInterpretation::compute(&example2_spec(), 1, Budget::SMALL).unwrap();
//! assert!(!vi2.is_total());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod equation;
pub mod initial;
pub mod parser;
pub mod signature;
pub mod specs;
pub mod term;
pub mod valid_interp;

pub use equation::{Condition, ConditionalEquation, Specification};
pub use initial::{initial_valid_model, InitialAnalysis, Partition};
pub use signature::{OpDecl, Signature, SignatureError, Sort};
pub use term::{ground_terms, Term};
pub use valid_interp::{AdtError, ValidInterpretation};
