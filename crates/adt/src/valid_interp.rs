//! The valid interpretation of a specification.
//!
//! "A specification SPEC can be viewed as a deductive program with '=' as
//! the only predicate. The rules in the 'deductive version' of SPEC are
//! the conditional equations of SPEC, and the standard equality axioms
//! (transitivity, symmetry, reflexivity, and substitution). Taking a valid
//! model approach, the deductive version of SPEC has a 3-valued valid
//! model." — paper, Section 2.2.
//!
//! This module builds that deductive version *literally*: equations become
//! rules over an `eq/2` predicate (disequation conditions become negated
//! atoms), the equality axioms are added, and the valid (alternating
//! fixpoint) engine of [`algrec_datalog`] computes the three-valued
//! equality relation. Facts in `T` are certainly-equal terms, facts in
//! `F` certainly-unequal, the rest undefined — exactly the paper's valid
//! interpretation.
//!
//! The Herbrand universe may be infinite (NAT); the computation runs over
//! the depth-bounded window of [`crate::term::ground_terms`], and every
//! derived equation is guarded to stay inside the window. Results are
//! therefore exact for queries whose derivations fit in the window, and
//! the window size is the caller's explicit choice.

use crate::equation::{Condition, Specification};
use crate::signature::Sort;
use crate::term::{ground_terms, Term};
use algrec_datalog::ast::{Atom, Expr, Literal, Program, Rule};
use algrec_datalog::engine::Compiled;
use algrec_datalog::interp::{Interp, ThreeValued};
use algrec_datalog::wellfounded::alternating_fixpoint;
use algrec_datalog::EvalError;
use algrec_value::{Budget, Truth, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from specification-level analyses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdtError {
    /// A signature/sorting failure.
    Signature(crate::signature::SignatureError),
    /// An evaluation failure of the deductive version.
    Eval(EvalError),
}

impl fmt::Display for AdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdtError::Signature(e) => write!(f, "{e}"),
            AdtError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AdtError {}

impl From<crate::signature::SignatureError> for AdtError {
    fn from(e: crate::signature::SignatureError) -> Self {
        AdtError::Signature(e)
    }
}

impl From<EvalError> for AdtError {
    fn from(e: EvalError) -> Self {
        AdtError::Eval(e)
    }
}

/// Encode a ground term as a value: `f(t₁, …, tₙ)` ↦ `[f, ⟦t₁⟧, …, ⟦tₙ⟧]`.
pub fn encode_term(t: &Term) -> Value {
    match t {
        Term::Var(..) => panic!("encode_term requires a ground term"),
        Term::Op(op, args) => {
            let mut items = vec![Value::str(op.clone())];
            items.extend(args.iter().map(encode_term));
            Value::Tuple(items)
        }
    }
}

/// Encode a possibly-open term as a rule expression: variables become rule
/// variables (named `v$<name>`).
fn encode_open(t: &Term) -> Expr {
    match t {
        Term::Var(name, _) => Expr::var(format!("v${name}")),
        Term::Op(op, args) => {
            let mut items = vec![Expr::lit(Value::str(op.clone()))];
            items.extend(args.iter().map(encode_open));
            Expr::Tuple(items)
        }
    }
}

fn univ_pred(sort: &str) -> String {
    format!("univ${sort}")
}

/// The deductive version of a specification over a depth-bounded window:
/// universe facts, equality axioms, and one rule per equation.
pub fn deductive_version(spec: &Specification, depth: usize) -> (Program, Interp) {
    deductive_version_over(spec, &ground_terms(&spec.signature, depth))
}

/// [`deductive_version`] over an explicit, caller-curated window of ground
/// terms. The window should be *condition-closed*: if an instantiated
/// equation's conclusion terms are in the window, its condition terms
/// should be too — otherwise a disequation condition can spuriously
/// succeed because its subject was simply never materialized. (The
/// depth-bounded default windows of [`ground_terms`] have this property
/// for the built-in specifications.)
pub fn deductive_version_over(
    spec: &Specification,
    universe: &BTreeMap<Sort, Vec<Term>>,
) -> (Program, Interp) {
    let mut base = Interp::new();
    for (sort, terms) in universe {
        for t in terms {
            base.insert(&univ_pred(sort), vec![encode_term(t)]);
        }
    }

    let mut program = Program::new();

    // Reflexivity per sort: eq(X, X) :- univ$s(X).
    for sort in spec.signature.sorts() {
        program.push(Rule::new(
            Atom::new("eq", [Expr::var("X"), Expr::var("X")]),
            [Literal::Pos(Atom::new(univ_pred(sort), [Expr::var("X")]))],
        ));
    }
    // Symmetry and transitivity.
    program.push(Rule::new(
        Atom::new("eq", [Expr::var("Y"), Expr::var("X")]),
        [Literal::Pos(Atom::new(
            "eq",
            [Expr::var("X"), Expr::var("Y")],
        ))],
    ));
    program.push(Rule::new(
        Atom::new("eq", [Expr::var("X"), Expr::var("Z")]),
        [
            Literal::Pos(Atom::new("eq", [Expr::var("X"), Expr::var("Y")])),
            Literal::Pos(Atom::new("eq", [Expr::var("Y"), Expr::var("Z")])),
        ],
    ));
    // Congruence (the substitution axiom): for f : s₁ … sₙ → s,
    //   eq([f,X₁…Xₙ], [f,Y₁…Yₙ]) :- univ$s([f,X̄]), univ$s([f,Ȳ]),
    //                                eq(X₁,Y₁), …, eq(Xₙ,Yₙ).
    for op in spec.signature.ops() {
        if op.args.is_empty() {
            continue;
        }
        let xs: Vec<Expr> = (0..op.args.len())
            .map(|i| Expr::var(format!("X{i}")))
            .collect();
        let ys: Vec<Expr> = (0..op.args.len())
            .map(|i| Expr::var(format!("Y{i}")))
            .collect();
        let mk = |vars: &[Expr]| {
            let mut items = vec![Expr::lit(Value::str(op.name.clone()))];
            items.extend(vars.iter().cloned());
            Expr::Tuple(items)
        };
        let mut body = vec![
            Literal::Pos(Atom::new(univ_pred(&op.result), [mk(&xs)])),
            Literal::Pos(Atom::new(univ_pred(&op.result), [mk(&ys)])),
        ];
        for (x, y) in xs.iter().zip(&ys) {
            body.push(Literal::Pos(Atom::new("eq", [x.clone(), y.clone()])));
        }
        program.push(Rule::new(Atom::new("eq", [mk(&xs), mk(&ys)]), body));
    }

    // One rule per equation: variables guarded by their sort's universe,
    // conclusion sides guarded to stay inside the window, conditions as
    // positive/negative eq literals.
    for eq in &spec.equations {
        let mut body: Vec<Literal> = Vec::new();
        for (var, sort) in eq.vars() {
            body.push(Literal::Pos(Atom::new(
                univ_pred(&sort),
                [Expr::var(format!("v${var}"))],
            )));
        }
        let lhs = encode_open(&eq.lhs);
        let rhs = encode_open(&eq.rhs);
        let sort = eq
            .lhs
            .sort(&spec.signature)
            .expect("specification was checked at construction");
        body.push(Literal::Pos(Atom::new(univ_pred(&sort), [lhs.clone()])));
        body.push(Literal::Pos(Atom::new(univ_pred(&sort), [rhs.clone()])));
        for cond in &eq.conditions {
            match cond {
                Condition::Eq(l, r) => body.push(Literal::Pos(Atom::new(
                    "eq",
                    [encode_open(l), encode_open(r)],
                ))),
                Condition::Neq(l, r) => body.push(Literal::Neg(Atom::new(
                    "eq",
                    [encode_open(l), encode_open(r)],
                ))),
            }
        }
        program.push(Rule::new(Atom::new("eq", [lhs, rhs]), body));
    }

    (program, base)
}

/// The three-valued valid interpretation of a specification over a
/// depth-bounded Herbrand window.
#[derive(Clone, Debug)]
pub struct ValidInterpretation {
    universe: BTreeMap<Sort, Vec<Term>>,
    tv: ThreeValued,
}

impl ValidInterpretation {
    /// Compute the valid interpretation of `spec` over ground terms of
    /// depth ≤ `depth`.
    pub fn compute(spec: &Specification, depth: usize, budget: Budget) -> Result<Self, AdtError> {
        Self::compute_over(spec, ground_terms(&spec.signature, depth), budget)
    }

    /// Compute the valid interpretation over an explicit window of ground
    /// terms (see [`deductive_version_over`] for the closure property the
    /// window should satisfy).
    pub fn compute_over(
        spec: &Specification,
        mut universe: BTreeMap<Sort, Vec<Term>>,
        budget: Budget,
    ) -> Result<Self, AdtError> {
        for terms in universe.values_mut() {
            terms.sort();
            terms.dedup();
        }
        let (program, base) = deductive_version_over(spec, &universe);
        let compiled = Compiled::compile(&program)?;
        let mut meter = budget.meter();
        let (tv, _) = alternating_fixpoint(&compiled, &base, &mut meter)?;
        Ok(ValidInterpretation { universe, tv })
    }

    /// Three-valued truth of `t₁ = t₂`. Terms outside the window compare
    /// `Unknown` unless syntactically identical.
    pub fn eq_truth(&self, t1: &Term, t2: &Term) -> Truth {
        if t1 == t2 {
            return Truth::True;
        }
        let (v1, v2) = (encode_term(t1), encode_term(t2));
        let in_window = |t: &Term| {
            self.universe
                .values()
                .any(|terms| terms.binary_search(t).is_ok())
        };
        if !in_window(t1) || !in_window(t2) {
            return Truth::Unknown;
        }
        self.tv.truth("eq", &[v1, v2])
    }

    /// Is the interpretation total (two-valued) on the window? The paper
    /// calls a specification with an initial valid model *well-defined*;
    /// totality of the valid interpretation over the observables is the
    /// computable witness of it.
    pub fn is_total(&self) -> bool {
        self.tv.is_exact()
    }

    /// Number of undefined equality facts.
    pub fn unknown_count(&self) -> usize {
        self.tv.unknown_count()
    }

    /// The window of ground terms per sort.
    pub fn universe(&self) -> &BTreeMap<Sort, Vec<Term>> {
        &self.universe
    }

    /// The certain equality classes of a sort (the quotient that the
    /// initial algebra takes, Section 2.1).
    pub fn classes(&self, sort: &str) -> Vec<Vec<Term>> {
        let Some(terms) = self.universe.get(sort) else {
            return Vec::new();
        };
        let mut classes: Vec<Vec<Term>> = Vec::new();
        'outer: for t in terms {
            for class in &mut classes {
                if self.eq_truth(&class[0], t) == Truth::True {
                    class.push(t.clone());
                    continue 'outer;
                }
            }
            classes.push(vec![t.clone()]);
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::ConditionalEquation;
    use crate::signature::{OpDecl, Signature};

    fn bool_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("bool");
        sig.add_op(OpDecl::constant("tt", "bool")).unwrap();
        sig.add_op(OpDecl::constant("ff", "bool")).unwrap();
        sig.add_op(OpDecl::new("neg", ["bool"], "bool")).unwrap();
        sig
    }

    #[test]
    fn encode_round_shape() {
        let t = Term::op("succ", [Term::cons("zero")]);
        let v = encode_term(&t);
        assert_eq!(
            v,
            Value::tuple([Value::str("succ"), Value::tuple([Value::str("zero")]),])
        );
    }

    #[test]
    fn plain_equations_quotient() {
        // neg(tt) = ff, neg(ff) = tt.
        let spec = Specification::new(
            bool_sig(),
            [
                ConditionalEquation::plain(Term::op("neg", [Term::cons("tt")]), Term::cons("ff")),
                ConditionalEquation::plain(Term::op("neg", [Term::cons("ff")]), Term::cons("tt")),
            ],
        )
        .unwrap();
        let vi = ValidInterpretation::compute(&spec, 3, Budget::SMALL).unwrap();
        assert!(vi.is_total());
        assert_eq!(
            vi.eq_truth(&Term::op("neg", [Term::cons("tt")]), &Term::cons("ff")),
            Truth::True
        );
        // congruence: neg(neg(tt)) = neg(ff) = tt
        assert_eq!(
            vi.eq_truth(
                &Term::op("neg", [Term::op("neg", [Term::cons("tt")])]),
                &Term::cons("tt")
            ),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(&Term::cons("tt"), &Term::cons("ff")),
            Truth::False
        );
        // exactly 2 classes at any depth
        assert_eq!(vi.classes("bool").len(), 2);
    }

    #[test]
    fn example2_no_two_valued_interpretation() {
        // Example 2 of the paper: a ≠ b → a = c; a ≠ c → a = b.
        let mut sig = Signature::new();
        sig.add_sort("s");
        for c in ["a", "b", "c"] {
            sig.add_op(OpDecl::constant(c, "s")).unwrap();
        }
        let spec = Specification::new(
            sig,
            [
                ConditionalEquation::when(
                    [Condition::Neq(Term::cons("a"), Term::cons("b"))],
                    Term::cons("a"),
                    Term::cons("c"),
                ),
                ConditionalEquation::when(
                    [Condition::Neq(Term::cons("a"), Term::cons("c"))],
                    Term::cons("a"),
                    Term::cons("b"),
                ),
            ],
        )
        .unwrap();
        let vi = ValidInterpretation::compute(&spec, 1, Budget::SMALL).unwrap();
        // "no equalities can be derived in a valid manner": a=b, a=c stay
        // undefined.
        assert_eq!(
            vi.eq_truth(&Term::cons("a"), &Term::cons("b")),
            Truth::Unknown
        );
        assert_eq!(
            vi.eq_truth(&Term::cons("a"), &Term::cons("c")),
            Truth::Unknown
        );
        assert!(!vi.is_total());
    }

    #[test]
    fn completion_disequation_makes_mem_total() {
        // A miniature of the Section 2.2 membership completion:
        //   val(k) = tt   for the "in" constants,
        //   val(x) ≠ tt → val(x) = ff.
        let mut sig = Signature::new();
        sig.add_sort("bool").add_sort("d");
        sig.add_op(OpDecl::constant("tt", "bool")).unwrap();
        sig.add_op(OpDecl::constant("ff", "bool")).unwrap();
        sig.add_op(OpDecl::constant("k1", "d")).unwrap();
        sig.add_op(OpDecl::constant("k2", "d")).unwrap();
        sig.add_op(OpDecl::new("val", ["d"], "bool")).unwrap();
        let x = Term::var("x", "d");
        let spec = Specification::new(
            sig,
            [
                ConditionalEquation::plain(Term::op("val", [Term::cons("k1")]), Term::cons("tt")),
                ConditionalEquation::when(
                    [Condition::Neq(
                        Term::op("val", [x.clone()]),
                        Term::cons("tt"),
                    )],
                    Term::op("val", [x.clone()]),
                    Term::cons("ff"),
                ),
            ],
        )
        .unwrap();
        let vi = ValidInterpretation::compute(&spec, 2, Budget::SMALL).unwrap();
        assert_eq!(
            vi.eq_truth(&Term::op("val", [Term::cons("k1")]), &Term::cons("tt")),
            Truth::True
        );
        // k2 has no positive fact: the completion axiom fires.
        assert_eq!(
            vi.eq_truth(&Term::op("val", [Term::cons("k2")]), &Term::cons("ff")),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(&Term::op("val", [Term::cons("k2")]), &Term::cons("tt")),
            Truth::False
        );
        assert!(vi.is_total());
    }

    #[test]
    fn out_of_window_is_unknown() {
        let spec = Specification::new(bool_sig(), []).unwrap();
        let vi = ValidInterpretation::compute(&spec, 1, Budget::SMALL).unwrap();
        let deep = Term::op("neg", [Term::op("neg", [Term::cons("tt")])]);
        assert_eq!(vi.eq_truth(&deep, &Term::cons("tt")), Truth::Unknown);
        // identical terms are equal regardless of the window
        assert_eq!(vi.eq_truth(&deep, &deep), Truth::True);
    }

    #[test]
    fn without_equations_terms_are_distinct_but_self_equal() {
        let spec = Specification::new(bool_sig(), []).unwrap();
        let vi = ValidInterpretation::compute(&spec, 2, Budget::SMALL).unwrap();
        assert_eq!(
            vi.eq_truth(&Term::cons("tt"), &Term::cons("tt")),
            Truth::True
        );
        assert_eq!(
            vi.eq_truth(&Term::cons("tt"), &Term::cons("ff")),
            Truth::False
        );
        assert!(vi.is_total());
        // depth 2: tt, ff, neg(tt), neg(ff) → 4 singleton classes
        assert_eq!(vi.classes("bool").len(), 4);
        assert_eq!(vi.universe()["bool"].len(), 4);
    }
}
