//! Many-sorted signatures.
//!
//! "An abstract data type specification is a triple SPEC = (S, OP, E)
//! where S is a set of sort names, OP is a set of function symbols with
//! arities in S* → S, and E is a set of (conditional) equations over S and
//! OP" — paper, Definition 2.1. This module provides the `(S, OP)` part.

use std::collections::BTreeMap;
use std::fmt;

/// A sort name.
pub type Sort = String;

/// A function symbol declaration: `name : args → result`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpDecl {
    /// Operation name.
    pub name: String,
    /// Argument sorts (empty for constants).
    pub args: Vec<Sort>,
    /// Result sort.
    pub result: Sort,
}

impl OpDecl {
    /// Construct a declaration.
    pub fn new(
        name: impl Into<String>,
        args: impl IntoIterator<Item = impl Into<String>>,
        result: impl Into<String>,
    ) -> Self {
        OpDecl {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            result: result.into(),
        }
    }

    /// A constant declaration (`name : → sort`).
    pub fn constant(name: impl Into<String>, sort: impl Into<String>) -> Self {
        OpDecl {
            name: name.into(),
            args: Vec::new(),
            result: sort.into(),
        }
    }

    /// Is this a constant (0-ary operation)?
    pub fn is_constant(&self) -> bool {
        self.args.is_empty()
    }
}

impl fmt::Display for OpDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {}",
            self.name,
            self.args.join(", "),
            self.result
        )
    }
}

/// Errors raised when building or using a signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SignatureError {
    /// An operation references a sort that was not declared.
    UnknownSort {
        /// The operation.
        op: String,
        /// The missing sort.
        sort: Sort,
    },
    /// Two operations share a name.
    DuplicateOp(String),
    /// A term used an operation not in the signature.
    UnknownOp(String),
    /// A term applied an operation to the wrong number or sorts of
    /// arguments.
    IllSorted(String),
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::UnknownSort { op, sort } => {
                write!(f, "operation `{op}` uses undeclared sort `{sort}`")
            }
            SignatureError::DuplicateOp(op) => write!(f, "duplicate operation `{op}`"),
            SignatureError::UnknownOp(op) => write!(f, "unknown operation `{op}`"),
            SignatureError::IllSorted(m) => write!(f, "ill-sorted term: {m}"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A many-sorted signature: sort names plus operation declarations.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Signature {
    sorts: Vec<Sort>,
    ops: BTreeMap<String, OpDecl>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Declare a sort (idempotent).
    pub fn add_sort(&mut self, sort: impl Into<String>) -> &mut Self {
        let s = sort.into();
        if !self.sorts.contains(&s) {
            self.sorts.push(s);
        }
        self
    }

    /// Declare an operation. Fails on duplicate names or undeclared sorts.
    pub fn add_op(&mut self, op: OpDecl) -> Result<&mut Self, SignatureError> {
        for s in op.args.iter().chain(std::iter::once(&op.result)) {
            if !self.sorts.contains(s) {
                return Err(SignatureError::UnknownSort {
                    op: op.name.clone(),
                    sort: s.clone(),
                });
            }
        }
        if self.ops.contains_key(&op.name) {
            return Err(SignatureError::DuplicateOp(op.name));
        }
        self.ops.insert(op.name.clone(), op);
        Ok(self)
    }

    /// Merge another signature into this one (specification *import*, the
    /// paper's `nat + bool + …` notation). Duplicate identical operations
    /// are accepted; conflicting ones fail.
    pub fn import(&mut self, other: &Signature) -> Result<&mut Self, SignatureError> {
        for s in &other.sorts {
            self.add_sort(s.clone());
        }
        for op in other.ops.values() {
            match self.ops.get(&op.name) {
                Some(existing) if existing == op => {}
                Some(_) => return Err(SignatureError::DuplicateOp(op.name.clone())),
                None => {
                    self.ops.insert(op.name.clone(), op.clone());
                }
            }
        }
        Ok(self)
    }

    /// Declared sorts, in declaration order.
    pub fn sorts(&self) -> &[Sort] {
        &self.sorts
    }

    /// Look up an operation.
    pub fn op(&self, name: &str) -> Option<&OpDecl> {
        self.ops.get(name)
    }

    /// All operations, in name order.
    pub fn ops(&self) -> impl Iterator<Item = &OpDecl> {
        self.ops.values()
    }

    /// Operations producing `sort`.
    pub fn ops_of_sort<'a>(&'a self, sort: &'a str) -> impl Iterator<Item = &'a OpDecl> + 'a {
        self.ops.values().filter(move |o| o.result == sort)
    }

    /// Constants of `sort`.
    pub fn constants_of<'a>(&'a self, sort: &'a str) -> impl Iterator<Item = &'a OpDecl> + 'a {
        self.ops_of_sort(sort).filter(|o| o.is_constant())
    }

    /// Does the signature contain only constants (0-ary operations)? This
    /// is the fragment where the existence of an initial valid model is
    /// decidable (Proposition 2.3(2)).
    pub fn constants_only(&self) -> bool {
        self.ops.values().all(OpDecl::is_constant)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sorts: {}", self.sorts.join(", "))?;
        writeln!(f, "opns:")?;
        for op in self.ops.values() {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("nat");
        sig.add_op(OpDecl::constant("zero", "nat")).unwrap();
        sig.add_op(OpDecl::new("succ", ["nat"], "nat")).unwrap();
        sig
    }

    #[test]
    fn build_and_lookup() {
        let sig = nat_sig();
        assert_eq!(sig.sorts(), &["nat".to_string()]);
        assert!(sig.op("succ").is_some());
        assert!(sig.op("pred").is_none());
        assert_eq!(sig.ops_of_sort("nat").count(), 2);
        assert_eq!(sig.constants_of("nat").count(), 1);
        assert!(!sig.constants_only());
    }

    #[test]
    fn rejects_unknown_sort() {
        let mut sig = Signature::new();
        sig.add_sort("nat");
        let err = sig.add_op(OpDecl::new("mem", ["nat"], "bool")).unwrap_err();
        assert!(matches!(err, SignatureError::UnknownSort { .. }));
    }

    #[test]
    fn rejects_duplicate_op() {
        let mut sig = nat_sig();
        let err = sig.add_op(OpDecl::constant("zero", "nat")).unwrap_err();
        assert!(matches!(err, SignatureError::DuplicateOp(_)));
    }

    #[test]
    fn import_merges() {
        let mut sig = Signature::new();
        sig.add_sort("bool");
        sig.add_op(OpDecl::constant("tt", "bool")).unwrap();
        sig.import(&nat_sig()).unwrap();
        assert!(sig.op("succ").is_some());
        assert!(sig.op("tt").is_some());
        // importing again is idempotent
        sig.import(&nat_sig()).unwrap();
        assert_eq!(sig.ops().count(), 3);
    }

    #[test]
    fn import_conflict_fails() {
        let mut a = Signature::new();
        a.add_sort("s");
        a.add_op(OpDecl::constant("c", "s")).unwrap();
        let mut b = Signature::new();
        b.add_sort("t");
        b.add_op(OpDecl::constant("c", "t")).unwrap();
        assert!(matches!(a.import(&b), Err(SignatureError::DuplicateOp(_))));
    }

    #[test]
    fn constants_only_fragment() {
        let mut sig = Signature::new();
        sig.add_sort("s");
        sig.add_op(OpDecl::constant("a", "s")).unwrap();
        sig.add_op(OpDecl::constant("b", "s")).unwrap();
        assert!(sig.constants_only());
    }

    #[test]
    fn display() {
        let sig = nat_sig();
        let s = sig.to_string();
        assert!(s.contains("sorts: nat"));
        assert!(s.contains("succ: nat -> nat"));
    }
}
