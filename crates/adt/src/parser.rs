//! A concrete syntax for algebraic specifications, in the OBJ tradition
//! the paper's notation descends from.
//!
//! ```text
//! spec      := item*
//! item      := "sorts" ident+ ";"
//!            | "op" ident ":" [sort ("," sort)*] "->" sort ";"
//!            | "var" ident ":" sort ";"
//!            | "eq" term "=" term ";"
//!            | "ceq" term "=" term "if" cond ("/\" cond)* ";"
//! cond      := term "=" term | term "!=" term
//! term      := ident | ident "(" term ("," term)* ")"
//! comment   := "%" … end of line
//! ```
//!
//! Identifiers resolve against the declared variables first, then the
//! operations. Disequations in conditions (`!=`) are the paper's negation
//! (Section 2.2).
//!
//! ```
//! use algrec_adt::parser::parse_spec;
//! let spec = parse_spec(
//!     "sorts s;
//!      op a : -> s;  op b : -> s;  op c : -> s;
//!      ceq a = c if a != b;    % Example 2 of the paper
//!      ceq a = b if a != c;",
//! ).unwrap();
//! assert!(spec.uses_negation());
//! ```

use crate::equation::{Condition, ConditionalEquation, Specification};
use crate::signature::{OpDecl, Signature};
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SpecParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    Arrow,
    Eq,
    Neq,
    AndAnd, // the /\ conjunction
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, SpecParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < b.len() {
        let start = pos;
        match b[pos] {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'%' => {
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                out.push((start, Tok::LParen));
                pos += 1;
            }
            b')' => {
                out.push((start, Tok::RParen));
                pos += 1;
            }
            b',' => {
                out.push((start, Tok::Comma));
                pos += 1;
            }
            b';' => {
                out.push((start, Tok::Semi));
                pos += 1;
            }
            b':' => {
                out.push((start, Tok::Colon));
                pos += 1;
            }
            b'=' => {
                out.push((start, Tok::Eq));
                pos += 1;
            }
            b'!' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push((start, Tok::Neq));
                    pos += 2;
                } else {
                    return Err(SpecParseError {
                        offset: pos,
                        message: "expected `!=`".into(),
                    });
                }
            }
            b'-' => {
                if b.get(pos + 1) == Some(&b'>') {
                    out.push((start, Tok::Arrow));
                    pos += 2;
                } else {
                    return Err(SpecParseError {
                        offset: pos,
                        message: "expected `->`".into(),
                    });
                }
            }
            b'/' => {
                if b.get(pos + 1) == Some(&b'\\') {
                    out.push((start, Tok::AndAnd));
                    pos += 2;
                } else {
                    return Err(SpecParseError {
                        offset: pos,
                        message: "expected `/\\`".into(),
                    });
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let s = pos;
                while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                    pos += 1;
                }
                out.push((start, Tok::Ident(src[s..pos].to_string())));
            }
            other => {
                return Err(SpecParseError {
                    offset: pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
    sig: Signature,
    vars: BTreeMap<String, String>, // name -> sort
    eqs: Vec<ConditionalEquation>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> SpecParseError {
        SpecParseError {
            offset: self.toks.get(self.idx).map_or(usize::MAX, |(o, _)| *o),
            message: message.into(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SpecParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), SpecParseError> {
        if self.peek() == Some(tok) {
            self.idx += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn parse_term(&mut self) -> Result<Term, SpecParseError> {
        let name = self.ident("a term")?;
        if self.peek() == Some(&Tok::LParen) {
            self.idx += 1;
            let mut args = Vec::new();
            loop {
                args.push(self.parse_term()?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    _ => return Err(self.err("expected `,` or `)` in term")),
                }
            }
            Ok(Term::Op(name, args))
        } else if let Some(sort) = self.vars.get(&name) {
            Ok(Term::Var(name.clone(), sort.clone()))
        } else {
            Ok(Term::cons(name))
        }
    }

    fn parse_condition(&mut self) -> Result<Condition, SpecParseError> {
        let l = self.parse_term()?;
        match self.bump() {
            Some(Tok::Eq) => Ok(Condition::Eq(l, self.parse_term()?)),
            Some(Tok::Neq) => Ok(Condition::Neq(l, self.parse_term()?)),
            _ => Err(self.err("expected `=` or `!=` in condition")),
        }
    }

    fn parse_item(&mut self) -> Result<(), SpecParseError> {
        let kw = self.ident("`sorts`, `op`, `var`, `eq` or `ceq`")?;
        match kw.as_str() {
            "sorts" => {
                loop {
                    let s = self.ident("a sort name")?;
                    self.sig.add_sort(s);
                    match self.peek() {
                        Some(Tok::Semi) => {
                            self.idx += 1;
                            break;
                        }
                        Some(Tok::Ident(_)) => continue,
                        _ => return Err(self.err("expected a sort name or `;`")),
                    }
                }
                Ok(())
            }
            "op" => {
                let name = self.ident("an operation name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let mut args = Vec::new();
                while let Some(Tok::Ident(_)) = self.peek() {
                    args.push(self.ident("an argument sort")?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.idx += 1;
                    }
                }
                self.expect(&Tok::Arrow, "`->`")?;
                let result = self.ident("a result sort")?;
                self.expect(&Tok::Semi, "`;`")?;
                if let Err(e) = self.sig.add_op(OpDecl::new(name, args, result)) {
                    return Err(self.err(e.to_string()));
                }
                Ok(())
            }
            "var" => {
                let name = self.ident("a variable name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let sort = self.ident("a sort")?;
                self.expect(&Tok::Semi, "`;`")?;
                self.vars.insert(name, sort);
                Ok(())
            }
            "eq" | "ceq" => {
                let lhs = self.parse_term()?;
                self.expect(&Tok::Eq, "`=`")?;
                let rhs = self.parse_term()?;
                let mut conditions = Vec::new();
                if kw == "ceq" {
                    match self.bump() {
                        Some(Tok::Ident(w)) if w == "if" => {}
                        _ => return Err(self.err("expected `if` after a `ceq` conclusion")),
                    }
                    loop {
                        conditions.push(self.parse_condition()?);
                        if self.peek() == Some(&Tok::AndAnd) {
                            self.idx += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::Semi, "`;`")?;
                self.eqs
                    .push(ConditionalEquation::when(conditions, lhs, rhs));
                Ok(())
            }
            other => Err(self.err(format!("unknown item `{other}`"))),
        }
    }
}

/// Parse a specification.
pub fn parse_spec(src: &str) -> Result<Specification, SpecParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        idx: 0,
        sig: Signature::new(),
        vars: BTreeMap::new(),
        eqs: Vec::new(),
    };
    while p.peek().is_some() {
        p.parse_item()?;
    }
    let offset = p.toks.last().map_or(0, |(o, _)| *o);
    Specification::new(p.sig, p.eqs).map_err(|e| SpecParseError {
        offset,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valid_interp::ValidInterpretation;
    use algrec_value::{Budget, Truth};

    #[test]
    fn parses_example2_and_matches_builtin() {
        let spec = parse_spec(
            "sorts s;
             op a : -> s;  op b : -> s;  op c : -> s;
             ceq a = c if a != b;
             ceq a = b if a != c;",
        )
        .unwrap();
        assert_eq!(spec, crate::specs::example2_spec());
    }

    #[test]
    fn parses_nat_style_spec() {
        let spec = parse_spec(
            "sorts bool nat;
             op tt : -> bool;
             op ff : -> bool;
             op zero : -> nat;
             op succ : nat -> nat;
             op iszero : nat -> bool;
             var n : nat;
             eq iszero(zero) = tt;
             ceq iszero(n) = ff if iszero(n) != tt;",
        )
        .unwrap();
        assert_eq!(spec.signature.sorts().len(), 2);
        assert!(spec.uses_negation());
        let vi = ValidInterpretation::compute(&spec, 3, Budget::SMALL).unwrap();
        assert!(vi.is_total());
        assert_eq!(
            vi.eq_truth(
                &Term::op("iszero", [Term::op("succ", [Term::cons("zero")])]),
                &Term::cons("ff")
            ),
            Truth::True
        );
    }

    #[test]
    fn multi_argument_ops_and_conjunctions() {
        let spec = parse_spec(
            "sorts s;
             op a : -> s;  op b : -> s;  op c : -> s;
             op f : s, s -> s;
             var x : s;  var y : s;
             ceq f(x, y) = a if x != b /\\ y != c;",
        )
        .unwrap();
        let eq = &spec.equations[0];
        assert_eq!(eq.conditions.len(), 2);
        assert_eq!(eq.lhs.to_string(), "f(x, y)");
    }

    #[test]
    fn variables_resolve_by_declaration() {
        let spec = parse_spec(
            "sorts s;
             op k : -> s;
             var x : s;
             eq x = k;",
        )
        .unwrap();
        assert_eq!(spec.equations[0].lhs, Term::var("x", "s"),);
        // undeclared names become constants — and then fail sorting
        let bad = parse_spec(
            "sorts s;
             op k : -> s;
             eq y = k;",
        );
        assert!(bad.is_err()); // `y` is an unknown operation
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_spec("sorts ;").is_err());
        assert!(parse_spec("op f -> s;").is_err());
        assert!(parse_spec("eq a = ;").is_err());
        assert!(parse_spec("ceq a = b;").is_err()); // missing if
        assert!(parse_spec("frob x;").is_err());
        assert!(parse_spec("eq a ! b;").is_err());
        assert!(parse_spec("op f : s / t -> s;").is_err());
        let e = parse_spec("sorts s; op a : -> s; eq a = a").unwrap_err();
        assert!(e.to_string().contains("expected `;`"));
    }

    #[test]
    fn comments_ignored() {
        let spec =
            parse_spec("% a comment\nsorts s; % trailing\nop a : -> s;\neq a = a; % done").unwrap();
        assert_eq!(spec.equations.len(), 1);
    }
}
