//! Terms over a many-sorted signature.
//!
//! The Herbrand universe — "the collection of ground terms over OP"
//! (Section 2.1) — is the carrier from which initial algebras are built as
//! quotients. Since the paper's universes may be infinite (NAT), ground
//! term enumeration is *depth-bounded*: [`ground_terms`] materializes the
//! finite window that budget-bounded valid interpretation works over.

use crate::signature::{Signature, SignatureError, Sort};
use std::collections::BTreeMap;
use std::fmt;

/// A term: a variable (with its sort) or an operation applied to terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A sorted variable.
    Var(String, Sort),
    /// An operation application (constants have no arguments).
    Op(String, Vec<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>, sort: impl Into<String>) -> Self {
        Term::Var(name.into(), sort.into())
    }

    /// A constant term.
    pub fn cons(name: impl Into<String>) -> Self {
        Term::Op(name.into(), Vec::new())
    }

    /// An application term.
    pub fn op(name: impl Into<String>, args: impl IntoIterator<Item = Term>) -> Self {
        Term::Op(name.into(), args.into_iter().collect())
    }

    /// Is the term ground?
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(..) => false,
            Term::Op(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Structural depth (constants have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(..) => 1,
            Term::Op(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// The sort of the term under a signature.
    pub fn sort(&self, sig: &Signature) -> Result<Sort, SignatureError> {
        match self {
            Term::Var(_, s) => Ok(s.clone()),
            Term::Op(name, args) => {
                let decl = sig
                    .op(name)
                    .ok_or_else(|| SignatureError::UnknownOp(name.clone()))?;
                if decl.args.len() != args.len() {
                    return Err(SignatureError::IllSorted(format!(
                        "`{name}` expects {} arguments, got {}",
                        decl.args.len(),
                        args.len()
                    )));
                }
                for (expected, arg) in decl.args.iter().zip(args) {
                    let got = arg.sort(sig)?;
                    if &got != expected {
                        return Err(SignatureError::IllSorted(format!(
                            "`{name}` expects `{expected}`, got `{got}` in `{arg}`"
                        )));
                    }
                }
                Ok(decl.result.clone())
            }
        }
    }

    /// The variables of the term, with their sorts.
    pub fn vars(&self) -> BTreeMap<String, Sort> {
        let mut out = BTreeMap::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeMap<String, Sort>) {
        match self {
            Term::Var(name, sort) => {
                out.insert(name.clone(), sort.clone());
            }
            Term::Op(_, args) => args.iter().for_each(|a| a.collect_vars(out)),
        }
    }

    /// Apply a substitution (variables not in the map are left alone).
    pub fn substitute(&self, subst: &BTreeMap<String, Term>) -> Term {
        match self {
            Term::Var(name, _) => subst.get(name).cloned().unwrap_or_else(|| self.clone()),
            Term::Op(op, args) => Term::Op(
                op.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name, _) => write!(f, "{name}"),
            Term::Op(op, args) if args.is_empty() => write!(f, "{op}"),
            Term::Op(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Enumerate all ground terms of every sort up to `max_depth`, sorted.
/// This is the finite Herbrand window over which valid interpretations are
/// computed (the paper's universes may be infinite; see the crate docs for
/// the substitution argument).
pub fn ground_terms(sig: &Signature, max_depth: usize) -> BTreeMap<Sort, Vec<Term>> {
    let mut by_sort: BTreeMap<Sort, Vec<Term>> = sig
        .sorts()
        .iter()
        .map(|s| (s.clone(), Vec::new()))
        .collect();
    for _ in 0..max_depth {
        let snapshot = by_sort.clone();
        for op in sig.ops() {
            // All combinations of existing argument terms.
            let mut combos: Vec<Vec<Term>> = vec![Vec::new()];
            for arg_sort in &op.args {
                let pool = snapshot.get(arg_sort).map_or(&[][..], Vec::as_slice);
                let mut next = Vec::new();
                for combo in &combos {
                    for t in pool {
                        let mut c = combo.clone();
                        c.push(t.clone());
                        next.push(c);
                    }
                }
                combos = next;
            }
            let entry = by_sort.entry(op.result.clone()).or_default();
            for combo in combos {
                let t = Term::Op(op.name.clone(), combo);
                if !entry.contains(&t) {
                    entry.push(t);
                }
            }
        }
    }
    for terms in by_sort.values_mut() {
        terms.sort();
    }
    by_sort
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::OpDecl;

    fn nat_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("nat");
        sig.add_op(OpDecl::constant("zero", "nat")).unwrap();
        sig.add_op(OpDecl::new("succ", ["nat"], "nat")).unwrap();
        sig
    }

    #[test]
    fn sorting_terms() {
        let sig = nat_sig();
        let t = Term::op("succ", [Term::cons("zero")]);
        assert_eq!(t.sort(&sig).unwrap(), "nat");
        assert!(t.is_ground());
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn ill_sorted_detected() {
        let mut sig = nat_sig();
        sig.add_sort("bool");
        sig.add_op(OpDecl::constant("tt", "bool")).unwrap();
        let t = Term::op("succ", [Term::cons("tt")]);
        assert!(matches!(t.sort(&sig), Err(SignatureError::IllSorted(_))));
        let t2 = Term::op("succ", []);
        assert!(matches!(t2.sort(&sig), Err(SignatureError::IllSorted(_))));
        let t3 = Term::cons("nope");
        assert!(matches!(t3.sort(&sig), Err(SignatureError::UnknownOp(_))));
    }

    #[test]
    fn variables_and_substitution() {
        let x = Term::var("x", "nat");
        let t = Term::op("succ", [x.clone()]);
        assert!(!t.is_ground());
        assert_eq!(t.vars().get("x"), Some(&"nat".to_string()));
        let mut subst = BTreeMap::new();
        subst.insert("x".to_string(), Term::cons("zero"));
        let g = t.substitute(&subst);
        assert_eq!(g, Term::op("succ", [Term::cons("zero")]));
        assert!(g.is_ground());
    }

    #[test]
    fn ground_enumeration_depth_bounded() {
        let sig = nat_sig();
        let terms = ground_terms(&sig, 3);
        let nats = &terms["nat"];
        // zero, succ(zero), succ(succ(zero))
        assert_eq!(nats.len(), 3);
        assert!(nats.contains(&Term::cons("zero")));
        assert!(nats.contains(&Term::op("succ", [Term::op("succ", [Term::cons("zero")])])));
    }

    #[test]
    fn ground_enumeration_multi_sort() {
        let mut sig = nat_sig();
        sig.add_sort("pairs");
        sig.add_op(OpDecl::new("pair", ["nat", "nat"], "pairs"))
            .unwrap();
        let terms = ground_terms(&sig, 2);
        // nats at depth ≤ 2: zero, succ(zero); pairs: 2×2 over depth-1 nats
        assert_eq!(terms["nat"].len(), 2);
        assert_eq!(terms["pairs"].len(), 1); // pair(zero, zero) only: args from depth-1 snapshot
    }

    #[test]
    fn display_terms() {
        let t = Term::op("succ", [Term::var("x", "nat")]);
        assert_eq!(t.to_string(), "succ(x)");
        assert_eq!(Term::cons("zero").to_string(), "zero");
    }
}
