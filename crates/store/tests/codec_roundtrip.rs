//! Property tests for the store codec: every encodable state decodes
//! back to itself (values, deltas, WAL records, whole snapshots), and
//! every damaged input — strict truncation, bit flips, format-version
//! bumps — is *rejected*, never misread. The codec is the trust root of
//! the durability story; these properties are what "stable versioned
//! binary format" means operationally.

use algrec_datalog::Semantics;
use algrec_serve::ViewDef;
use algrec_store::codec::{crc32, decode_value, encode_value, CodecError, Reader, HEADER_LEN};
use algrec_store::snapshot::{decode_snapshot, encode_snapshot, SnapshotState};
use algrec_store::WalRecord;
use algrec_value::{Database, DatabaseDelta, Value};
use proptest::prelude::*;

fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::int),
        "[a-zA-Z0-9 _.:αβγ-]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::tuple),
            prop::collection::btree_set(inner, 0..4).prop_map(Value::Set),
        ]
    })
}

fn arb_delta() -> impl Strategy<Value = DatabaseDelta> {
    prop::collection::vec(
        (
            prop::sample::select(&["e", "n", "edge", "fact"]),
            any::<bool>(),
            arb_value(),
        ),
        0..12,
    )
    .prop_map(|ops| {
        let mut delta = DatabaseDelta::new();
        for (rel, insert, v) in ops {
            if insert {
                delta.insert(rel, v);
            } else {
                delta.remove(rel, v);
            }
        }
        delta
    })
}

fn arb_semantics() -> impl Strategy<Value = Semantics> {
    prop::sample::select(&[
        Semantics::Naive,
        Semantics::SemiNaive,
        Semantics::Stratified,
        Semantics::Inflationary,
        Semantics::WellFounded,
        Semantics::Valid,
        Semantics::ValidExtended(3),
        Semantics::ValidExtended(17),
    ])
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    let name = "[a-z][a-z0-9_]{0,8}";
    let program = "[a-zA-Z0-9 (),.:&*{}?-]{0,40}";
    prop_oneof![
        arb_delta().prop_map(WalRecord::Delta),
        (name, arb_semantics(), program).prop_map(|(name, semantics, program)| {
            WalRecord::RegisterDatalog {
                name,
                semantics: algrec_serve::semantics_name(semantics),
                program,
            }
        }),
        (name, program).prop_map(|(name, program)| WalRecord::RegisterAlgebra { name, program }),
        name.prop_map(|name| WalRecord::Unregister { name }),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = SnapshotState> {
    let db = prop::collection::vec(
        (
            prop::sample::select(&["e", "n", "edge", "empty"]),
            prop::collection::btree_set(arb_value(), 0..6),
        ),
        0..4,
    )
    .prop_map(|rels| {
        let mut db = Database::new();
        for (name, members) in rels {
            if !db.contains(name) {
                // Register even when `members` is empty: empty relations
                // must survive snapshots.
                db.set(name, algrec_value::Relation::new());
            }
            for v in members {
                db.insert_value(name, v);
            }
        }
        db
    });
    let views = prop::collection::vec(
        (
            "[a-z][a-z0-9]{0,6}",
            any::<bool>(),
            arb_semantics(),
            "[a-zA-Z0-9 (),.:-]{0,30}",
        ),
        0..4,
    )
    .prop_map(|defs| {
        let mut out: Vec<ViewDef> = Vec::new();
        for (name, algebra, semantics, program) in defs {
            if out.iter().any(|v| v.name == name) {
                continue;
            }
            out.push(if algebra {
                ViewDef {
                    name,
                    kind: "algebra",
                    program,
                    semantics: None,
                }
            } else {
                ViewDef {
                    name,
                    kind: "datalog",
                    program,
                    semantics: Some(semantics),
                }
            });
        }
        out
    });
    (db, views).prop_map(|(db, views)| SnapshotState { db, views })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode ∘ encode = identity on arbitrary (nested) values, with no
    /// bytes left over.
    #[test]
    fn value_round_trip(v in arb_value()) {
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(decode_value(&mut r).unwrap(), v);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Every strict prefix of a value encoding is rejected — the codec
    /// never fabricates a value from a short read.
    #[test]
    fn value_truncation_rejected(v in arb_value()) {
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        // Decoding follows the same structure encoding wrote, so a
        // strict prefix always runs out of bytes mid-parse.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            prop_assert!(
                decode_value(&mut r).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    /// WAL records round-trip through their framed payloads.
    #[test]
    fn wal_record_round_trip(rec in arb_record()) {
        prop_assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    /// Deltas round-trip: adds and removes, per relation, exactly — up
    /// to canonical form (relation entries whose changes cancelled out
    /// to nothing are dropped by the encoder).
    #[test]
    fn delta_round_trip(delta in arb_delta()) {
        let rec = WalRecord::Delta(delta.clone());
        let WalRecord::Delta(back) = WalRecord::decode(&rec.encode()).unwrap() else {
            panic!("delta expected");
        };
        let mut expected = DatabaseDelta::new();
        for (name, rel) in delta.iter() {
            for v in rel.added() {
                expected.insert(name.to_string(), v.clone());
            }
            for v in rel.removed() {
                expected.remove(name.to_string(), v.clone());
            }
        }
        prop_assert_eq!(back, expected);
    }

    /// Snapshots round-trip the full database (empty relations included)
    /// and the complete view catalog.
    #[test]
    fn snapshot_round_trip(state in arb_snapshot()) {
        let image = encode_snapshot(&state);
        prop_assert_eq!(decode_snapshot(&image).unwrap(), state);
    }

    /// Every strict prefix of a snapshot image fails to decode: there is
    /// no such thing as "most of a snapshot".
    #[test]
    fn snapshot_truncation_rejected(state in arb_snapshot()) {
        let image = encode_snapshot(&state);
        for cut in 0..image.len() {
            prop_assert!(
                decode_snapshot(&image[..cut]).is_err(),
                "snapshot prefix of {cut}/{} bytes decoded",
                image.len()
            );
        }
    }

    /// A bumped format version is rejected no matter what follows.
    #[test]
    fn snapshot_version_bump_rejected(state in arb_snapshot(), bump in 1u16..500) {
        let mut image = encode_snapshot(&state);
        let version = algrec_store::codec::VERSION.wrapping_add(bump);
        image[8..10].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            decode_snapshot(&image),
            Err(CodecError::Version(v)) if v == version
        ));
    }

    /// Any single-byte corruption below the payload is caught: header
    /// damage fails header checks, record damage fails the CRC.
    #[test]
    fn snapshot_bit_flip_rejected(state in arb_snapshot(), pos_seed in any::<u32>(), bit in 0u8..8) {
        let mut image = encode_snapshot(&state);
        let pos = pos_seed as usize % image.len();
        image[pos] ^= 1 << bit;
        prop_assert!(
            decode_snapshot(&image).is_err(),
            "flip of bit {bit} at byte {pos}/{} went unnoticed",
            image.len()
        );
    }
}

/// The CRC distinguishes all 256 single-byte corruptions of a payload —
/// a deterministic spot check of the checksum actually checking.
#[test]
fn crc_catches_every_single_byte_change() {
    let payload = b"algrec store codec baseline payload";
    let base = crc32(payload);
    for i in 0..payload.len() {
        for delta in 1..=255u8 {
            let mut copy = payload.to_vec();
            copy[i] = copy[i].wrapping_add(delta);
            assert_ne!(crc32(&copy), base, "byte {i} + {delta} collided");
        }
    }
}

/// Headers are position-checked: a snapshot body glued after a WAL
/// header is rejected as the wrong kind, not half-read.
#[test]
fn kind_confusion_is_rejected() {
    let state = SnapshotState {
        db: Database::new(),
        views: Vec::new(),
    };
    let image = encode_snapshot(&state);
    let mut wal_headed = Vec::new();
    algrec_store::codec::write_header(&mut wal_headed, algrec_store::codec::FileKind::Wal);
    wal_headed.extend_from_slice(&image[HEADER_LEN..]);
    assert!(matches!(
        decode_snapshot(&wal_headed),
        Err(CodecError::WrongKind { .. })
    ));
}
