//! Fault injection: crash the store every way we can and prove recovery
//! restores **exactly the committed prefix** — the state after the last
//! WAL record that made it to disk intact, with view answers
//! bit-identical to a cold evaluation of that state.
//!
//! Faults exercised:
//! * clean restart (the trivial crash) after random op sequences;
//! * truncation of the WAL at *every* byte offset (torn tail);
//! * single-byte corruption at arbitrary offsets (bit rot / torn write);
//! * a writer that dies partway through an append, via the [`LogFile`]
//!   shim — the kill-mid-append case where the tail is garbage the
//!   moment the process vanishes;
//! * crash-equivalent restarts across automatic snapshot+compaction
//!   boundaries.

use algrec_datalog::Semantics;
use algrec_serve::{QueryAnswer, Session};
use algrec_store::snapshot::wal_path;
use algrec_store::{open, LogFile, StoreOptions, SyncPolicy, Wal, WalRecord};
use algrec_value::{Budget, Database, DatabaseDelta, Trace, Value};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const TC: &str = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).";
const WIN: &str = "win(X) :- e(X, Y), not win(Y).";

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique, self-cleaning store directory per test case.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let path = std::env::temp_dir().join(format!(
            "algrec-fault-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TestDir(path)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One randomized session operation.
#[derive(Clone, Debug)]
enum Op {
    Assert(i64, i64),
    Retract(i64, i64),
    RegisterTc,
    RegisterWin,
    Unregister(&'static str),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..5i64, 0..5i64).prop_map(|(a, b)| Op::Assert(a, b)),
        (0..5i64, 0..5i64).prop_map(|(a, b)| Op::Assert(a, b)),
        (0..5i64, 0..5i64).prop_map(|(a, b)| Op::Retract(a, b)),
        Just(Op::RegisterTc),
        Just(Op::RegisterWin),
        prop::sample::select(&["paths", "game"]).prop_map(Op::Unregister),
    ]
}

/// Apply one op, tolerating domain errors (duplicate registration,
/// unknown view): those never reach the log, which is the point — only
/// *committed* changes are durable.
fn run_op(session: &mut Session, op: &Op) {
    match op {
        Op::Assert(a, b) => {
            let _ = session.assert_fact(&format!("e({a}, {b})"));
        }
        Op::Retract(a, b) => {
            let _ = session.retract_fact(&format!("e({a}, {b})"));
        }
        Op::RegisterTc => {
            let _ = session.register_datalog("paths", TC, Semantics::Stratified);
        }
        Op::RegisterWin => {
            let _ = session.register_datalog("game", WIN, Semantics::Valid);
        }
        Op::Unregister(name) => {
            let _ = session.unregister(name);
        }
    }
}

/// Every view's full answer, in catalog order.
fn all_answers(session: &mut Session) -> Vec<(String, QueryAnswer)> {
    session
        .catalog()
        .iter()
        .map(|v| (v.name.clone(), session.query(&v.name, None).unwrap()))
        .collect()
}

/// Assert `session` is exactly `db` + `views`, and that its answers are
/// bit-identical to a cold evaluation of the same state.
fn assert_state(session: &mut Session, db: &Database, answers: &[(String, QueryAnswer)]) {
    assert_eq!(session.db(), db, "recovered EDB differs");
    let recovered = all_answers(session);
    assert_eq!(recovered, answers, "recovered view answers differ");
    algrec_store::verify_against_cold(session).expect("cold-eval divergence");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clean restart: whatever a session committed, reopening the store
    /// reproduces it exactly — EDB, catalog, and every view answer.
    #[test]
    fn restart_reproduces_committed_state(ops in prop::collection::vec(arb_op(), 1..20)) {
        let dir = TestDir::new("restart");
        let options = StoreOptions { sync: SyncPolicy::Always, snapshot_every: None };
        let (mut session, report) =
            open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        prop_assert!(!report.restored_anything());
        for op in &ops {
            run_op(&mut session, op);
        }
        let db = session.db().clone();
        let answers = all_answers(&mut session);
        drop(session); // "crash": no orderly close exists, none is needed

        let (mut recovered, report) =
            open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        prop_assert_eq!(report.snapshot_gen, None);
        assert_state(&mut recovered, &db, &answers);
    }

    /// Torn tail: truncate the WAL at an arbitrary byte offset. Recovery
    /// must restore the longest intact record prefix — computed here
    /// independently by replaying that many ops on a parallel session.
    #[test]
    fn truncation_restores_longest_intact_prefix(
        ops in prop::collection::vec(arb_op(), 1..14),
        cut_seed in any::<u32>(),
    ) {
        let dir = TestDir::new("trunc");
        let options = StoreOptions { sync: SyncPolicy::Always, snapshot_every: None };
        let (mut session, _) = open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        for op in &ops {
            run_op(&mut session, op);
        }
        drop(session);

        let log = wal_path(&dir.0, 0);
        let bytes = std::fs::read(&log).unwrap();
        let cut = algrec_store::codec::HEADER_LEN
            + cut_seed as usize % (bytes.len() - algrec_store::codec::HEADER_LEN + 1);
        std::fs::write(&log, &bytes[..cut]).unwrap();

        // How many records survive the cut decides the expected state.
        let surviving = algrec_store::wal::read_wal(&bytes[..cut]).unwrap().records;
        let mut expected = Session::new(Budget::SMALL);
        replay_reference(&mut expected, &surviving);
        let db = expected.db().clone();
        let answers = all_answers(&mut expected);

        let (mut recovered, report) =
            open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        prop_assert_eq!(report.replayed, surviving.len());
        assert_state(&mut recovered, &db, &answers);

        // The truncation is persistent: the next open sees a clean log.
        drop(recovered);
        let (_, report) = open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        prop_assert_eq!(report.truncated_bytes, 0);
    }

    /// Bit flip: corrupt one byte anywhere after the header. Recovery
    /// keeps exactly the records before the damaged one.
    #[test]
    fn corruption_restores_prefix_before_damage(
        ops in prop::collection::vec(arb_op(), 2..14),
        pos_seed in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let dir = TestDir::new("flip");
        let options = StoreOptions { sync: SyncPolicy::Always, snapshot_every: None };
        let (mut session, _) = open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        for op in &ops {
            run_op(&mut session, op);
        }
        drop(session);

        let log = wal_path(&dir.0, 0);
        let mut bytes = std::fs::read(&log).unwrap();
        let header = algrec_store::codec::HEADER_LEN;
        let pos = header + pos_seed as usize % (bytes.len() - header);
        bytes[pos] ^= flip;
        std::fs::write(&log, &bytes).unwrap();

        let survivors = algrec_store::wal::read_wal(&bytes).unwrap().records;
        let mut expected = Session::new(Budget::SMALL);
        replay_reference(&mut expected, &survivors);
        let db = expected.db().clone();
        let answers = all_answers(&mut expected);

        let (mut recovered, report) =
            open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        prop_assert_eq!(report.replayed, survivors.len());
        assert_state(&mut recovered, &db, &answers);
    }

    /// Snapshots + compaction change nothing observable: with aggressive
    /// auto-snapshotting, restarts at arbitrary points still reproduce
    /// the committed state, and the log directory stays compacted.
    #[test]
    fn snapshot_compaction_preserves_state_across_restarts(
        rounds in prop::collection::vec(prop::collection::vec(arb_op(), 1..6), 1..4),
        every in 1usize..4,
    ) {
        let dir = TestDir::new("snap");
        let options = StoreOptions { sync: SyncPolicy::Always, snapshot_every: Some(every) };
        let mut db = Database::new();
        let mut answers = Vec::new();
        for ops in &rounds {
            let (mut session, report) =
                open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
            assert_state(&mut session, &db, &answers);
            prop_assert!(report.replayed < every + 1, "log was not being compacted");
            for op in ops {
                run_op(&mut session, op);
            }
            db = session.db().clone();
            answers = all_answers(&mut session);
        }
        // At most one live generation pair after all that churn.
        let snaps = algrec_store::snapshot::snapshot_generations(&dir.0).unwrap();
        let wals = algrec_store::snapshot::wal_generations(&dir.0).unwrap();
        prop_assert!(snaps.len() <= 1, "snapshots not compacted: {snaps:?}");
        prop_assert_eq!(wals.len(), 1);
    }
}

/// Replay reference: apply decoded records to a plain session the same
/// way recovery does, as an independent oracle for expected state.
fn replay_reference(session: &mut Session, records: &[WalRecord]) {
    for record in records {
        match record {
            WalRecord::Delta(delta) => {
                session.apply_delta(delta).unwrap();
            }
            WalRecord::RegisterDatalog {
                name,
                semantics,
                program,
            } => {
                let semantics = algrec_serve::parse_semantics(semantics).unwrap();
                session.register_datalog(name, program, semantics).unwrap();
            }
            WalRecord::RegisterAlgebra { name, program } => {
                session.register_algebra(name, program).unwrap();
            }
            WalRecord::Unregister { name } => {
                session.unregister(name).unwrap();
            }
            WalRecord::Sequenced { inner, .. } => {
                replay_reference(session, std::slice::from_ref(inner));
            }
        }
    }
}

/// A log file that dies after writing `budget` more bytes, leaving a
/// half-written record on disk — byte-exact what SIGKILL mid-append (or
/// a power cut mid-write) leaves behind.
struct DyingFile {
    inner: std::fs::File,
    budget: usize,
}

impl LogFile for DyingFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.len() <= self.budget {
            self.budget -= bytes.len();
            self.inner.write_all(bytes)
        } else {
            let partial = &bytes[..self.budget];
            self.budget = 0;
            self.inner.write_all(partial)?;
            self.inner.sync_data()?;
            Err(std::io::Error::other("simulated crash mid-append"))
        }
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.inner.sync_data()
    }
}

/// Kill mid-append: a writer with a byte budget dies partway through a
/// record. Everything fully appended before the death recovers; the
/// half-record does not, and is truncated away.
#[test]
fn kill_mid_append_recovers_committed_prefix() {
    let mut delta_of = |k: i64| {
        let mut d = DatabaseDelta::new();
        d.insert("e", Value::pair(Value::int(k), Value::int(k + 1)));
        WalRecord::Delta(d)
    };
    let records: Vec<WalRecord> = (0..40).map(&mut delta_of).collect();
    let frame_bytes = |r: &WalRecord| algrec_store::codec::frame_record(&r.encode()).len();
    let header = algrec_store::codec::HEADER_LEN;

    // Die at every interesting offset: record boundaries and mid-record.
    let mut budgets = vec![header, header + 1];
    let mut acc = header;
    for r in &records {
        let n = frame_bytes(r);
        budgets.push(acc + n / 2);
        budgets.push(acc + n);
        acc += n;
    }

    for budget in budgets {
        let dir = TestDir::new("kill");
        let log = wal_path(&dir.0, 0);
        let file = DyingFile {
            inner: std::fs::File::create(&log).unwrap(),
            budget,
        };
        let mut committed = 0usize;
        match Wal::create(Box::new(file), SyncPolicy::Always, Trace::default()) {
            Err(_) => {} // died inside the header: an empty store
            Ok(mut wal) => {
                for record in &records {
                    match wal.append(record) {
                        Ok(_) => committed += 1,
                        Err(_) => break,
                    }
                }
            }
        }

        let options = StoreOptions {
            sync: SyncPolicy::Always,
            snapshot_every: None,
        };
        let (mut recovered, report) =
            open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
        assert_eq!(
            report.replayed, committed,
            "budget {budget}: wrong committed prefix recovered"
        );
        let mut expected = Session::new(Budget::SMALL);
        replay_reference(&mut expected, &records[..committed]);
        assert_eq!(recovered.db(), expected.db(), "budget {budget}");
        // And the store keeps working after the repair.
        recovered.assert_fact("e(100, 101)").unwrap();
    }
}

/// An unreadable (version-bumped) WAL must refuse to open rather than
/// come up empty and silently orphan committed data.
#[test]
fn version_bumped_log_refuses_to_open() {
    let dir = TestDir::new("version");
    let options = StoreOptions {
        sync: SyncPolicy::Always,
        snapshot_every: None,
    };
    let (mut session, _) = open(&dir.0, Budget::SMALL, options, Trace::default()).unwrap();
    session.assert_fact("e(1, 2)").unwrap();
    drop(session);

    let log = wal_path(&dir.0, 0);
    let mut bytes = std::fs::read(&log).unwrap();
    bytes[8] = 0x63;
    std::fs::write(&log, &bytes).unwrap();

    let Err(err) = open(&dir.0, Budget::SMALL, options, Trace::default()) else {
        panic!("version-bumped log opened");
    };
    assert!(
        matches!(err, algrec_store::StoreError::Corrupt { .. }),
        "unexpected error: {err}"
    );
}

/// Recovery telemetry: replayed records and snapshot writes surface in
/// the trace a front end passes in (`--trace` shows them).
#[test]
fn recovery_and_snapshot_emit_trace_events() {
    let dir = TestDir::new("trace");
    let options = StoreOptions {
        sync: SyncPolicy::Always,
        snapshot_every: Some(2),
    };
    let trace = Trace::collect();
    let (mut session, _) = open(&dir.0, Budget::SMALL, options, trace.clone()).unwrap();
    for k in 0..5 {
        session.assert_fact(&format!("e({k}, {})", k + 1)).unwrap();
    }
    let stats = trace.stats().unwrap();
    assert_eq!(stats.store.wal_records, 5);
    assert!(stats.store.wal_fsyncs >= 5);
    assert!(stats.store.snapshots >= 2, "snapshot_every=2 over 5 ops");
    assert!(stats.store.snapshot_bytes > 0);
    drop(session);

    let trace = Trace::collect();
    let (_, report) = open(&dir.0, Budget::SMALL, options, trace.clone()).unwrap();
    let stats = trace.stats().unwrap();
    assert_eq!(stats.store.recovery_replayed, report.replayed);
}
