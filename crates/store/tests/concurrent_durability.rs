//! Writer-ordering invariant under concurrency: commits racing through
//! [`SharedSession`] serialize on the single-writer lock, and because
//! the durability hook fires *inside* that lock, the write-ahead log
//! order is the commit order is the epoch order. Consequences pinned
//! here:
//!
//! * every committed write gets a distinct epoch, and the epochs of all
//!   writers together form a contiguous range — no lost or duplicated
//!   commits;
//! * each writer's own epochs are strictly increasing — the lock cannot
//!   reorder a thread against itself;
//! * recovering the store afterwards reproduces exactly the final state
//!   (debug-build recovery additionally re-derives every view cold and
//!   insists on bit-identical answers, so a WAL scrambled by interleaved
//!   writers could not slip through).

use algrec_datalog::Semantics;
use algrec_serve::{QueryAnswer, SharedSession};
use algrec_store::{open, StoreOptions, SyncPolicy};
use algrec_value::{Budget, Trace};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const TC: &str = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).";

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique, self-cleaning store directory per test case.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let path = std::env::temp_dir().join(format!(
            "algrec-conc-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TestDir(path)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn concurrent_writers_serialize_into_one_recoverable_log() {
    const WRITERS: usize = 4;
    const FACTS_PER_WRITER: usize = 10;

    let dir = TestDir::new("writers");
    let options = StoreOptions {
        sync: SyncPolicy::Never, // durability-on-crash is fault_injection's job
        snapshot_every: Some(8), // force snapshot+compaction races too
    };
    let (mut session, _) = open(&dir.0, Budget::LARGE, options, Trace::Null).unwrap();
    session
        .register_datalog("paths", TC, Semantics::Valid)
        .unwrap();
    let shared = SharedSession::new(session);

    // Each writer asserts a private chain; all race through the lock.
    let per_writer: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let shared = &shared;
                scope.spawn(move || {
                    (0..FACTS_PER_WRITER)
                        .map(|k| {
                            let (out, epoch) = shared
                                .with_writer(|s| {
                                    let base = (w * 1000 + k) as i64;
                                    s.assert_fact(&format!("e({base}, {})", base + 1))
                                })
                                .unwrap();
                            assert_eq!(out.unwrap().applied, 1);
                            epoch
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Program order per writer survives the races…
    for epochs in &per_writer {
        assert!(epochs.windows(2).all(|p| p[0] < p[1]), "{epochs:?}");
    }
    // …and all commits together form one total order with no gaps.
    let mut all: Vec<u64> = per_writer.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<u64> = (1..=(WRITERS * FACTS_PER_WRITER) as u64).collect();
    assert_eq!(all, expected);
    assert_eq!(shared.epoch(), (WRITERS * FACTS_PER_WRITER) as u64);

    // Capture the final answers, then close the store.
    let mut session = shared.into_session().unwrap();
    let final_db = session.db_summary();
    let QueryAnswer::Datalog { certain, unknown } = session.query("paths", Some("tc")).unwrap()
    else {
        panic!("datalog view");
    };
    assert!(unknown.is_empty());
    drop(session);

    // Recovery replays the log the writers raced into. In debug builds
    // `open` also re-derives the view cold and compares bit-for-bit.
    let (mut recovered, report) = open(&dir.0, Budget::LARGE, options, Trace::Null).unwrap();
    assert!(report.restored_anything());
    assert_eq!(recovered.db_summary(), final_db);
    let QueryAnswer::Datalog {
        certain: rec_certain,
        unknown: rec_unknown,
    } = recovered.query("paths", Some("tc")).unwrap()
    else {
        panic!("datalog view");
    };
    assert_eq!(rec_certain, certain);
    assert!(rec_unknown.is_empty());
}
